//! Hermetic stand-in for the `criterion` crate.
//!
//! The build environment resolves every dependency from the source
//! tree, so this crate supplies the benchmark-harness surface the
//! `xmorph-bench` benches use: `Criterion`, `benchmark_group` with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model, much simpler than real criterion: each benchmark
//! runs one untimed warm-up iteration, then `sample_size` timed
//! iterations, and reports min / median / mean wall-clock time per
//! iteration on stdout. No statistical analysis, no plots, no baseline
//! files — deterministic output suitable for eyeballing regressions in
//! CI logs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Identifies one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { id: name }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` once untimed, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.id, &mut bencher.samples);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&self.name, &id.id, &mut bencher.samples);
        self
    }

    /// End the group (prints a trailing newline separator).
    pub fn finish(self) {
        println!();
    }
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{group}/{id}: min {} · median {} · mean {} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for CLI compatibility; filters are not implemented.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}

//! Hermetic stand-in for the `proptest` crate.
//!
//! The build environment resolves every dependency from the source tree,
//! so this crate reimplements the slice of proptest's API the workspace
//! test suites use: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, regex-flavoured string
//! strategies, integer-range and tuple strategies, `prop::collection`,
//! `prop::option`, `prop::bool`, weighted `prop_oneof!`, and the
//! `proptest!` test macro.
//!
//! Differences from real proptest, deliberate and documented:
//! - **No shrinking.** On failure the harness panics with the failing
//!   inputs (Debug-formatted), the case index, and the seed. Runs are
//!   fully deterministic — a fixed FNV hash of the test name seeds the
//!   RNG — so a failure reproduces exactly by re-running the test.
//! - **Regex strategies** support the subset actually used in the
//!   tests: literals, `.`, escapes, `[...]` classes with ranges,
//!   `(a|b)` groups, and `{m,n}` / `{m}` / `?` / `*` / `+` repetition.
//! - `.proptest-regressions` files are neither read nor written.

pub mod test_runner {
    //! Deterministic case runner: config, error type, RNG.

    /// How many cases each `proptest!` test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A hard failure: the property does not hold.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Alias kept for API compatibility (this shim treats rejects
        /// as failures rather than resampling).
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-case outcome, as returned by `proptest!` bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG handed to strategies (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG whose stream is fully determined by `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform usize from `[lo, hi]`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + self.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Drives a single `proptest!`-generated test function.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Runner executing `config.cases` cases.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Run `case` repeatedly with deterministic seeds derived from
        /// `name`. The closure returns the Debug rendering of the
        /// generated inputs plus the case outcome; on `Err` the runner
        /// panics with everything needed to reproduce.
        pub fn run_named<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> (String, TestCaseResult),
        {
            let base = fnv1a(name.as_bytes());
            for i in 0..self.config.cases {
                let seed = base ^ (u64::from(i)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = TestRng::new(seed);
                let (inputs, outcome) = case(&mut rng);
                if let Err(err) = outcome {
                    panic!(
                        "proptest `{name}` failed at case {i}/{total} (seed {seed:#x}):\n\
                         {err}\nfailing inputs:\n{inputs}",
                        total = self.config.cases,
                    );
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

mod regex_gen {
    //! Tiny regex-subset *generator*: parses a pattern once per sample
    //! and emits a random matching string.

    use crate::test_runner::TestRng;

    pub(crate) enum Rx {
        Seq(Vec<Rx>),
        Alt(Vec<Rx>),
        /// Inclusive char ranges; `negated` complements over printable
        /// ASCII.
        Class {
            ranges: Vec<(char, char)>,
            negated: bool,
        },
        Lit(char),
        /// `.`: any printable ASCII character.
        Any,
        Repeat(Box<Rx>, u32, u32),
    }

    pub(crate) fn parse(pattern: &str) -> Rx {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let rx = parse_alt(&chars, &mut pos, pattern);
        assert!(
            pos == chars.len(),
            "unsupported regex pattern `{pattern}` (stopped at {pos})"
        );
        rx
    }

    fn parse_alt(chars: &[char], pos: &mut usize, pat: &str) -> Rx {
        let mut branches = vec![parse_seq(chars, pos, pat)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            branches.push(parse_seq(chars, pos, pat));
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Rx::Alt(branches)
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pat: &str) -> Rx {
        let mut items = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos, pat);
            items.push(parse_quant(chars, pos, atom, pat));
        }
        Rx::Seq(items)
    }

    fn parse_atom(chars: &[char], pos: &mut usize, pat: &str) -> Rx {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos, pat);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unclosed group in regex `{pat}`"
                );
                *pos += 1;
                inner
            }
            '[' => parse_class(chars, pos, pat),
            '\\' => {
                *pos += 1;
                assert!(*pos < chars.len(), "dangling escape in regex `{pat}`");
                let c = chars[*pos];
                *pos += 1;
                Rx::Lit(unescape(c))
            }
            '.' => {
                *pos += 1;
                Rx::Any
            }
            c => {
                *pos += 1;
                Rx::Lit(c)
            }
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Rx {
        *pos += 1; // consume '['
        let negated = *pos < chars.len() && chars[*pos] == '^';
        if negated {
            *pos += 1;
        }
        let mut ranges = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let lo = if chars[*pos] == '\\' {
                *pos += 1;
                let c = unescape(chars[*pos]);
                *pos += 1;
                c
            } else {
                let c = chars[*pos];
                *pos += 1;
                c
            };
            // `a-z` range (a trailing `-` is a literal).
            if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                *pos += 1;
                let hi = if chars[*pos] == '\\' {
                    *pos += 1;
                    let c = unescape(chars[*pos]);
                    *pos += 1;
                    c
                } else {
                    let c = chars[*pos];
                    *pos += 1;
                    c
                };
                assert!(lo <= hi, "inverted class range in regex `{pat}`");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(*pos < chars.len(), "unclosed class in regex `{pat}`");
        *pos += 1; // consume ']'
        Rx::Class { ranges, negated }
    }

    fn parse_quant(chars: &[char], pos: &mut usize, atom: Rx, pat: &str) -> Rx {
        if *pos >= chars.len() {
            return atom;
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                Rx::Repeat(Box::new(atom), 0, 1)
            }
            '*' => {
                *pos += 1;
                Rx::Repeat(Box::new(atom), 0, 8)
            }
            '+' => {
                *pos += 1;
                Rx::Repeat(Box::new(atom), 1, 8)
            }
            '{' => {
                *pos += 1;
                let mut min = 0u32;
                while chars[*pos].is_ascii_digit() {
                    min = min * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut m = 0u32;
                    while chars[*pos].is_ascii_digit() {
                        m = m * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                    }
                    m
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "malformed repetition in regex `{pat}`");
                *pos += 1;
                Rx::Repeat(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }

    const PRINTABLE_LO: u32 = 0x20;
    const PRINTABLE_HI: u32 = 0x7E;

    pub(crate) fn generate(rx: &Rx, rng: &mut TestRng, out: &mut String) {
        match rx {
            Rx::Seq(items) => {
                for item in items {
                    generate(item, rng, out);
                }
            }
            Rx::Alt(branches) => {
                let pick = rng.below(branches.len() as u64) as usize;
                generate(&branches[pick], rng, out);
            }
            Rx::Lit(c) => out.push(*c),
            Rx::Any => {
                let c = PRINTABLE_LO + rng.below(u64::from(PRINTABLE_HI - PRINTABLE_LO + 1)) as u32;
                out.push(char::from_u32(c).unwrap());
            }
            Rx::Class { ranges, negated } => {
                if *negated {
                    // Rejection-sample over printable ASCII.
                    loop {
                        let c = PRINTABLE_LO
                            + rng.below(u64::from(PRINTABLE_HI - PRINTABLE_LO + 1)) as u32;
                        let c = char::from_u32(c).unwrap();
                        if !ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi) {
                            out.push(c);
                            break;
                        }
                    }
                } else {
                    // Weight ranges by width so each char is uniform.
                    let total: u64 = ranges.iter().map(|&(lo, hi)| width(lo, hi)).sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let w = width(lo, hi);
                        if pick < w {
                            out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= w;
                    }
                }
            }
            Rx::Repeat(inner, min, max) => {
                let n = *min + rng.below(u64::from(*max - *min + 1)) as u32;
                for _ in 0..n {
                    generate(inner, rng, out);
                }
            }
        }
    }

    fn width(lo: char, hi: char) -> u64 {
        u64::from(hi as u32 - lo as u32 + 1)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::regex_gen;
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `map`.
        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map }
        }

        /// Discard values failing `pred`, resampling (bounded retries).
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Build recursive structures: `self` is the leaf case and
        /// `recurse` wraps an inner strategy into a branch case. The
        /// `_desired_size` / `_expected_branch_size` hints are accepted
        /// for API compatibility and ignored; depth is honoured.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = recurse(strat.clone()).boxed();
                strat = OneOf::new(vec![(2, strat), (3, deeper)]).boxed();
            }
            strat
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let this = self;
            BoxedStrategy {
                gen: Rc::new(move |rng| this.new_value(rng)),
            }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Result of [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        source: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.source.new_value(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 consecutive samples",
                self.reason
            );
        }
    }

    /// Weighted union of boxed strategies (built by `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> OneOf<T> {
        /// Union over `(weight, strategy)` pairs; weights must sum > 0.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, strat) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return strat.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy on empty inclusive range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String literals are regex-subset strategies producing matching
    /// `String`s (mirrors proptest's `&str` strategy).
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let rx = regex_gen::parse(self);
            let mut out = String::new();
            regex_gen::generate(&rx, rng, &mut out);
            out
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct ArbStrategy<T>(PhantomData<T>);

    impl<T> Clone for ArbStrategy<T> {
        fn clone(&self) -> ArbStrategy<T> {
            *self
        }
    }
    impl<T> Copy for ArbStrategy<T> {}

    impl<T: Arbitrary> Strategy for ArbStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Strategy over every value of `T`.
    pub fn any<T: Arbitrary>() -> ArbStrategy<T> {
        ArbStrategy(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated documents readable.
            char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).unwrap()
        }
    }
}

pub mod collection {
    //! `prop::collection::{vec, btree_map}`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of values from `elem`, length within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Map with keys/values from `key`/`value`; duplicate keys collapse
    /// so the final size may undershoot the requested range.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n)
                .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
                .collect()
        }
    }
}

pub mod option {
    //! `prop::option::of`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod bool {
    //! `prop::bool::ANY`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Either boolean, evenly.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(arg in
/// strategy, ..) { body }` items whose bodies may `return Ok(())` early.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_named(stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                let mut __inputs = String::new();
                {
                    use ::std::fmt::Write as _;
                    $(let _ = writeln!(__inputs, "  {} = {:?}", stringify!($arg), &$arg);)+
                }
                #[allow(unreachable_code)]
                let __case = move || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                };
                (__inputs, __case())
            });
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            __l, __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                            __l, __r, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left != right`\n  both: `{:?}`", __l),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad sample {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn regex_alternation_and_escapes() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let s = Strategy::new_value(&"(ab|\\[|x){2}", &mut rng);
            let mut rest = s.as_str();
            for _ in 0..2 {
                rest = rest
                    .strip_prefix("ab")
                    .or_else(|| rest.strip_prefix('['))
                    .or_else(|| rest.strip_prefix('x'))
                    .expect("sample must be built from the alternatives");
            }
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn oneof_respects_all_branches() {
        let strat = prop_oneof![1 => Just(1u8), 1 => Just(2u8), 3 => Just(3u8)];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::new_value(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collections_and_filters() {
        let strat =
            prop::collection::vec(0u8..10, 2..5).prop_filter("nonzero first", |v| v[0] != 0);
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let v = Strategy::new_value(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert_ne!(v[0], 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => usize::from(*n < u8::MAX),
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..255).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(4, 64, 5, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::new(13);
        for _ in 0..50 {
            assert!(depth(&Strategy::new_value(&tree, &mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec(any::<u8>(), 0..8),
            flag in prop::bool::ANY,
            name in "[a-z]{1,4}",
        ) {
            if xs.is_empty() {
                return Ok(());
            }
            prop_assert!(name.len() <= 4);
            prop_assert_eq!(xs.len(), xs.iter().filter(|_| true).count());
            prop_assert_ne!(name.len(), 0);
            let _ = flag;
        }
    }
}

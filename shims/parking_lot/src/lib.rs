//! Hermetic stand-in for the `parking_lot` crate.
//!
//! The build environment resolves every dependency from the source tree,
//! so this crate provides the (small) slice of parking_lot's API the
//! workspace uses: non-poisoning [`Mutex`] and [`RwLock`] wrappers over
//! the std primitives. Poisoning is deliberately swallowed — parking_lot
//! locks never poison, and the engine relies on that (a panicking test
//! thread must not wedge every later access).

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard};

/// A non-poisoning mutual-exclusion lock (API subset of
/// `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => MutexGuard { guard },
            Err(poisoned) => MutexGuard {
                guard: poisoned.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                guard: poisoned.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A non-poisoning reader-writer lock (API subset of
/// `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => RwLockReadGuard { guard },
            Err(poisoned) => RwLockReadGuard {
                guard: poisoned.into_inner(),
            },
        }
    }

    /// Acquire the exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => RwLockWriteGuard { guard },
            Err(poisoned) => RwLockWriteGuard {
                guard: poisoned.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A parking_lot-style mutex must still be usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(3);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 6);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}

//! Robustness: none of the three parsers (XML, XMorph guards, XQuery)
//! may panic on arbitrary input — they must either parse or return a
//! structured error. Also: documents that *do* parse must round-trip.

use proptest::prelude::*;
use xmorph_core::Guard;
use xmorph_xml::dom::Document;
use xmorph_xml::reader::{XmlEvent, XmlReader};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xml_reader_never_panics(input in ".{0,200}") {
        let mut reader = XmlReader::new(&input);
        for _ in 0..500 {
            match reader.next_event() {
                Ok(XmlEvent::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    #[test]
    fn xml_reader_never_panics_markupish(input in "[<>a-z/=\"'! \\-\\[\\]&;#x0-9?]{0,120}") {
        let mut reader = XmlReader::new(&input);
        for _ in 0..500 {
            match reader.next_event() {
                Ok(XmlEvent::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    #[test]
    fn guard_parser_never_panics(input in ".{0,120}") {
        let _ = Guard::parse(&input);
    }

    #[test]
    fn guard_parser_never_panics_tokenish(
        input in "(MORPH|MUTATE|CAST|DROP|NEW|CLONE|RESTRICT|TRANSLATE|COMPOSE|TYPE-FILL|\\[|\\]|\\(|\\)|\\||,|->|\\*|!|[a-z@.]{1,6}| ){0,30}"
    ) {
        let _ = Guard::parse(&input);
    }

    #[test]
    fn xquery_parser_never_panics(input in ".{0,120}") {
        let _ = xmorph_xqlite::query_shape_paths(&input);
    }

    #[test]
    fn xquery_parser_never_panics_tokenish(
        input in "(for|let|where|return|doc|count|string|\\$[a-z]|\"d\"|/|//|@|\\[|\\]|\\(|\\)|=|<|>|\\{|\\}|[a-z]{1,5}| ){0,25}"
    ) {
        let _ = xmorph_xqlite::query_shape_paths(&input);
    }

    #[test]
    fn parsed_documents_round_trip(input in "[<>a-z/ \"=]{0,100}") {
        if let Ok(doc) = Document::parse_str(&input) {
            let once = doc.serialize_compact();
            let again = Document::parse_str(&once).expect("serialized output reparses");
            prop_assert_eq!(again.serialize_compact(), once);
        }
    }

    #[test]
    fn valid_guards_applied_to_arbitrary_small_docs_never_panic(
        names in proptest::collection::vec("[a-c]", 1..6),
        guard_idx in 0usize..4,
    ) {
        // Degenerate single-branch documents with colliding names.
        let mut xml = String::new();
        for n in &names {
            xml.push_str(&format!("<{n}>"));
        }
        xml.push('x');
        for n in names.iter().rev() {
            xml.push_str(&format!("</{n}>"));
        }
        let guards = [
            "CAST MORPH a",
            "CAST MORPH a [ b [ c ] ]",
            "CAST MUTATE b [ a ]",
            "CAST MORPH b [ ** ]",
        ];
        let guard = Guard::parse(guards[guard_idx]).unwrap();
        let _ = guard.apply_to_str(&xml); // Ok or Err — never panic
    }
}

//! End-to-end guard inference (paper §X future work): extract the shape
//! a query navigates, infer a guard from it, and run the guarded
//! pipeline against differently-shaped data.

use xmorph_core::infer::guard_from_paths;
use xmorph_core::Guard;
use xmorph_xqlite::{query_shape_paths, XqliteDb};

/// Infer a guard from the paths a query walks *below the document
/// element* (the query addresses the transformed document through the
/// render wrapper, so the first two segments — wrapper and source root —
/// are navigation scaffolding the guard must not constrain).
fn infer_guard(query: &str) -> String {
    let paths = query_shape_paths(query).expect("query parses");
    let trimmed: Vec<Vec<String>> = paths
        .into_iter()
        .map(|p| p.into_iter().skip(1).collect::<Vec<_>>())
        .filter(|p: &Vec<String>| !p.is_empty())
        .collect();
    guard_from_paths(&trimmed).expect("non-empty shape")
}

const QUERY: &str = r#"for $a in doc("t.xml")/result/author
return <entry>{string($a/name)}: {string($a/book/title)}</entry>"#;

#[test]
fn inferred_guard_matches_handwritten() {
    // The motivating query's inferred guard is exactly the paper's §I
    // guard (modulo sibling order).
    let guard = infer_guard(QUERY);
    assert_eq!(guard, "MORPH author [ book [ title ] name ]");
}

#[test]
fn inferred_pipeline_runs_on_all_shapes() {
    let shapes = [
        "<data><book><title>X</title><author><name>Tim</name></author></book></data>",
        "<data><publisher><book><title>X</title><author><name>Tim</name></author></book></publisher></data>",
        "<data><author><name>Tim</name><book><title>X</title></book></author></data>",
    ];
    let guard = Guard::parse(&infer_guard(QUERY)).unwrap();
    for xml in shapes {
        let out = guard.apply_to_str(xml).expect("guard admits");
        let db = XqliteDb::in_memory();
        db.store_document("t.xml", &out.xml).unwrap();
        let answer = db.query(QUERY).unwrap();
        assert_eq!(answer, "<entry>Tim: X</entry>", "shape: {xml}");
    }
}

#[test]
fn inference_handles_predicates_and_attributes() {
    let query = r#"for $b in doc("t.xml")/result/book[author = "Tim"]
return <t>{string($b/title)} ({string($b/@year)})</t>"#;
    let guard_text = infer_guard(query);
    assert_eq!(guard_text, "MORPH book [ @year author title ]");
    // And it runs: attributes morph back into attributes.
    let xml =
        r#"<lib><item year="2001"><book><author>Tim</author><title>X</title></book></item></lib>"#;
    // `@year` sits on <item>, not <book>, in the source — the guard
    // pulls the closest one onto each book.
    let guard = Guard::parse(&format!("CAST {guard_text}")).unwrap();
    let out = guard.apply_to_str(xml).unwrap();
    let db = XqliteDb::in_memory();
    db.store_document("t.xml", &out.xml).unwrap();
    assert_eq!(db.query(query).unwrap(), "<t>X (2001)</t>");
}

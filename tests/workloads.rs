//! Workload-scale smoke tests: the benchmark guards run end-to-end on
//! each generated dataset, outputs are well-formed, and basic counts
//! line up with the sources.

use xmorph_core::{Guard, ShreddedDoc};
use xmorph_datagen::{DblpConfig, NasaConfig, XmarkConfig};
use xmorph_pagestore::Store;
use xmorph_xml::dom::Document;

fn shred(xml: &str) -> (Store, ShreddedDoc) {
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
    (store, doc)
}

#[test]
fn xmark_mutate_site_round_trips_structure() {
    let xml = XmarkConfig {
        factor: 0.005,
        ..Default::default()
    }
    .generate();
    let src = Document::parse_str(&xml).unwrap();
    let (_store, doc) = shred(&xml);
    let out = Guard::parse("MUTATE site").unwrap().apply(&doc).unwrap();
    let out_doc = Document::parse_str(&out.xml).unwrap();
    // The identity mutation preserves the element count (modulo the
    // <result> wrapper); attribute vertices render back as attributes.
    assert_eq!(out_doc.element_count(), src.element_count() + 1);
    assert_eq!(count_attrs(&out_doc), count_attrs(&src));
}

fn count_attrs(doc: &Document) -> usize {
    doc.descendant_elements(doc.root_element().unwrap())
        .into_iter()
        .map(|n| doc.attrs(n).len())
        .sum()
}

#[test]
fn xmark_guards_from_the_benchmarks_run() {
    let xml = XmarkConfig {
        factor: 0.005,
        ..Default::default()
    }
    .generate();
    let (_store, doc) = shred(&xml);
    for guard in [
        "MORPH people [ person [ address [ city ] ] ]",
        "MORPH item [ name location quantity ]",
        "MORPH person [ name emailaddress ]",
        "MORPH open_auction [ initial current itemref ]",
    ] {
        let out = Guard::parse(guard).unwrap().apply(&doc).unwrap();
        assert!(Document::parse_str(&out.xml).is_ok(), "{guard}");
        assert!(out.xml.len() > 20, "{guard}: {}", out.xml);
    }
}

#[test]
fn dblp_morphs_match_record_counts() {
    let cfg = DblpConfig {
        records: 400,
        ..Default::default()
    };
    let xml = cfg.generate();
    let src = Document::parse_str(&xml).unwrap();
    let root = src.root_element().unwrap();
    let author_count: usize = src
        .children(root)
        .map(|r| src.children_named(r, "author").count())
        .sum();

    let (_store, doc) = shred(&xml);
    let out = Guard::parse("MORPH author").unwrap().apply(&doc).unwrap();
    assert_eq!(out.xml.matches("<author>").count(), author_count);

    // The medium guard nests titles under authors: one title per record
    // per author.
    let out = Guard::parse("CAST-WIDENING MORPH author [title [year]]")
        .unwrap()
        .apply(&doc)
        .unwrap();
    assert_eq!(out.xml.matches("<title>").count(), author_count);
    assert_eq!(out.xml.matches("<year>").count(), author_count);
}

#[test]
fn nasa_deep_chain_renders() {
    let xml = NasaConfig {
        datasets: 30,
        ..Default::default()
    }
    .generate();
    let (_store, doc) = shred(&xml);
    let out = Guard::parse("MORPH dataset [ reference [ source [ other [ title ] ] ] ]")
        .unwrap()
        .apply(&doc)
        .unwrap();
    let out_doc = Document::parse_str(&out.xml).unwrap();
    let root = out_doc.root_element().unwrap();
    assert_eq!(out_doc.children_named(root, "dataset").count(), 30);
}

#[test]
fn compile_phase_is_data_size_independent() {
    // The Fig. 10 claim in test form: quadrupling the data changes the
    // compile (analysis) cost far less than the render cost.
    use std::time::Instant;
    let small = XmarkConfig {
        factor: 0.004,
        ..Default::default()
    }
    .generate();
    let large = XmarkConfig {
        factor: 0.016,
        ..Default::default()
    }
    .generate();
    let (_s1, doc_small) = shred(&small);
    let (_s2, doc_large) = shred(&large);
    let guard = Guard::parse("MUTATE site").unwrap();

    let compile_time = |doc: &ShreddedDoc| {
        let t = Instant::now();
        for _ in 0..5 {
            guard.analyze(doc).unwrap();
        }
        t.elapsed()
    };
    let t_small = compile_time(&doc_small);
    let t_large = compile_time(&doc_large);
    // Compile touches only the adorned shape: both documents have
    // essentially the same shape, so the ratio stays far below the 4×
    // data ratio (allow generous noise).
    let ratio = t_large.as_secs_f64() / t_small.as_secs_f64().max(1e-9);
    assert!(ratio < 3.0, "compile scaled with data size: ratio {ratio}");
}

//! Soundness of the information-loss analysis (§V-B, Theorems 1–2),
//! validated against *materialized* closest graphs.
//!
//! The analysis predicts, before touching data, whether a transformation
//! is inclusive (no closest edge lost) and/or non-additive (none
//! created). These tests actually transform documents — rendering with
//! source tagging so every output vertex maps back to its source vertex —
//! materialize `closest(source)` and `closest(xform(source))` per Defs.
//! 1–2, and check the subset relations of Def. 5:
//!
//! * analysis says inclusive   ⇒ `G|retained ⊆ H`
//! * analysis says non-additive ⇒ `H ⊆ G`
//!
//! This is exactly the reversibility experiment the paper argues should
//! be *avoidable* thanks to the theorems; running it validates them.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use xmorph_core::model::closest::{closest_graph_of, typed_vertices};
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_pagestore::Store;
use xmorph_xml::dewey::Dewey;
use xmorph_xml::dom::Document;

/// Source-vertex-identified closest edges of a document. `retained`
/// filters vertices by their source *type* (root path) — label
/// resolution retains types, not names.
fn source_edges(
    doc: &Document,
    retained: &BTreeSet<Vec<String>>,
) -> (BTreeSet<Dewey>, BTreeSet<(Dewey, Dewey)>) {
    let (types, vertices) = typed_vertices(doc);
    let graph = closest_graph_of(&vertices);
    let name_of: BTreeMap<Dewey, Vec<String>> = vertices
        .iter()
        .map(|(d, t)| (d.clone(), types.path(*t).to_vec()))
        .collect();
    let keep = |d: &Dewey| retained.contains(&name_of[d]);
    let vs = graph.vertices.iter().filter(|d| keep(d)).cloned().collect();
    let es = graph
        .edges
        .iter()
        .filter(|(a, b)| keep(a) && keep(b))
        .cloned()
        .collect();
    (vs, es)
}

/// Vertex set, edge set, and retained type paths of a transformed
/// instance.
type MappedGraph = (
    BTreeSet<Dewey>,
    BTreeSet<(Dewey, Dewey)>,
    BTreeSet<Vec<String>>,
);

/// Transform `xml` with `guard`, mapping output vertices back to source
/// Dewey ids via `data-src` tags; returns the mapped vertex and edge sets
/// of `closest(xform(...))`, plus the retained source element names.
fn transformed_edges(guard: &Guard, xml: &str) -> Option<MappedGraph> {
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, xml).expect("shred");
    let analysis = guard.analyze(&doc).ok()?;
    let out = render(
        &doc,
        &analysis.target,
        &RenderOptions {
            wrapper: Some("w".into()),
            tag_source: true,
            ..Default::default()
        },
    )
    .expect("render");
    let out_doc = Document::parse_str(&out).expect("output parses");

    // The retained source types: the bases of the target shape.
    let mut retained: BTreeSet<Vec<String>> = BTreeSet::new();
    for n in analysis.target.preorder() {
        if let Some(base) = analysis.target.nodes[n].base {
            retained.insert(doc.types().path(base).to_vec());
        }
    }

    // Map output elements to source vertices, and source vertices to
    // their source types.
    let src_doc = Document::parse_str(xml).expect("source parses");
    let (src_types, src_vertices) = typed_vertices(&src_doc);
    let src_type_of: BTreeMap<Dewey, Vec<String>> = src_vertices
        .iter()
        .map(|(d, t)| (d.clone(), src_types.path(*t).to_vec()))
        .collect();
    let mut src_of: BTreeMap<Dewey, Dewey> = BTreeMap::new();
    for (node, dewey) in out_doc.dewey_map() {
        if let Some(tag) = out_doc.attr(node, "data-src") {
            src_of.insert(dewey, tag.parse().expect("dewey tag"));
        }
    }

    // Closest graph of the *output* instance. Formally H =
    // closest(xform(G, R)) types vertices by their **R-type**: two
    // distinct source types selected by one ambiguous label stay
    // distinct types even when they render with the same element name.
    // We realize R-typing as the composite (output root path, source
    // type path). Only tagged elements participate (the wrapper and
    // data-src attributes are harness metadata, not data).
    let mut composite_types = xmorph_core::TypeTable::new();
    let mut tagged: Vec<(Dewey, xmorph_core::TypeId)> = Vec::new();
    for (node, dewey) in out_doc.dewey_map() {
        let Some(src) = src_of.get(&dewey) else {
            continue;
        };
        let mut key = out_doc.root_path(node);
        key.push("##".to_string());
        key.extend(src_type_of[src].iter().cloned());
        let t = composite_types.intern(&key);
        tagged.push((dewey, t));
    }
    // The wrapper element participates as the shared document root
    // (every vertex's Dewey passes through it), exactly as the rendered
    // document's structure has it.
    let graph = closest_graph_of(&tagged);

    let vs: BTreeSet<Dewey> = graph.vertices.iter().map(|d| src_of[d].clone()).collect();
    let mut es: BTreeSet<(Dewey, Dewey)> = BTreeSet::new();
    for (a, b) in &graph.edges {
        let (sa, sb) = (src_of[a].clone(), src_of[b].clone());
        if sa == sb {
            continue; // a vertex duplicated next to itself
        }
        let pair = if sa <= sb { (sa, sb) } else { (sb, sa) };
        es.insert(pair);
    }
    Some((vs, es, retained))
}

/// Assert the theorem guarantees for one (guard, document) pair.
fn check_guarantees(guard_text: &str, xml: &str) {
    let guard = Guard::parse(guard_text).expect("guard parses");
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, xml).expect("shred");
    let Ok(analysis) = guard.analyze(&doc) else {
        return; // type mismatch: nothing to validate
    };
    let src_doc = Document::parse_str(xml).expect("source parses");
    let Some((h_vertices, h_edges, retained)) = transformed_edges(&guard, xml) else {
        return;
    };
    let (g_vertices, g_edges) = source_edges(&src_doc, &retained);

    if analysis.loss.inclusive {
        assert!(
            g_vertices.is_subset(&h_vertices),
            "guard {guard_text:?} on {xml}: claimed inclusive but vertices lost: {:?}",
            g_vertices.difference(&h_vertices).collect::<Vec<_>>()
        );
        assert!(
            g_edges.is_subset(&h_edges),
            "guard {guard_text:?} on {xml}: claimed inclusive but closest edges lost: {:?}",
            g_edges.difference(&h_edges).collect::<Vec<_>>()
        );
    }
    if analysis.loss.non_additive {
        assert!(
            h_edges.is_subset(&g_edges),
            "guard {guard_text:?} on {xml}: claimed non-additive but edges manufactured: {:?}",
            h_edges.difference(&g_edges).collect::<Vec<_>>()
        );
    }
}

// ---- fixed paper scenarios ----

const FIG1A: &str = "<data>\
    <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
    <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
    </data>";

const FIG1B: &str = "<data>\
    <publisher><name>W</name><book><title>X</title><author><name>Tim</name></author></book></publisher>\
    <publisher><name>V</name><book><title>Y</title><author><name>Tim</name></author></book></publisher>\
    </data>";

const FIG1C: &str = "<data>\
    <author><name>Tim</name>\
      <book><title>X</title><publisher><name>W</name></publisher></book>\
      <book><title>Y</title><publisher><name>V</name></publisher></book>\
    </author></data>";

const GUARDS: &[&str] = &[
    "MORPH author [ name book [ title ] ]",
    "MORPH book [ title author [ name ] ]",
    "MORPH title [ publisher.name ]",
    "MORPH author [ !title name publisher [ name ] ]",
    "MORPH data [ title ]",
    "MORPH publisher [ name book.title ]",
    "MUTATE book [ publisher [ name ] ]",
    "MUTATE author.name [ author ]",
    "MORPH name [ title ]",
    "MORPH author [ title publisher ]",
];

#[test]
fn paper_guards_on_all_three_instances() {
    for guard in GUARDS {
        for xml in [FIG1A, FIG1B, FIG1C] {
            check_guarantees(guard, xml);
        }
    }
}

#[test]
fn optional_children_scenarios() {
    // Authors without names, books without awards — the cardinality-zero
    // cases the theorems hinge on.
    let optional = "<data>\
        <author><name>A</name><book><title>X</title></book></author>\
        <author><book><title>Y</title></book></author>\
        </data>";
    for guard in [
        "CAST MUTATE author.name [ author ]",
        "CAST MORPH name [ author [ title ] ]",
        "CAST MORPH author [ name title ]",
        "CAST MORPH title [ name ]",
    ] {
        check_guarantees(guard, optional);
    }
}

// ---- randomized scenarios ----

/// A small random library document: books with optional/multiple
/// authors, optional publisher, varying counts.
fn random_library() -> impl Strategy<Value = String> {
    let book = (
        0usize..3, // authors
        proptest::bool::ANY,
        proptest::bool::ANY, // has publisher / has award
    );
    proptest::collection::vec(book, 1..5).prop_map(|books| {
        let mut s = String::from("<lib>");
        for (i, (authors, has_pub, has_award)) in books.iter().enumerate() {
            s.push_str("<book>");
            s.push_str(&format!("<title>T{i}</title>"));
            for a in 0..*authors {
                s.push_str(&format!("<author><name>A{a}</name></author>"));
            }
            if *has_pub {
                s.push_str(&format!("<publisher><name>P{}</name></publisher>", i % 2));
            }
            if *has_award {
                s.push_str("<award>prize</award>");
            }
            s.push_str("</book>");
        }
        s.push_str("</lib>");
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn guarantees_hold_on_random_libraries(
        xml in random_library(),
        guard_idx in 0usize..8,
    ) {
        let guards = [
            "CAST MORPH author [ name book.title ]",
            "CAST MORPH book [ title author [ name ] ]",
            "CAST MORPH title [ author ]",
            "CAST MORPH publisher [ name title ]",
            "CAST MORPH award [ title ]",
            "CAST MUTATE book [ award ]",
            "CAST MORPH lib [ title ]",
            "CAST MORPH author.name [ title ]",
        ];
        check_guarantees(guards[guard_idx], &xml);
    }
}

//! Smoke tests of the `xmorph` command-line tool.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_xmorph");

const DATA: &str = "<data>\
    <book><title>X</title><author><name>Tim</name></author></book>\
    <book><title>Y</title><author><name>Ann</name></author></book>\
    </data>";

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xmorph-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(BIN).args(args).output().expect("spawn xmorph");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn apply_transforms() {
    let input = temp_file("apply.xml", DATA);
    let (stdout, stderr, ok) = run(&[
        "apply",
        "--guard",
        "MORPH author [ name book [ title ] ]",
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("<author><name>Tim</name><book><title>X</title></book></author>"));
    assert!(stderr.contains("strongly-typed"));
}

#[test]
fn apply_reads_stdin() {
    let mut child = Command::new(BIN)
        .args([
            "apply",
            "--guard",
            "MORPH title",
            "--input",
            "-",
            "--no-wrapper",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<d><title>Solo</title></d>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "<title>Solo</title>"
    );
}

#[test]
fn analyze_reports() {
    let input = temp_file("analyze.xml", DATA);
    let (stdout, _, ok) = run(&[
        "analyze",
        "--guard",
        "MORPH author [ name ]",
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("target shape:"));
    assert!(stdout.contains("label-to-type report"));
    assert!(stdout.contains("information-loss report"));
    assert!(stdout.contains("admitted"));
}

#[test]
fn rejected_guard_fails_with_explanation() {
    let fig1c = "<data><author><name>T</name>\
        <book><title>X</title><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><publisher><name>V</name></publisher></book>\
        </author></data>";
    let input = temp_file("reject.xml", fig1c);
    let (_, stderr, ok) = run(&[
        "apply",
        "--guard",
        "MORPH author [ !title name publisher [ name ] ]",
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("widening"), "{stderr}");
}

#[test]
fn shape_prints_cardinalities() {
    let input = temp_file("shape.xml", DATA);
    let (stdout, stderr, ok) = run(&["shape", "--input", input.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("book 2..2"), "{stdout}");
    assert!(stderr.contains("distinct types"));
}

#[test]
fn shred_then_apply_from_store() {
    let input = temp_file("shred.xml", DATA);
    let store = temp_file("store.db", "");
    std::fs::remove_file(&store).ok();
    let (_, stderr, ok) = run(&[
        "shred",
        "--input",
        input.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let (stdout, stderr, ok) = run(&[
        "apply",
        "--guard",
        "MORPH title",
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("<title>X</title><title>Y</title>"));
    std::fs::remove_file(&store).ok();
}

#[test]
fn infer_produces_guard() {
    let (stdout, _, ok) = run(&[
        "infer",
        "--query",
        r#"for $a in doc("d")/result/author return <e>{string($a/name)}</e>"#,
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "MORPH author [ name ]");
}

#[test]
fn query_runs_baseline_engine() {
    let input = temp_file("query.xml", DATA);
    let (stdout, _, ok) = run(&[
        "query",
        "--input",
        input.to_str().unwrap(),
        "--query",
        r#"doc("doc.xml")//title"#,
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "<title>X</title><title>Y</title>");
}

#[test]
fn quantify_measures() {
    let input = temp_file("quantify.xml", DATA);
    let (stdout, _, ok) = run(&[
        "quantify",
        "--guard",
        "MORPH author [ name ]",
        "--input",
        input.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("drops 0.0%"), "{stdout}");
}

#[test]
fn bad_usage_fails_gracefully() {
    let (_, stderr, ok) = run(&["apply"]);
    assert!(!ok);
    assert!(stderr.contains("--guard"));
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

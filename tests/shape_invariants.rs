//! Semantic invariants of the transformation machinery, checked by
//! property testing:
//!
//! * the pipelined and naive closest-join strategies render identical
//!   output (the §VII optimization is behaviour-preserving);
//! * `MUTATE` is type-complete — every non-dropped source type survives
//!   in the target (Def. 8's premise);
//! * `TRANSLATE` changes names only, never structure;
//! * statically strong guards measure *zero* actual loss
//!   ([`xmorph_core::analysis::quantify`] agrees with Theorems 1–2).

use proptest::prelude::*;
use std::collections::BTreeSet;
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::semantics::shape::Shape;
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_pagestore::Store;

/// Random small library documents (same family as theorem_validation).
fn random_library() -> impl Strategy<Value = String> {
    let book = (0usize..3, proptest::bool::ANY, proptest::bool::ANY);
    proptest::collection::vec(book, 1..6).prop_map(|books| {
        let mut s = String::from("<lib>");
        for (i, (authors, has_pub, has_award)) in books.iter().enumerate() {
            s.push_str("<book>");
            s.push_str(&format!("<title>T{i}</title>"));
            for a in 0..*authors {
                s.push_str(&format!("<author><name>A{a}</name></author>"));
            }
            if *has_pub {
                s.push_str(&format!("<publisher><name>P{}</name></publisher>", i % 2));
            }
            if *has_award {
                s.push_str("<award>prize</award>");
            }
            s.push_str("</book>");
        }
        s.push_str("</lib>");
        s
    })
}

const GUARDS: &[&str] = &[
    "CAST MORPH author [ name book.title ]",
    "CAST MORPH book [ title author [ name ] ]",
    "CAST MORPH title [ author publisher ]",
    "CAST MORPH lib [ book [ * ] ]",
    "CAST MORPH book [ ** ]",
    "CAST MORPH (RESTRICT book [ award ]) [ title ]",
    "CAST MUTATE title [ award ]",
    "CAST MORPH (NEW entry) [ title author ]",
];

fn shred(xml: &str) -> (Store, ShreddedDoc) {
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
    (store, doc)
}

fn target_of(guard: &str, doc: &ShreddedDoc) -> Option<Shape> {
    Guard::parse(guard)
        .unwrap()
        .analyze(doc)
        .ok()
        .map(|a| a.target)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipelined_and_naive_joins_agree(
        xml in random_library(),
        guard_idx in 0usize..GUARDS.len(),
    ) {
        let (_s, doc) = shred(&xml);
        let Some(target) = target_of(GUARDS[guard_idx], &doc) else { return Ok(()) };
        let fast = render(&doc, &target, &RenderOptions { pipelined: true, ..Default::default() })
            .unwrap();
        let slow = render(&doc, &target, &RenderOptions { pipelined: false, ..Default::default() })
            .unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn mutate_is_type_complete(xml in random_library()) {
        // A MUTATE that drops nothing keeps a 1:1 correspondence between
        // source types and target bases (Def. 8).
        let (_s, doc) = shred(&xml);
        let guard = Guard::parse("CAST MUTATE author [ title ]").unwrap();
        let Ok(analysis) = guard.analyze(&doc) else { return Ok(()) };
        let bases: BTreeSet<u32> = analysis
            .target
            .preorder()
            .into_iter()
            .filter_map(|n| analysis.target.nodes[n].base)
            .map(|b| b.0)
            .collect();
        let sources: BTreeSet<u32> = doc
            .types()
            .ids()
            .filter(|&t| doc.instance_count(t) > 0)
            .map(|t| t.0)
            .collect();
        prop_assert_eq!(bases, sources);
    }

    #[test]
    fn translate_preserves_structure(xml in random_library()) {
        let (_s, doc) = shred(&xml);
        let plain = Guard::parse("CAST MUTATE lib").unwrap().analyze(&doc).unwrap().target;
        let renamed = Guard::parse("CAST TRANSLATE title -> headline")
            .unwrap()
            .analyze(&doc)
            .unwrap()
            .target;
        // Same arena sizes, same child structure, same bases.
        prop_assert_eq!(plain.reachable_count(), renamed.reachable_count());
        let plain_nodes = plain.preorder();
        let renamed_nodes = renamed.preorder();
        for (&a, &b) in plain_nodes.iter().zip(renamed_nodes.iter()) {
            prop_assert_eq!(plain.nodes[a].base, renamed.nodes[b].base);
            prop_assert_eq!(plain.nodes[a].children.len(), renamed.nodes[b].children.len());
        }
        // And exactly the title types changed names.
        for (&a, &b) in plain_nodes.iter().zip(renamed_nodes.iter()) {
            if plain.nodes[a].name == "title" {
                prop_assert_eq!(&renamed.nodes[b].name, "headline");
            } else {
                prop_assert_eq!(&plain.nodes[a].name, &renamed.nodes[b].name);
            }
        }
    }

    #[test]
    fn strong_guards_measure_zero_drops(
        xml in random_library(),
        guard_idx in 0usize..GUARDS.len(),
    ) {
        // Strong = inclusive: every retained instance must survive.
        // (Note: strong does NOT bound the *copy* count — a title shared
        // by two authors legitimately renders under both, and those
        // closest edges already existed in the source, so the set-based
        // reversibility of §V-A holds even though quantify's bag-based
        // duplication factor exceeds 1.)
        let (_s, doc) = shred(&xml);
        let guard = Guard::parse(GUARDS[guard_idx]).unwrap();
        let Ok(analysis) = guard.analyze(&doc) else { return Ok(()) };
        if analysis.loss.typing != xmorph_core::GuardTyping::Strong {
            return Ok(());
        }
        let q = xmorph_core::analysis::quantify(&doc, &analysis.target).unwrap();
        prop_assert_eq!(q.dropped_fraction(), 0.0, "{}", q);
    }
}

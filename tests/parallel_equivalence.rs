//! Parallel guard evaluation must be byte-identical to the sequential
//! renderer on every benchmark dataset — the correctness half of the
//! scaling experiment (`fig_scaling`).

use xmorph_core::{apply_parallel, Guard, ParallelOptions, ShreddedDoc};
use xmorph_datagen::{DblpConfig, NasaConfig, XmarkConfig};
use xmorph_pagestore::Store;

fn shred(xml: &str) -> (Store, ShreddedDoc) {
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
    (store, doc)
}

fn assert_byte_identical(doc: &ShreddedDoc, guards: &[&str]) {
    for guard_src in guards {
        let guard = Guard::parse(guard_src).unwrap();
        let sequential = guard.apply(doc).unwrap().xml;
        for threads in [1, 2, 4] {
            let opts = ParallelOptions::with_threads(threads);
            let parallel = apply_parallel(&guard, doc, &opts).unwrap().xml;
            assert_eq!(
                parallel, sequential,
                "parallel output diverged: guard={guard_src} threads={threads}"
            );
        }
    }
}

#[test]
fn xmark_parallel_is_byte_identical() {
    let xml = XmarkConfig {
        factor: 0.005,
        ..Default::default()
    }
    .generate();
    let (_store, doc) = shred(&xml);
    assert_byte_identical(
        &doc,
        &[
            "MORPH people [ person [ address [ city ] ] ]",
            "MORPH item [ name location quantity ]",
            "MORPH person [ name emailaddress ]",
            "MORPH open_auction [ initial current itemref ]",
        ],
    );
}

#[test]
fn dblp_parallel_is_byte_identical() {
    let xml = DblpConfig {
        records: 400,
        ..Default::default()
    }
    .generate();
    let (_store, doc) = shred(&xml);
    assert_byte_identical(
        &doc,
        &["MORPH author", "CAST-WIDENING MORPH author [title [year]]"],
    );
}

#[test]
fn nasa_parallel_is_byte_identical() {
    let xml = NasaConfig {
        datasets: 30,
        ..Default::default()
    }
    .generate();
    let (_store, doc) = shred(&xml);
    assert_byte_identical(
        &doc,
        &["MORPH dataset [ reference [ source [ other [ title ] ] ] ]"],
    );
}

//! Persistence: shredded documents and xqlite collections survive a
//! store close/reopen, and guards run identically against reopened
//! stores — the "shred once, transform many times" usage of §IX.

use std::path::PathBuf;
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_pagestore::Store;
use xmorph_xqlite::XqliteDb;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xmorph-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const DATA: &str = "<data>\
    <book><title>X</title><author><name>Tim</name></author></book>\
    <book><title>Y</title><author><name>Ann</name></author></book>\
    </data>";

#[test]
fn shredded_doc_survives_reopen() {
    let path = temp_path("shred-reopen.db");
    let expected = {
        let store = Store::create(&path).unwrap();
        let doc = ShreddedDoc::shred_str(&store, DATA).unwrap();
        let guard = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
        let out = guard.apply(&doc).unwrap();
        store.flush().unwrap();
        out.xml
    };
    {
        let store = Store::open(&path).unwrap();
        let doc = ShreddedDoc::open(&store).unwrap();
        let guard = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
        let out = guard.apply(&doc).unwrap();
        assert_eq!(out.xml, expected);
        // The adorned shape also survived.
        assert_eq!(doc.types().matching("author").len(), 1);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn multiple_guards_one_shred() {
    let path = temp_path("multi-guard.db");
    {
        let store = Store::create(&path).unwrap();
        ShreddedDoc::shred_str(&store, DATA).unwrap();
        store.flush().unwrap();
    }
    let store = Store::open(&path).unwrap();
    let doc = ShreddedDoc::open(&store).unwrap();
    for (guard, expect) in [
        ("MORPH title", "<title>X</title>"),
        ("MORPH name", "<name>Tim</name>"),
        (
            "MORPH book [ title name ]",
            "<book><title>X</title><name>Tim</name></book>",
        ),
    ] {
        let out = Guard::parse(guard).unwrap().apply(&doc).unwrap();
        assert!(out.xml.contains(expect), "{guard}: {}", out.xml);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn xqlite_collection_survives_reopen() {
    let path = temp_path("xqlite-reopen.db");
    {
        let store = Store::create(&path).unwrap();
        let db = XqliteDb::new(store.clone());
        db.store_document("a.xml", "<r><v>1</v></r>").unwrap();
        db.store_document("b.xml", "<r><v>2</v></r>").unwrap();
        store.flush().unwrap();
    }
    {
        let store = Store::open(&path).unwrap();
        let db = XqliteDb::new(store);
        assert_eq!(db.document_names().unwrap(), vec!["a.xml", "b.xml"]);
        assert_eq!(db.query(r#"doc("b.xml")/r/v"#).unwrap(), "<v>2</v>");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn io_stats_show_reopened_reads() {
    let path = temp_path("stats-reopen.db");
    {
        let store = Store::create(&path).unwrap();
        let xml = xmorph_datagen::DblpConfig {
            records: 500,
            ..Default::default()
        }
        .generate();
        ShreddedDoc::shred_str(&store, &xml).unwrap();
        store.flush().unwrap();
    }
    // Rebuilding columns from the typeseq tree walks many pages through
    // the small pool: the stats must show real device reads.
    let rebuild_reads = {
        let stats = xmorph_pagestore::IoStats::new();
        let store = Store::options()
            .stats(stats.clone())
            .capacity(64) // small pool forces real reads
            .open(&path)
            .unwrap();
        let doc = ShreddedDoc::open_with(
            &store,
            &xmorph_core::OpenOptions::builder().persisted_columns(false),
        )
        .unwrap();
        let guard = Guard::parse("CAST MORPH author [ title ]").unwrap();
        let out = guard.apply(&doc).unwrap();
        assert!(out.xml.len() > 1000);
        let snap = stats.snapshot();
        assert!(snap.blocks_read > 10, "expected device reads, got {snap:?}");
        snap.blocks_read
    };
    // Serving persisted column segments skips the typeseq walk, so the
    // same query touches far fewer pool pages on a cold open.
    {
        let stats = xmorph_pagestore::IoStats::new();
        let store = Store::options()
            .stats(stats.clone())
            .capacity(64)
            .open(&path)
            .unwrap();
        let doc = ShreddedDoc::open(&store).unwrap();
        let guard = Guard::parse("CAST MORPH author [ title ]").unwrap();
        let out = guard.apply(&doc).unwrap();
        assert!(out.xml.len() > 1000);
        let snap = stats.snapshot();
        assert!(
            snap.blocks_read < rebuild_reads,
            "persisted columns should read fewer pool pages: {snap:?} vs {rebuild_reads}"
        );
    }
    std::fs::remove_file(&path).ok();
}

//! End-to-end checks of every worked example in the paper's narrative
//! (Figures 1–6, Table I, and the §V-B / §VI examples).

use xmorph_core::model::shape::AdornedShape;
use xmorph_core::{Card, CardMax, Guard, GuardTyping, MorphError};
use xmorph_xml::dom::Document;

const FIG1A: &str = "<data>\
    <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
    <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
    </data>";

const FIG1B: &str = "<data>\
    <publisher><name>W</name><book><title>X</title><author><name>Tim</name></author></book></publisher>\
    <publisher><name>V</name><book><title>Y</title><author><name>Tim</name></author></book></publisher>\
    </data>";

const FIG1C: &str = "<data>\
    <author><name>Tim</name>\
      <book><title>X</title><publisher><name>W</name></publisher></book>\
      <book><title>Y</title><publisher><name>V</name></publisher></book>\
    </author></data>";

/// §I: the motivating XQuery "succeeds only for instance (c)". Our
/// baseline engine demonstrates the brittleness the guard fixes.
#[test]
fn fig1_motivating_query_is_brittle() {
    let query = r#"for $a in doc("d")/data/author return <t>{string($a/book/title)}</t>"#;
    let run = |xml: &str| {
        let db = xmorph_xqlite::XqliteDb::in_memory();
        db.store_document("d", xml).unwrap();
        db.query(query).unwrap()
    };
    assert_eq!(run(FIG1A), ""); // fails: no author under data
    assert_eq!(run(FIG1B), ""); // fails too
    assert_eq!(run(FIG1C), "<t>X</t>"); // succeeds only on (c)
}

/// Figure 2: the guard transforms (a) and (b) to the same instance; (c)
/// differs only in author grouping.
#[test]
fn fig2_guard_unifies_the_instances() {
    let guard = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
    let a = guard.apply_to_str(FIG1A).unwrap();
    let b = guard.apply_to_str(FIG1B).unwrap();
    let c = guard.apply_to_str(FIG1C).unwrap();
    assert_eq!(a.xml, b.xml);
    assert_eq!(
        a.xml,
        "<result>\
         <author><name>Tim</name><book><title>X</title></book></author>\
         <author><name>Tim</name><book><title>Y</title></book></author>\
         </result>"
    );
    assert_eq!(
        c.xml,
        "<result>\
         <author><name>Tim</name>\
         <book><title>X</title></book>\
         <book><title>Y</title></book>\
         </author></result>"
            .replace('\n', "")
    );
    // All three runs are strongly-typed (§I: "The guard given above
    // turns out to be strongly-typed").
    for out in [&a, &b, &c] {
        assert_eq!(out.analysis.loss.typing, GuardTyping::Strong);
    }
}

/// Figure 3: the !title guard is widening on instance (c) — "both
/// titles, X and Y, are closest to the first publisher, W, which adds
/// data".
#[test]
fn fig3_widening_guard() {
    let guard = Guard::parse("MORPH author [ !title name publisher [ name ] ]").unwrap();
    let analysis = guard.analyze_str(FIG1C).unwrap();
    assert_eq!(analysis.loss.typing, GuardTyping::Widening);
    // Rejected without a cast, admitted with one.
    assert!(matches!(
        guard.apply_to_str(FIG1C),
        Err(MorphError::Rejected { .. })
    ));
    let cast =
        Guard::parse("CAST-WIDENING MORPH author [ !title name publisher [ name ] ]").unwrap();
    let out = cast.apply_to_str(FIG1C).unwrap();
    // Both titles now sit next to both publishers under the author.
    assert_eq!(out.xml.matches("<title>").count(), 2);
}

/// Figure 5: adorned shapes. Instance (a)'s book edge is 2..2; giving an
/// author no name makes the name edge 0..1 (the paper's worked example).
#[test]
fn fig5_adorned_shapes() {
    let doc = Document::parse_str(FIG1A).unwrap();
    let shape = AdornedShape::from_document(&doc);
    let book = shape.types().matching("book")[0];
    assert_eq!(shape.card(book), Card::exactly(2));

    let missing_name = "<data>\
        <book><title>X</title><author><name>T</name></author></book>\
        <book><title>Y</title><author/></book></data>";
    let doc = Document::parse_str(missing_name).unwrap();
    let shape = AdornedShape::from_document(&doc);
    let name = shape.types().matching("author.name")[0];
    assert_eq!(shape.card(name), Card::new(0, CardMax::Finite(1)));
}

/// Figure 6 / Def. 4: the xform of instance (a) into shape (c) — the
/// quickstart output — contains each vertex type of the requested shape.
#[test]
fn fig6_xform_output_shape() {
    let guard = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
    let out = guard.apply_to_str(FIG1A).unwrap();
    let doc = Document::parse_str(&out.xml).unwrap();
    let root = doc.root_element().unwrap();
    let authors: Vec<_> = doc.children_named(root, "author").collect();
    assert_eq!(authors.len(), 2);
    for author in authors {
        assert!(doc.child_named(author, "name").is_some());
        let book = doc.child_named(author, "book").unwrap();
        assert!(doc.child_named(book, "title").is_some());
    }
}

/// §III: the MUTATE example "moves publisher below book leaving the rest
/// of the shape unchanged" — transforming (b) toward (a).
#[test]
fn section3_mutate_book_publisher() {
    let guard = Guard::parse("MUTATE book [ publisher [ name ] ]").unwrap();
    let out = guard.apply_to_str(FIG1B).unwrap();
    let doc = Document::parse_str(&out.xml).unwrap();
    let root = doc.root_element().unwrap();
    let data = doc.child_named(root, "data").unwrap();
    let books: Vec<_> = doc.children_named(data, "book").collect();
    assert_eq!(books.len(), 2, "{}", out.xml);
    for book in books {
        let publisher = doc
            .child_named(book, "publisher")
            .expect("publisher moved under book");
        assert!(doc.child_named(publisher, "name").is_some());
    }
}

/// §III: composing MORPH with MUTATE(DROP name) leaves only authors —
/// "The final shape consists only of author (closest to a name)".
/// Author elements carry no direct text in instance (a), so the result
/// is bare author elements.
#[test]
fn section3_compose_drop() {
    let guard = Guard::parse("MORPH author [ name ] | MUTATE (DROP name)").unwrap();
    let out = guard.apply_to_str(FIG1A).unwrap();
    assert_eq!(out.xml, "<result><author/><author/></result>");
}

/// §VI: TRANSLATE renames author to writer.
#[test]
fn section6_translate() {
    let guard = Guard::parse("MORPH author [ name ] | TRANSLATE author -> writer").unwrap();
    let out = guard.apply_to_str(FIG1A).unwrap();
    assert!(out.xml.contains("<writer><name>Tim</name></writer>"));
}

/// §V-B: with optional author names, `MUTATE name [ author ]` is
/// non-inclusive while `MUTATE data [ name author ]` stays inclusive.
#[test]
fn section5_optionality_examples() {
    let optional = "<data>\
        <author><name>A</name><x>1</x></author>\
        <author><x>2</x></author></data>";
    let narrowing = Guard::parse("MUTATE name [ author ]").unwrap();
    let analysis = narrowing.analyze_str(optional).unwrap();
    assert!(!analysis.loss.inclusive, "{}", analysis.loss);

    let inclusive = Guard::parse("MUTATE data [ name author ]").unwrap();
    let analysis = inclusive.analyze_str(optional).unwrap();
    assert!(analysis.loss.inclusive, "{}", analysis.loss);
}

/// Table I's key entries on shape (e): the minimum/maximum number of
/// titles per name is 2 (via the author's two books).
#[test]
fn table1_path_cardinalities() {
    let doc = Document::parse_str(FIG1C).unwrap();
    let shape = AdornedShape::from_document(&doc);
    let types = shape.types();
    let name = types.matching("author.name")[0];
    let title = types.matching("title")[0];
    assert_eq!(shape.path_card(name, title), Some(Card::exactly(2)));
    assert_eq!(shape.path_card(title, name), Some(Card::one()));
    let publisher = types.matching("publisher")[0];
    assert_eq!(shape.path_card(title, publisher), Some(Card::one()));
}

/// §VII: the worked render example — the three closest joins that build
/// the author-rooted output from instance (a).
#[test]
fn section7_closest_joins() {
    use xmorph_core::ShreddedDoc;
    use xmorph_pagestore::Store;
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, FIG1A).unwrap();
    let types = doc.types();
    let author = types.matching("author")[0];
    let name = types.matching("author.name")[0];
    let book = types.matching("book")[0];
    let title = types.matching("title")[0];

    // Join 1: authors {1.1.2, 1.2.2} with names.
    let j1 = doc.closest_children(&"1.1.2".parse().unwrap(), author, name);
    assert_eq!(j1[0].0.to_string(), "1.1.2.1");
    // Join 2: authors with books (upward join).
    let j2 = doc.closest_children(&"1.1.2".parse().unwrap(), author, book);
    assert_eq!(j2[0].0.to_string(), "1.1");
    // Join 3: books with titles.
    let j3 = doc.closest_children(&"1.1".parse().unwrap(), book, title);
    assert_eq!(j3[0].0.to_string(), "1.1.1");
}

//! Cross-system integration: guard + XQuery pipelines, equivalence with
//! direct queries when shapes already match, and architecture-1 usage
//! ("physically transform the data" then couple with an XQuery engine).

use xmorph_core::Guard;
use xmorph_xqlite::XqliteDb;

const BOOKS: &str = "<data>\
    <book><title>X</title><author><name>Tim</name></author><year>2001</year></book>\
    <book><title>Y</title><author><name>Ann</name></author><year>2005</year></book>\
    <book><title>Z</title><author><name>Ann</name></author><year>2008</year></book>\
    </data>";

/// Pipeline: transform with a guard, store the result, query it.
fn guarded_query(guard: &str, xml: &str, query: &str) -> String {
    let guard = Guard::parse(guard).unwrap();
    let out = guard.apply_to_str(xml).unwrap();
    let db = XqliteDb::in_memory();
    db.store_document("t.xml", &out.xml).unwrap();
    db.query(query).unwrap()
}

#[test]
fn guard_then_query_counts_by_author() {
    let result = guarded_query(
        "MORPH author [ name book [ title ] ]",
        BOOKS,
        r#"for $a in doc("t.xml")/result/author return <n>{string($a/name)}</n>"#,
    );
    assert_eq!(result, "<n>Tim</n><n>Ann</n><n>Ann</n>");
}

#[test]
fn identity_shape_matches_direct_query() {
    // When the guard asks for the shape the data already has, the
    // guarded query equals a direct query on the source.
    let direct = {
        let db = XqliteDb::in_memory();
        db.store_document("t.xml", BOOKS).unwrap();
        db.query(r#"for $b in doc("t.xml")//book return <t>{string($b/title)}</t>"#)
            .unwrap()
    };
    let guarded = guarded_query(
        "MORPH data [ book [ title author [ name ] year ] ]",
        BOOKS,
        r#"for $b in doc("t.xml")//book return <t>{string($b/title)}</t>"#,
    );
    assert_eq!(direct, guarded);
}

#[test]
fn distinct_values_on_transformed_values() {
    // §II: "it is the values in the target shape rather than the source
    // shape on which the query should be evaluated" — distinct-values
    // over morphed author names.
    let result = guarded_query(
        "MORPH author [ name ]",
        BOOKS,
        r#"distinct-values(doc("t.xml")//name)"#,
    );
    assert_eq!(result, "Tim Ann"); // first-occurrence order
}

#[test]
fn where_clause_over_morphed_shape() {
    let result = guarded_query(
        "MORPH book [ title year ]",
        BOOKS,
        r#"for $b in doc("t.xml")/result/book where $b/year > 2003 return $b/title"#,
    );
    assert_eq!(result, "<title>Y</title><title>Z</title>");
}

#[test]
fn both_systems_share_one_pagestore() {
    // The xqlite database and the XMorph shredder can live in one store
    // (different trees of the same file).
    let store = xmorph_pagestore::Store::in_memory();
    let db = XqliteDb::new(store.clone());
    db.store_document("raw.xml", BOOKS).unwrap();
    let doc = xmorph_core::ShreddedDoc::shred_str(&store, BOOKS).unwrap();
    let guard = Guard::parse("MORPH title").unwrap();
    let out = guard.apply(&doc).unwrap();
    assert_eq!(out.xml.matches("<title>").count(), 3);
    assert_eq!(db.load_document("raw.xml").unwrap().as_deref(), Some(BOOKS));
}

#[test]
fn transformed_output_is_requeryable_through_xmorph() {
    // Guards compose across *systems*: morph once, shred the output,
    // morph again (equivalent to COMPOSE but materialized).
    let first = Guard::parse("MORPH author [ name book [ title ] ]").unwrap();
    let out1 = first.apply_to_str(BOOKS).unwrap();
    let second = Guard::parse("MORPH book [ title name ]").unwrap();
    let out2 = second.apply_to_str(&out1.xml).unwrap();
    // Every book now carries its author's name directly.
    assert!(
        out2.xml
            .contains("<book><title>X</title><name>Tim</name></book>"),
        "{}",
        out2.xml
    );
}

//! Read-only memory mapping of page-aligned file regions.
//!
//! Column segments (see [`crate::segment`]) are laid out in whole pages
//! so a file-backed store can hand them to readers as an OS mapping
//! instead of a heap copy — the mapped bytes live in the page cache, not
//! the process heap, and unmapping is one `munmap`. The wrapper is
//! deliberately tiny: map read-only and shared, expose the bytes as a
//! slice, unmap on drop. No external crate is used; the two syscalls are
//! declared directly against the C library.
//!
//! Mapping is best-effort everywhere: any failure (non-unix platform,
//! an offset the kernel rejects — e.g. the system page size exceeds
//! [`crate::PAGE_SIZE`] — or plain `ENOMEM`) reports "not mappable" and
//! callers fall back to an ordinary read.

use std::ops::Deref;
use std::ptr::NonNull;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// An owned read-only mapping of a byte range of a file. The mapped
/// bytes are immutable for the mapping's lifetime (the store never
/// rewrites segment extents in place), so the region is safely shared
/// across threads.
pub struct MmapRegion {
    ptr: NonNull<u8>,
    len: usize,
}

// Safety: the mapping is PROT_READ and the backing extent is
// write-once (segments are never mutated after publication), so
// concurrent reads from any thread see frozen bytes.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Map `len` bytes of `file` starting at `offset`, read-only.
    /// Returns `None` when the platform or kernel declines; callers
    /// must treat that as "read the bytes instead", never as an error.
    #[cfg(unix)]
    pub(crate) fn map(file: &std::fs::File, offset: u64, len: usize) -> Option<MmapRegion> {
        use std::os::unix::io::AsRawFd;
        if len == 0 || offset > i64::MAX as u64 {
            return None;
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                offset as i64,
            )
        };
        if ptr == sys::map_failed() {
            return None;
        }
        NonNull::new(ptr as *mut u8).map(|ptr| MmapRegion { ptr, len })
    }

    #[cfg(not(unix))]
    pub(crate) fn map(_file: &std::fs::File, _offset: u64, _len: usize) -> Option<MmapRegion> {
        None
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never constructed in practice —
    /// empty segments are read, not mapped).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for MmapRegion {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Safety: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until `munmap` in Drop.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            sys::munmap(self.ptr.as_ptr() as *mut std::os::raw::c_void, self.len);
        }
    }
}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn map_reads_file_bytes() {
        let dir = std::env::temp_dir().join(format!("pagestore-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mmap-basic.bin");
        let mut data = vec![0u8; crate::PAGE_SIZE * 2];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&data)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        if let Some(map) = MmapRegion::map(&file, 0, data.len()) {
            assert_eq!(&*map, &data[..]);
            assert_eq!(map.len(), data.len());
        }
        // Page-aligned interior offset.
        if let Some(map) = MmapRegion::map(&file, crate::PAGE_SIZE as u64, crate::PAGE_SIZE) {
            assert_eq!(&*map, &data[crate::PAGE_SIZE..]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_len_declines() {
        let dir = std::env::temp_dir().join(format!("pagestore-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mmap-empty.bin");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(MmapRegion::map(&file, 0, 0).is_none());
        std::fs::remove_file(&path).ok();
    }
}

//! Error type for the storage engine.

use std::fmt;
use std::io;
use std::sync::Arc;

/// Result alias used throughout the crate.
pub type StoreResult<T> = Result<T, StoreError>;

/// An error raised by the storage engine.
#[derive(Debug, Clone)]
pub enum StoreError {
    /// An underlying I/O failure. `Arc`-wrapped so the error stays `Clone`.
    Io(Arc<io::Error>),
    /// The file is not a pagestore database (bad magic / version).
    BadDatabase(String),
    /// A key exceeded [`crate::btree::MAX_KEY_LEN`].
    KeyTooLarge(usize),
    /// The table catalog is full (too many named trees).
    CatalogFull,
    /// A tree name exceeded the catalog slot width.
    NameTooLong(String),
    /// A segment's catalog entry is present but unusable (malformed
    /// value, or an extent outside the allocated page range — the
    /// signature of a torn shutdown before the catalog flushed).
    /// Callers with a rebuild path treat this as "segment absent".
    SegmentInvalid {
        /// The segment's name.
        name: String,
        /// What failed to validate.
        reason: &'static str,
    },
    /// Internal invariant violation — indicates a bug or corruption.
    Corrupt(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::BadDatabase(m) => write!(f, "not a pagestore database: {m}"),
            StoreError::KeyTooLarge(n) => write!(f, "key of {n} bytes exceeds the maximum"),
            StoreError::CatalogFull => write!(f, "table catalog is full"),
            StoreError::NameTooLong(n) => write!(f, "tree name {n:?} is too long"),
            StoreError::SegmentInvalid { name, reason } => {
                write!(f, "segment {name:?} is invalid: {reason}")
            }
            StoreError::Corrupt(m) => write!(f, "database corruption: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(Arc::new(e))
    }
}

//! # xmorph-pagestore
//!
//! A from-scratch, page-based embedded storage engine. In the XMorph 2.0
//! paper the interpreter shreds XML into BerkeleyDB Java Edition tables
//! (`Nodes`, `TypeToSequence`, `GroupedSequence`, `AdornedShapes` — paper
//! Fig. 8); this crate is that substrate.
//!
//! Architecture, bottom-up:
//!
//! * [`storage`] — a byte-addressed backing device: a real file
//!   ([`storage::FileStorage`]) or memory ([`storage::MemStorage`]).
//! * [`stats`] — cumulative I/O instrumentation (block counts and wall
//!   time spent blocked on I/O). The Figure 11/12 experiment harness reads
//!   these counters the way the paper read `vmstat`.
//! * [`fault`] — deterministic fault injection ([`fault::FaultStorage`]):
//!   scripted I/O errors, torn writes, and crash points for the
//!   crash-consistency harness.
//! * [`pager`] — fixed-size page allocation and transfer, with a meta page
//!   holding the table catalog.
//! * [`wal`] — a page-image write-ahead log living in a reserved page
//!   region of the same device: checksummed, LSN-stamped page images
//!   plus commit records, replayed (torn-tail aware) on open.
//! * [`buffer`] — an LRU buffer pool with write-back of dirty pages,
//!   single-writer transactions, and WAL group commit.
//! * [`btree`] — a slotted-page B+tree with variable-length keys and
//!   values, overflow chains for large values, and ordered range scans.
//! * [`mmap`] — a minimal read-only memory-map wrapper (unix only;
//!   degrades to `None` elsewhere).
//! * [`segment`] — named page-aligned blob extents with a catalog tree,
//!   served as heap copies or OS mappings.
//! * [`store`] — the public façade: a [`Store`] of named [`Tree`]s and
//!   segments, built via [`StoreOptions`].
//!
//! ```
//! use xmorph_pagestore::Store;
//!
//! let store = Store::in_memory();
//! let tree = store.open_tree("nodes").unwrap();
//! tree.insert(b"1.1", b"book").unwrap();
//! tree.insert(b"1.2", b"book").unwrap();
//! assert_eq!(tree.get(b"1.1").unwrap().as_deref(), Some(&b"book"[..]));
//! assert_eq!(tree.range(..).count(), 2);
//! ```

pub mod btree;
pub mod buffer;
pub mod error;
pub mod fault;
pub mod mmap;
pub mod pager;
pub mod segment;
pub mod stats;
pub mod storage;
pub mod store;
pub mod wal;

pub use btree::DEFAULT_FILL;
pub use buffer::{default_shard_count, BufferPool, DEFAULT_CAPACITY, MAX_SHARDS};
pub use error::{StoreError, StoreResult};
pub use fault::{FaultHandle, FaultScript, FaultStorage, TORN_BLOCK};
pub use mmap::MmapRegion;
pub use segment::{SegmentData, SegmentEntry, SEGMENT_CATALOG_TREE};
pub use stats::{IoSnapshot, IoStats, StoreStats};
pub use store::{Store, StoreOptions, Tree, Txn};
pub use wal::DEFAULT_WAL_RECORD_PAGES;

/// Size of every page, in bytes. 4 KiB matches the usual filesystem block
/// size, so one page transfer ≈ one "block" in the Figure 11 sense.
pub const PAGE_SIZE: usize = 4096;

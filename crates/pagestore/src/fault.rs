//! Deterministic fault injection behind the [`Storage`] trait.
//!
//! PR 3/4 made durability claims — data-before-catalog ordering, a
//! reconciled free-extent list, validate-or-absent segment reads — that
//! nothing in the tree exercised: no test ever saw an I/O error mid-write
//! or a crash between two sync points. [`FaultStorage`] closes that gap.
//! It wraps an in-memory byte image and executes a [`FaultScript`]:
//! transient `read_at`/`write_at`/`sync` errors by op index, byte-range
//! write faults, and a hard "crash here" cut that applies only a torn
//! prefix of the in-flight write (rounded down to a 512-byte device
//! sector), freezes the image, and fails every subsequent op. The frozen
//! image is exactly what a reopen after power loss would see; the crash
//! harness feeds it back through [`FaultStorage::with_image`] and checks
//! the store's invariants.
//!
//! Everything is deterministic: torn-write lengths come from a splitmix64
//! stream seeded by [`FaultScript::torn_seed`], so a failing crash point
//! reproduces from its `(crash_at_write, torn_seed)` pair alone.
//!
//! The wrapper costs nothing when unused: plain stores keep constructing
//! `FileStorage`/`MemStorage` directly, and the pager already works
//! through `Box<dyn Storage>`, so no production code path changes shape.

use crate::storage::Storage;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::io;
use std::sync::Arc;

/// Sector granularity for torn writes: a crash mid-write persists a
/// prefix rounded down to this boundary, modelling a disk that completes
/// whole 512-byte sectors but tears multi-sector page writes.
pub const TORN_BLOCK: usize = 512;

/// A scripted fault plan. Ops are counted per kind from 0 in call order;
/// byte ranges address the device image.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// Read op indexes that fail with an injected error (no state change).
    pub fail_reads: BTreeSet<u64>,
    /// Write op indexes that fail with an injected error (no state change).
    pub fail_writes: BTreeSet<u64>,
    /// Sync op indexes that fail with an injected error.
    pub fail_syncs: BTreeSet<u64>,
    /// Fail any write touching `[start, end)` of the device image.
    pub fail_write_range: Option<(u64, u64)>,
    /// Crash at this write op index: the write persists only a torn
    /// prefix, the image freezes, and every later op fails.
    pub crash_at_write: Option<u64>,
    /// Crash at this sync op index: the sync fails, the image freezes
    /// as-is (every prior write landed, the barrier itself did not),
    /// and every later op fails. Exercises crash points *between* a
    /// WAL append's write and its commit-point fsync.
    pub crash_at_sync: Option<u64>,
    /// Decline-with-error on `mmap` instead of `Ok(None)`.
    pub fail_mmap: bool,
    /// Seed for the torn-write length stream.
    pub torn_seed: u64,
}

impl FaultScript {
    /// Script with no faults.
    pub fn none() -> Self {
        FaultScript::default()
    }

    /// Fail the `i`-th read op.
    pub fn fail_read(mut self, i: u64) -> Self {
        self.fail_reads.insert(i);
        self
    }

    /// Fail the `i`-th write op.
    pub fn fail_write(mut self, i: u64) -> Self {
        self.fail_writes.insert(i);
        self
    }

    /// Fail the `i`-th sync op.
    pub fn fail_sync(mut self, i: u64) -> Self {
        self.fail_syncs.insert(i);
        self
    }

    /// Fail every write overlapping `[start, end)` bytes of the image.
    pub fn fail_writes_in(mut self, start: u64, end: u64) -> Self {
        self.fail_write_range = Some((start, end));
        self
    }

    /// Crash at the `i`-th write op (torn prefix, then frozen image).
    pub fn crash_at(mut self, i: u64) -> Self {
        self.crash_at_write = Some(i);
        self
    }

    /// Crash at the `i`-th sync op (image freezes un-torn, sync fails).
    pub fn crash_at_sync(mut self, i: u64) -> Self {
        self.crash_at_sync = Some(i);
        self
    }

    /// Make `mmap` fail instead of declining.
    pub fn fail_mmap(mut self) -> Self {
        self.fail_mmap = true;
        self
    }

    /// Seed the torn-write length stream.
    pub fn torn_seed(mut self, seed: u64) -> Self {
        self.torn_seed = seed;
        self
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    reads: u64,
    writes: u64,
    syncs: u64,
    injected: u64,
}

#[derive(Debug)]
struct Inner {
    image: Vec<u8>,
    script: FaultScript,
    counters: Counters,
    crashed: bool,
    rng: u64,
}

impl Inner {
    fn next_rand(&mut self) -> u64 {
        // splitmix64: tiny, seedable, and plenty for torn-length draws.
        self.rng = self.rng.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected fault: {kind}"))
}

/// A scripted-fault memory device. Construct with [`FaultStorage::new`]
/// (fresh image) or [`FaultStorage::with_image`] (reopen a frozen crash
/// image); the paired [`FaultHandle`] observes op counts and extracts
/// the image from outside the store.
#[derive(Debug)]
pub struct FaultStorage {
    inner: Arc<Mutex<Inner>>,
}

/// Shared observer for a [`FaultStorage`]: op counters, crash state, and
/// the device image (for reopen-after-crash checks).
#[derive(Debug, Clone)]
pub struct FaultHandle {
    inner: Arc<Mutex<Inner>>,
}

impl FaultStorage {
    /// Fresh empty device running `script`.
    pub fn new(script: FaultScript) -> (FaultStorage, FaultHandle) {
        FaultStorage::with_image(Vec::new(), script)
    }

    /// Device primed with `image` (e.g. a frozen crash image) running
    /// `script`.
    pub fn with_image(image: Vec<u8>, script: FaultScript) -> (FaultStorage, FaultHandle) {
        let rng = script.torn_seed;
        let inner = Arc::new(Mutex::new(Inner {
            image,
            script,
            counters: Counters::default(),
            crashed: false,
            rng,
        }));
        (
            FaultStorage {
                inner: inner.clone(),
            },
            FaultHandle { inner },
        )
    }
}

impl FaultHandle {
    /// Write ops issued so far (including the crashing one).
    pub fn writes(&self) -> u64 {
        self.inner.lock().counters.writes
    }

    /// Read ops issued so far.
    pub fn reads(&self) -> u64 {
        self.inner.lock().counters.reads
    }

    /// Sync ops issued so far.
    pub fn syncs(&self) -> u64 {
        self.inner.lock().counters.syncs
    }

    /// Faults injected so far (errors returned, including the crash).
    pub fn injected_faults(&self) -> u64 {
        self.inner.lock().counters.injected
    }

    /// True once the scripted crash point has been hit.
    pub fn crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Copy of the device image — after a crash, exactly the bytes a
    /// reopen would see.
    pub fn image(&self) -> Vec<u8> {
        self.inner.lock().image.clone()
    }
}

impl Storage for FaultStorage {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut g = self.inner.lock();
        if g.crashed {
            g.counters.injected += 1;
            return Err(injected("read after crash"));
        }
        let i = g.counters.reads;
        g.counters.reads += 1;
        if g.script.fail_reads.contains(&i) {
            g.counters.injected += 1;
            return Err(injected("read_at"));
        }
        let off = offset as usize;
        let end = off.saturating_add(buf.len()).min(g.image.len());
        if off < g.image.len() {
            let n = end - off;
            buf[..n].copy_from_slice(&g.image[off..end]);
            buf[n..].fill(0);
        } else {
            buf.fill(0);
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut g = self.inner.lock();
        if g.crashed {
            g.counters.injected += 1;
            return Err(injected("write after crash"));
        }
        let i = g.counters.writes;
        g.counters.writes += 1;
        if g.script.fail_writes.contains(&i) {
            g.counters.injected += 1;
            return Err(injected("write_at"));
        }
        if let Some((start, end)) = g.script.fail_write_range {
            let wend = offset.saturating_add(data.len() as u64);
            if offset < end && wend > start {
                g.counters.injected += 1;
                return Err(injected("write_at range"));
            }
        }
        if g.script.crash_at_write == Some(i) {
            // Persist a torn prefix rounded down to a sector boundary,
            // then freeze the image: all later ops fail.
            let draw = g.next_rand();
            let torn = if data.is_empty() {
                0
            } else {
                (draw as usize % (data.len() + 1)) / TORN_BLOCK * TORN_BLOCK
            };
            apply_write(&mut g.image, offset, &data[..torn]);
            g.crashed = true;
            g.counters.injected += 1;
            return Err(injected("crash"));
        }
        apply_write(&mut g.image, offset, data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut g = self.inner.lock();
        if g.crashed {
            g.counters.injected += 1;
            return Err(injected("sync after crash"));
        }
        let i = g.counters.syncs;
        g.counters.syncs += 1;
        if g.script.crash_at_sync == Some(i) {
            g.crashed = true;
            g.counters.injected += 1;
            return Err(injected("crash at sync"));
        }
        if g.script.fail_syncs.contains(&i) {
            g.counters.injected += 1;
            return Err(injected("sync"));
        }
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        let mut g = self.inner.lock();
        if g.crashed {
            g.counters.injected += 1;
            return Err(injected("len after crash"));
        }
        Ok(g.image.len() as u64)
    }

    fn mmap(&mut self, _offset: u64, _len: usize) -> io::Result<Option<crate::MmapRegion>> {
        let mut g = self.inner.lock();
        if g.script.fail_mmap {
            g.counters.injected += 1;
            return Err(injected("mmap"));
        }
        Ok(None)
    }

    fn is_persistent(&self) -> bool {
        // Report persistent so callers exercise their durable paths
        // (persisted column segments, free-list reconciliation).
        true
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut g = self.inner.lock();
        if g.crashed {
            g.counters.injected += 1;
            return Err(injected("truncate after crash"));
        }
        if (len as usize) < g.image.len() {
            g.image.truncate(len as usize);
        }
        Ok(())
    }
}

fn apply_write(image: &mut Vec<u8>, offset: u64, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    let off = offset as usize;
    let end = off + data.len();
    if end > image.len() {
        image.resize(end, 0);
    }
    image[off..end].copy_from_slice(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_script_behaves_like_memory() {
        let (mut s, h) = FaultStorage::new(FaultScript::none());
        s.write_at(0, b"hello").unwrap();
        s.write_at(10, b"world").unwrap();
        let mut buf = [9u8; 5];
        s.read_at(5, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 5]);
        s.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        s.sync().unwrap();
        assert_eq!((h.reads(), h.writes(), h.syncs()), (2, 2, 1));
        assert_eq!(h.injected_faults(), 0);
    }

    #[test]
    fn indexed_faults_fire_once_and_leave_state_unchanged() {
        let (mut s, h) =
            FaultStorage::new(FaultScript::none().fail_write(1).fail_read(0).fail_sync(0));
        s.write_at(0, b"aaaa").unwrap(); // write 0: fine
        assert!(s.write_at(0, b"bbbb").is_err()); // write 1: injected
        let mut buf = [0u8; 4];
        assert!(s.read_at(0, &mut buf).is_err()); // read 0: injected
        s.read_at(0, &mut buf).unwrap(); // read 1: fine
        assert_eq!(&buf, b"aaaa"); // failed write didn't land
        assert!(s.sync().is_err());
        s.sync().unwrap();
        assert_eq!(h.injected_faults(), 3);
    }

    #[test]
    fn range_faults_hit_overlapping_writes_only() {
        let (mut s, _) = FaultStorage::new(FaultScript::none().fail_writes_in(100, 200));
        s.write_at(0, &[1u8; 100]).unwrap(); // [0,100): clear
        assert!(s.write_at(150, &[2u8; 10]).is_err()); // inside
        assert!(s.write_at(90, &[3u8; 20]).is_err()); // straddles start
        assert!(s.write_at(199, &[4u8; 1]).is_err()); // last byte
        s.write_at(200, &[5u8; 8]).unwrap(); // [200,208): clear
    }

    #[test]
    fn crash_tears_at_sector_boundary_and_freezes() {
        let (mut s, h) = FaultStorage::new(FaultScript::none().crash_at(1).torn_seed(42));
        s.write_at(0, &[0xAA; 4096]).unwrap();
        assert!(s.write_at(0, &[0xBB; 4096]).is_err());
        assert!(h.crashed());
        // Every later op fails.
        let mut buf = [0u8; 8];
        assert!(s.read_at(0, &mut buf).is_err());
        assert!(s.write_at(0, b"x").is_err());
        assert!(s.sync().is_err());
        assert!(s.len().is_err());
        // The frozen image holds a 512-aligned prefix of the torn write.
        let img = h.image();
        assert_eq!(img.len(), 4096);
        let torn = img.iter().take_while(|&&b| b == 0xBB).count();
        assert_eq!(torn % TORN_BLOCK, 0);
        assert!(img[torn..].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn torn_lengths_are_deterministic_per_seed() {
        let torn_len = |seed: u64| {
            let (mut s, h) = FaultStorage::new(FaultScript::none().crash_at(0).torn_seed(seed));
            assert!(s.write_at(0, &[1u8; 4096]).is_err());
            h.image().len()
        };
        assert_eq!(torn_len(7), torn_len(7));
        // Different seeds explore different tear points somewhere in 0..=8.
        let distinct: std::collections::BTreeSet<usize> = (0..32).map(torn_len).collect();
        assert!(distinct.len() > 1, "seed has no effect on tear length");
    }

    #[test]
    fn image_reopens_into_fresh_storage() {
        let (mut s, h) = FaultStorage::new(FaultScript::none());
        s.write_at(0, b"survives").unwrap();
        let (mut reopened, _) = FaultStorage::with_image(h.image(), FaultScript::none());
        let mut buf = [0u8; 8];
        reopened.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"survives");
    }

    #[test]
    fn mmap_declines_or_fails_per_script() {
        let (mut ok, _) = FaultStorage::new(FaultScript::none());
        assert!(ok.mmap(0, 4096).unwrap().is_none());
        let (mut bad, h) = FaultStorage::new(FaultScript::none().fail_mmap());
        assert!(bad.mmap(0, 4096).is_err());
        assert_eq!(h.injected_faults(), 1);
    }
}

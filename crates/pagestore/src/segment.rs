//! Page-aligned raw segments: named byte extents outside the B+trees.
//!
//! A segment is a contiguous run of whole pages holding one opaque byte
//! blob — the store's unit of bulk, write-once auxiliary data (the
//! XMorph column cache persists each decoded `TypeColumn` as one
//! segment). Segments bypass the buffer pool entirely: they are written
//! straight through to the device at allocation time and read back
//! either as one sequential read or, on file-backed unix stores, as a
//! read-only memory mapping ([`crate::mmap::MmapRegion`]), so a large
//! segment costs no frame-cache capacity and no heap.
//!
//! The catalog mapping segment names to extents lives in a reserved tree
//! ([`SEGMENT_CATALOG_TREE`]), which makes it crash-safe exactly like
//! every other tree: an entry becomes durable when the store flushes.
//! Write ordering inside [`crate::store::Store::put_segment`] guarantees
//! the data pages reach the device *before* the catalog entry can, so a
//! torn shutdown leaves either a fully readable segment or a dangling /
//! absent entry — never a published entry over unwritten pages. Lookup
//! validates every entry against the page count and reports a dangling
//! one as [`crate::error::StoreError::SegmentInvalid`] rather than
//! handing out garbage.

use crate::mmap::MmapRegion;
use crate::pager::PageId;
use std::ops::Deref;

/// Name of the reserved catalog tree. The store rejects it in
/// [`crate::store::Store::open_tree`] so user trees cannot collide.
pub const SEGMENT_CATALOG_TREE: &str = "__segments";

/// A catalog entry: where a segment's extent lives and how many of its
/// bytes are meaningful (the tail of the last page is padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// First page of the extent.
    pub first_page: PageId,
    /// Number of contiguous pages.
    pub pages: u64,
    /// Meaningful byte length (`<= pages * PAGE_SIZE`).
    pub len: u64,
}

impl SegmentEntry {
    /// Serialized catalog value: three little-endian `u64`s.
    pub fn encode(&self) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[0..8].copy_from_slice(&self.first_page.to_le_bytes());
        out[8..16].copy_from_slice(&self.pages.to_le_bytes());
        out[16..24].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Inverse of [`SegmentEntry::encode`].
    pub fn decode(bytes: &[u8]) -> Option<SegmentEntry> {
        if bytes.len() != 24 {
            return None;
        }
        Some(SegmentEntry {
            first_page: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            pages: u64::from_le_bytes(bytes[8..16].try_into().ok()?),
            len: u64::from_le_bytes(bytes[16..24].try_into().ok()?),
        })
    }
}

/// A segment's bytes, in whichever backing the store could provide:
/// a read-only OS mapping (file-backed unix stores) or an owned heap
/// copy (memory stores, platforms without mmap, or callers that asked
/// for heap). Both deref to the segment's meaningful bytes.
#[derive(Debug)]
pub enum SegmentData {
    /// Memory-mapped extent; `len` trims the page padding.
    Mapped {
        /// The page-aligned mapping (whole pages).
        map: MmapRegion,
        /// Meaningful byte length.
        len: usize,
    },
    /// Heap copy of the segment bytes.
    Heap(Vec<u8>),
}

impl SegmentData {
    /// True when the bytes are memory-mapped rather than copied.
    pub fn is_mapped(&self) -> bool {
        matches!(self, SegmentData::Mapped { .. })
    }
}

impl Deref for SegmentData {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            SegmentData::Mapped { map, len } => &map[..*len],
            SegmentData::Heap(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_round_trips() {
        let e = SegmentEntry {
            first_page: 17,
            pages: 9,
            len: 4096 * 8 + 123,
        };
        assert_eq!(SegmentEntry::decode(&e.encode()), Some(e));
    }

    #[test]
    fn entry_rejects_wrong_length() {
        assert_eq!(SegmentEntry::decode(b"short"), None);
        assert_eq!(SegmentEntry::decode(&[0u8; 32]), None);
    }

    #[test]
    fn heap_data_derefs() {
        let d = SegmentData::Heap(vec![1, 2, 3]);
        assert_eq!(&*d, &[1, 2, 3]);
        assert!(!d.is_mapped());
    }
}

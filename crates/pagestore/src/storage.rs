//! Byte-addressed backing devices for the pager.

use crate::mmap::MmapRegion;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A backing device: a flat, growable array of bytes. The pager performs
/// page-aligned transfers only.
pub trait Storage: Send {
    /// Read exactly `buf.len()` bytes starting at `offset`. Reading past
    /// the end of ever-written data yields zeroes.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Write all of `data` starting at `offset`, growing the device as
    /// needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Flush buffered writes to the device.
    fn sync(&mut self) -> io::Result<()>;

    /// Current device length in bytes.
    fn len(&mut self) -> io::Result<u64>;

    /// True when nothing has been written yet.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Memory-map `len` bytes at `offset` read-only, if the device can.
    /// `None` means "read the bytes instead"; it is never an error.
    /// `offset` is always a multiple of [`crate::PAGE_SIZE`].
    fn mmap(&mut self, _offset: u64, _len: usize) -> io::Result<Option<MmapRegion>> {
        Ok(None)
    }

    /// True when the device outlives the process (a reopenable file),
    /// so persisted auxiliary structures are worth writing.
    fn is_persistent(&self) -> bool {
        false
    }

    /// Shrink the device to `len` bytes, discarding everything past it.
    /// Devices that cannot shrink may treat this as a no-op: readers see
    /// zeroes past the ever-written range either way, so a failed shrink
    /// only costs disk space, never correctness.
    fn truncate(&mut self, _len: u64) -> io::Result<()> {
        Ok(())
    }
}

/// File-backed storage.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
}

impl FileStorage {
    /// Open (creating if absent) a database file.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileStorage { file })
    }

    /// Create a fresh database file, truncating any existing content.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStorage { file })
    }
}

impl Storage for FileStorage {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let len = self.file.metadata()?.len();
        if offset >= len {
            buf.fill(0);
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let avail = (len - offset).min(buf.len() as u64) as usize;
        self.file.read_exact(&mut buf[..avail])?;
        buf[avail..].fill(0);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn mmap(&mut self, offset: u64, len: usize) -> io::Result<Option<MmapRegion>> {
        // Never map past the ever-written length: accessing pages wholly
        // beyond EOF faults. (The written range is page-padded, so any
        // in-range mapping is backed.) A failed metadata query or an
        // overflowing range declines rather than errors — the caller
        // falls back to reading, which reports real device trouble.
        let Ok(meta) = self.file.metadata() else {
            return Ok(None);
        };
        match offset.checked_add(len as u64) {
            Some(end) if end <= meta.len() => Ok(MmapRegion::map(&self.file, offset, len)),
            _ => Ok(None),
        }
    }

    fn is_persistent(&self) -> bool {
        true
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if len < self.file.metadata()?.len() {
            self.file.set_len(len)?;
        }
        Ok(())
    }
}

/// In-memory storage, for tests and ephemeral stores.
#[derive(Debug, Default)]
pub struct MemStorage {
    data: Vec<u8>,
}

impl MemStorage {
    /// Fresh empty memory device.
    pub fn new() -> Self {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let off = offset as usize;
        let end = off.saturating_add(buf.len()).min(self.data.len());
        if off < self.data.len() {
            let n = end - off;
            buf[..n].copy_from_slice(&self.data[off..end]);
            buf[n..].fill(0);
        } else {
            buf.fill(0);
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let off = offset as usize;
        let end = off + data.len();
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
        self.data[off..end].copy_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.data.len() as u64)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if (len as usize) < self.data.len() {
            self.data.truncate(len as usize);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(s: &mut dyn Storage) {
        assert!(s.is_empty().unwrap());
        s.write_at(0, b"hello").unwrap();
        s.write_at(10, b"world").unwrap();
        let mut buf = [0u8; 5];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        s.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        // The gap reads as zeroes.
        let mut gap = [9u8; 5];
        s.read_at(5, &mut gap).unwrap();
        assert_eq!(gap, [0u8; 5]);
        // Reading past the end yields zeroes.
        let mut tail = [9u8; 8];
        s.read_at(12, &mut tail).unwrap();
        assert_eq!(&tail[..3], b"rld");
        assert_eq!(&tail[3..], &[0, 0, 0, 0, 0]);
        assert_eq!(s.len().unwrap(), 15);
        s.sync().unwrap();
    }

    #[test]
    fn mem_storage_semantics() {
        exercise(&mut MemStorage::new());
    }

    #[test]
    fn file_storage_semantics() {
        let dir = std::env::temp_dir().join(format!("pagestore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("storage-semantics.db");
        exercise(&mut FileStorage::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_storage_persists() {
        let dir = std::env::temp_dir().join(format!("pagestore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("storage-persists.db");
        {
            let mut s = FileStorage::create(&path).unwrap();
            s.write_at(0, b"persist me").unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStorage::open(&path).unwrap();
            let mut buf = [0u8; 10];
            s.read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"persist me");
        }
        std::fs::remove_file(&path).ok();
    }
}

//! The public façade: a [`Store`] of named [`Tree`]s plus named raw
//! [`crate::segment`]s, configured through the [`StoreOptions`] builder.

use crate::btree::{BTree, RangeIter};
use crate::buffer::{BufferPool, DEFAULT_CAPACITY};
use crate::error::{StoreError, StoreResult};
use crate::pager::{PageId, Pager};
use crate::segment::{SegmentData, SegmentEntry, SEGMENT_CATALOG_TREE};
use crate::stats::{IoSnapshot, IoStats};
use crate::storage::{FileStorage, MemStorage, Storage};
use crate::PAGE_SIZE;
use parking_lot::Mutex;
use std::ops::{Bound, RangeBounds};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Builder for a [`Store`]: buffer-pool capacity, shard count, shared
/// I/O stats, then one terminal call choosing the backing device. This
/// is the single construction path — the old
/// `in_memory_with`/`create_with`/`with_storage_sharded` constructor
/// family collapsed into it.
///
/// ```
/// use xmorph_pagestore::Store;
///
/// let store = Store::options().capacity(256).shards(4).open_memory();
/// assert!(store.shard_count() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct StoreOptions {
    capacity: usize,
    shards: Option<usize>,
    stats: IoStats,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            capacity: DEFAULT_CAPACITY,
            shards: None,
            stats: IoStats::new(),
        }
    }
}

impl StoreOptions {
    /// Fresh options with the defaults ([`DEFAULT_CAPACITY`] frames,
    /// CPU-count shards, private stats).
    pub fn new() -> StoreOptions {
        StoreOptions::default()
    }

    /// Buffer-pool frame capacity (total across shards).
    pub fn capacity(mut self, frames: usize) -> Self {
        self.capacity = frames;
        self
    }

    /// Explicit buffer-pool shard count (rounded to a power of two; see
    /// [`crate::buffer::BufferPool::with_shards`]). Default: CPU count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Share an external [`IoStats`] handle — the benchmark harness
    /// meters I/O through this.
    pub fn stats(mut self, stats: IoStats) -> Self {
        self.stats = stats;
        self
    }

    /// Terminal: an ephemeral in-memory store.
    pub fn open_memory(self) -> Store {
        self.with_storage(Box::new(MemStorage::new()))
            .expect("in-memory store cannot fail")
    }

    /// Terminal: open (or create) a file-backed store at `path`.
    pub fn open(self, path: &Path) -> StoreResult<Store> {
        let storage = Box::new(FileStorage::open(path)?);
        let mut store = self.with_storage(storage)?;
        store.path = Some(Arc::new(path.to_path_buf()));
        Ok(store)
    }

    /// Terminal: create a fresh file-backed store at `path`, truncating
    /// any existing file.
    pub fn create(self, path: &Path) -> StoreResult<Store> {
        let storage = Box::new(FileStorage::create(path)?);
        let mut store = self.with_storage(storage)?;
        store.path = Some(Arc::new(path.to_path_buf()));
        Ok(store)
    }

    /// Terminal: wrap an arbitrary storage device.
    pub fn with_storage(self, storage: Box<dyn Storage>) -> StoreResult<Store> {
        let pager = Pager::new(storage, self.stats)?;
        let pool = match self.shards {
            Some(n) => BufferPool::with_shards(pager, self.capacity, n),
            None => BufferPool::new(pager, self.capacity),
        };
        Ok(Store {
            pool: Arc::new(pool),
            path: None,
        })
    }
}

/// An embedded key-value store holding named ordered trees — the
/// reproduction's stand-in for BerkeleyDB JE — plus named page-aligned
/// segments for bulk write-once blobs.
#[derive(Debug, Clone)]
pub struct Store {
    pool: Arc<BufferPool>,
    /// Backing file path, when file-backed (error context only).
    path: Option<Arc<PathBuf>>,
}

impl Store {
    /// Configure a store ([`StoreOptions`] builder).
    pub fn options() -> StoreOptions {
        StoreOptions::new()
    }

    /// An ephemeral in-memory store with default options.
    pub fn in_memory() -> Store {
        Store::options().open_memory()
    }

    /// Open (or create) a file-backed store at `path` with default
    /// options.
    pub fn open(path: &Path) -> StoreResult<Store> {
        Store::options().open(path)
    }

    /// Create a fresh file-backed store with default options,
    /// truncating any existing file.
    pub fn create(path: &Path) -> StoreResult<Store> {
        Store::options().create(path)
    }

    /// Number of shards in the underlying buffer pool.
    pub fn shard_count(&self) -> usize {
        self.pool.shard_count()
    }

    /// Backing file path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref().map(|p| p.as_path())
    }

    /// Open a named tree, creating it if absent.
    /// [`SEGMENT_CATALOG_TREE`] is reserved for the segment catalog.
    pub fn open_tree(&self, name: &str) -> StoreResult<Tree> {
        if name == SEGMENT_CATALOG_TREE {
            return Err(StoreError::NameTooLong(format!("{name} (reserved)")));
        }
        self.open_tree_raw(name)
    }

    fn open_tree_raw(&self, name: &str) -> StoreResult<Tree> {
        let root = match self.pool.tree_root(name) {
            Some(r) => r,
            None => {
                let t = BTree::create(&self.pool)?;
                self.pool.set_tree_root(name, t.root())?;
                t.root()
            }
        };
        Ok(Tree {
            pool: Arc::clone(&self.pool),
            name: name.to_string(),
            root: Arc::new(Mutex::new(root)),
        })
    }

    /// Names of all trees in the catalog (the reserved segment catalog
    /// excluded).
    pub fn tree_names(&self) -> Vec<String> {
        self.pool
            .tree_names()
            .into_iter()
            .filter(|n| n != SEGMENT_CATALOG_TREE)
            .collect()
    }

    // ---- segments ----

    /// Store `bytes` as the named segment: allocate a fresh contiguous
    /// extent, write the data pages straight through to the device,
    /// *then* publish the catalog entry. The ordering means a crash can
    /// leave an unpublished (or stale) entry but never a published entry
    /// over unwritten pages; the entry itself becomes durable at the
    /// next [`Store::flush`]. Re-putting a name replaces its entry (the
    /// old extent is abandoned, the same write-once policy as overflow
    /// replacement).
    pub fn put_segment(&self, name: &str, bytes: &[u8]) -> StoreResult<()> {
        let pages = bytes.len().div_ceil(PAGE_SIZE).max(1) as u64;
        let first = self.pool.allocate_extent(pages)?;
        self.pool.write_extent(first, bytes)?;
        let entry = SegmentEntry {
            first_page: first,
            pages,
            len: bytes.len() as u64,
        };
        let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
        tree.insert(name.as_bytes(), &entry.encode())?;
        Ok(())
    }

    /// Fetch a segment's bytes. `prefer_mmap` asks for a read-only OS
    /// mapping when the device supports one (file-backed unix stores);
    /// otherwise (or when mapping declines) the bytes are read into a
    /// heap buffer. Returns `Ok(None)` when no such segment exists and
    /// [`StoreError::SegmentInvalid`] when the catalog entry is present
    /// but unusable — malformed, or pointing outside the allocated page
    /// range, the signature of a torn shutdown.
    pub fn get_segment(&self, name: &str, prefer_mmap: bool) -> StoreResult<Option<SegmentData>> {
        // Don't create the catalog tree on a read path.
        if self.pool.tree_root(SEGMENT_CATALOG_TREE).is_none() {
            return Ok(None);
        }
        let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
        let Some(value) = tree.get(name.as_bytes())? else {
            return Ok(None);
        };
        let invalid = |reason| StoreError::SegmentInvalid {
            name: name.to_string(),
            reason,
        };
        let entry = SegmentEntry::decode(&value).ok_or_else(|| invalid("malformed entry"))?;
        let byte_len =
            usize::try_from(entry.len).map_err(|_| invalid("length exceeds address space"))?;
        if entry.first_page == 0
            || entry.len > entry.pages * PAGE_SIZE as u64
            || entry
                .first_page
                .checked_add(entry.pages)
                .is_none_or(|end| end > self.pool.page_count())
        {
            return Err(invalid("extent outside allocated pages"));
        }
        if prefer_mmap && byte_len > 0 {
            if let Some(map) = self.pool.mmap_extent(entry.first_page, byte_len)? {
                return Ok(Some(SegmentData::Mapped { map, len: byte_len }));
            }
        }
        Ok(Some(SegmentData::Heap(
            self.pool.read_extent(entry.first_page, byte_len)?,
        )))
    }

    /// Names of all stored segments.
    pub fn segment_names(&self) -> StoreResult<Vec<String>> {
        if self.pool.tree_root(SEGMENT_CATALOG_TREE).is_none() {
            return Ok(Vec::new());
        }
        let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
        Ok(tree
            .scan_prefix(b"")
            .filter_map(|(k, _)| String::from_utf8(k).ok())
            .collect())
    }

    /// Drop a segment's catalog entry (its extent is abandoned).
    /// Returns `true` if the segment existed.
    pub fn delete_segment(&self, name: &str) -> StoreResult<bool> {
        if self.pool.tree_root(SEGMENT_CATALOG_TREE).is_none() {
            return Ok(false);
        }
        let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
        tree.delete(name.as_bytes())
    }

    /// True when [`Store::get_segment`] can return mapped bytes.
    pub fn supports_mmap(&self) -> bool {
        self.pool.supports_mmap()
    }

    /// True when the backing device outlives the process (file-backed),
    /// i.e. persisted auxiliary structures are worth writing.
    pub fn is_persistent(&self) -> bool {
        self.pool.is_persistent()
    }

    // ---- lifecycle ----

    /// Cumulative I/O counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.pool.io_snapshot()
    }

    /// Write back dirty pages and sync the device.
    pub fn flush(&self) -> StoreResult<()> {
        self.pool.flush()
    }

    /// Flush everything and sync before the store handle goes away —
    /// the explicit close. Segment *data* is written through at
    /// [`Store::put_segment`] time, so this is what makes the segment
    /// catalog (and any dirty tree pages) durable; call it before
    /// dropping a file-backed store whose contents you intend to reopen.
    /// Other clones of the handle stay usable.
    pub fn close(&self) -> StoreResult<()> {
        self.flush()
    }

    /// Total allocated pages (a proxy for on-disk size).
    pub fn page_count(&self) -> u64 {
        self.pool.page_count()
    }

    /// Approximate on-disk size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.page_count() * crate::PAGE_SIZE as u64
    }
}

/// A named, ordered key-value tree within a [`Store`].
#[derive(Debug, Clone)]
pub struct Tree {
    pool: Arc<BufferPool>,
    name: String,
    root: Arc<Mutex<PageId>>,
}

impl Tree {
    /// The tree's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Insert or replace; returns `true` if the key was new.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> StoreResult<bool> {
        let mut root = self.root.lock();
        let mut bt = BTree::open(&self.pool, *root);
        let was_new = bt.insert(key, value)?;
        if bt.root() != *root {
            *root = bt.root();
            self.pool.set_tree_root(&self.name, *root)?;
        }
        Ok(was_new)
    }

    /// Replace the tree's contents with key-sorted pairs packed
    /// bottom-up (see [`BTree::bulk_load`]) at the given fill factor
    /// ([`crate::btree::DEFAULT_FILL`] is the usual choice). The
    /// previous root's pages are abandoned — the same write-once policy
    /// as overflow replacement; the shredder bulk-loads into freshly
    /// created trees, where nothing is lost.
    pub fn bulk_load<I>(&self, pairs: I, fill_factor: f64) -> StoreResult<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let mut root = self.root.lock();
        let bt = BTree::bulk_load(&self.pool, pairs, fill_factor)?;
        *root = bt.root();
        self.pool.set_tree_root(&self.name, *root)
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let root = *self.root.lock();
        BTree::open(&self.pool, root).get(key)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &[u8]) -> StoreResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Remove a key; returns `true` if it was present.
    pub fn delete(&self, key: &[u8]) -> StoreResult<bool> {
        let root = *self.root.lock();
        BTree::open(&self.pool, root).delete(key)
    }

    /// Ordered scan over a key range. Accepts the usual range syntax:
    /// `tree.range(..)`, `tree.range(a..b)`, `tree.range(a..=b)` with
    /// `Vec<u8>` endpoints.
    pub fn range<R: RangeBounds<Vec<u8>>>(&self, bounds: R) -> RangeIter<'_> {
        let root = *self.root.lock();
        let start_owned: Bound<Vec<u8>> = clone_bound(bounds.start_bound());
        let end: Bound<Vec<u8>> = clone_bound(bounds.end_bound());
        let start_ref: Bound<&[u8]> = match &start_owned {
            Bound::Included(v) => Bound::Included(v.as_slice()),
            Bound::Excluded(v) => Bound::Excluded(v.as_slice()),
            Bound::Unbounded => Bound::Unbounded,
        };
        BTree::open(&self.pool, root)
            .range(start_ref, end)
            .expect("range scan setup failed")
    }

    /// Scan all keys beginning with `prefix`, in order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> RangeIter<'_> {
        let root = *self.root.lock();
        let end = match prefix_successor(prefix) {
            Some(e) => Bound::Excluded(e),
            None => Bound::Unbounded,
        };
        BTree::open(&self.pool, root)
            .range(Bound::Included(prefix), end)
            .expect("prefix scan setup failed")
    }

    /// Number of entries — O(n).
    pub fn len(&self) -> StoreResult<usize> {
        let root = *self.root.lock();
        BTree::open(&self.pool, root).len()
    }

    /// True when empty — O(1).
    pub fn is_empty(&self) -> StoreResult<bool> {
        let root = *self.root.lock();
        BTree::open(&self.pool, root).is_empty()
    }
}

fn clone_bound(b: Bound<&Vec<u8>>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(v) => Bound::Included(v.clone()),
        Bound::Excluded(v) => Bound::Excluded(v.clone()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// The smallest byte string greater than every string with this prefix,
/// or `None` when the prefix is all `0xff`.
fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_tree_twice_shares_data() {
        let store = Store::in_memory();
        let a = store.open_tree("t").unwrap();
        a.insert(b"k", b"v").unwrap();
        let b = store.open_tree("t").unwrap();
        assert_eq!(b.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn separate_trees_are_independent() {
        let store = Store::in_memory();
        let a = store.open_tree("a").unwrap();
        let b = store.open_tree("b").unwrap();
        a.insert(b"k", b"from-a").unwrap();
        b.insert(b"k", b"from-b").unwrap();
        assert_eq!(a.get(b"k").unwrap().as_deref(), Some(&b"from-a"[..]));
        assert_eq!(b.get(b"k").unwrap().as_deref(), Some(&b"from-b"[..]));
        assert_eq!(store.tree_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn root_split_visible_through_catalog() {
        let store = Store::in_memory();
        let t = store.open_tree("big").unwrap();
        for i in 0..3000u32 {
            t.insert(format!("{i:06}").as_bytes(), b"payload").unwrap();
        }
        // A second handle opened after the splits must see everything.
        let t2 = store.open_tree("big").unwrap();
        assert_eq!(t2.len().unwrap(), 3000);
    }

    #[test]
    fn scan_prefix_works() {
        let store = Store::in_memory();
        let t = store.open_tree("t").unwrap();
        for k in ["a/1", "a/2", "a/3", "b/1", "", "a"] {
            t.insert(k.as_bytes(), b"").unwrap();
        }
        let got: Vec<String> = t
            .scan_prefix(b"a/")
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(got, vec!["a/1", "a/2", "a/3"]);
        // Empty prefix scans everything.
        assert_eq!(t.scan_prefix(b"").count(), 6);
    }

    #[test]
    fn range_syntax_variants() {
        let store = Store::in_memory();
        let t = store.open_tree("t").unwrap();
        for i in 0..10u8 {
            t.insert(&[i], &[i]).unwrap();
        }
        assert_eq!(t.range(..).count(), 10);
        assert_eq!(t.range(vec![3]..vec![7]).count(), 4);
        assert_eq!(t.range(vec![3]..=vec![7]).count(), 5);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pagestore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.db");
        {
            let store = Store::create(&path).unwrap();
            let t = store.open_tree("nodes").unwrap();
            for i in 0..2000u32 {
                t.insert(&i.to_be_bytes(), format!("node {i}").as_bytes())
                    .unwrap();
            }
            store.flush().unwrap();
        }
        {
            let store = Store::open(&path).unwrap();
            let t = store.open_tree("nodes").unwrap();
            assert_eq!(t.len().unwrap(), 2000);
            assert_eq!(
                t.get(&1234u32.to_be_bytes()).unwrap().as_deref(),
                Some(&b"node 1234"[..])
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefix_successor_edges() {
        assert_eq!(prefix_successor(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_successor(&[0x01, 0xff]), Some(vec![0x02]));
        assert_eq!(prefix_successor(&[0xff, 0xff]), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn io_snapshot_reports_traffic() {
        let store = Store::in_memory();
        let t = store.open_tree("t").unwrap();
        for i in 0..5000u32 {
            t.insert(&i.to_be_bytes(), &[0u8; 100]).unwrap();
        }
        store.flush().unwrap();
        let snap = store.io_snapshot();
        assert!(
            snap.blocks_written > 10,
            "expected real write traffic: {snap:?}"
        );
    }
}

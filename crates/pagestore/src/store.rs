//! The public façade: a [`Store`] of named [`Tree`]s plus named raw
//! [`crate::segment`]s, configured through the [`StoreOptions`] builder.

use crate::btree::{BTree, RangeIter};
use crate::buffer::{BufferPool, DEFAULT_CAPACITY};
use crate::error::{StoreError, StoreResult};
use crate::pager::{FreeExtent, PageId, Pager, META_PAGE};
use crate::segment::{SegmentData, SegmentEntry, SEGMENT_CATALOG_TREE};
use crate::stats::{IoSnapshot, IoStats, StoreStats};
use crate::storage::{FileStorage, MemStorage, Storage};
use crate::PAGE_SIZE;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::ops::{Bound, RangeBounds};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Builder for a [`Store`]: buffer-pool capacity, shard count, shared
/// I/O stats, then one terminal call choosing the backing device. This
/// is the single construction path — the old
/// `in_memory_with`/`create_with`/`with_storage_sharded` constructor
/// family collapsed into it.
///
/// ```
/// use xmorph_pagestore::Store;
///
/// let store = Store::options().capacity(256).shards(4).open_memory();
/// assert!(store.shard_count() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct StoreOptions {
    capacity: usize,
    shards: Option<usize>,
    stats: IoStats,
    wal_pages: Option<u64>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            capacity: DEFAULT_CAPACITY,
            shards: None,
            stats: IoStats::new(),
            wal_pages: None,
        }
    }
}

impl StoreOptions {
    /// Fresh options with the defaults ([`DEFAULT_CAPACITY`] frames,
    /// CPU-count shards, private stats).
    pub fn new() -> StoreOptions {
        StoreOptions::default()
    }

    /// Buffer-pool frame capacity (total across shards).
    pub fn capacity(mut self, frames: usize) -> Self {
        self.capacity = frames;
        self
    }

    /// Explicit buffer-pool shard count (rounded to a power of two; see
    /// [`crate::buffer::BufferPool::with_shards`]). Default: CPU count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Share an external [`IoStats`] handle — the benchmark harness
    /// meters I/O through this.
    pub fn stats(mut self, stats: IoStats) -> Self {
        self.stats = stats;
        self
    }

    /// Size of the write-ahead-log region, in pages, reserved when a
    /// fresh persistent device is initialized (`0` disables the WAL;
    /// default [`crate::wal::DEFAULT_WAL_RECORD_PAGES`]). Existing
    /// devices keep whatever layout they were created with — this only
    /// affects creation.
    pub fn wal_pages(mut self, pages: u64) -> Self {
        self.wal_pages = Some(pages);
        self
    }

    /// Terminal: an ephemeral in-memory store.
    pub fn open_memory(self) -> Store {
        self.with_storage(Box::new(MemStorage::new()))
            .expect("in-memory store cannot fail")
    }

    /// Terminal: open (or create) a file-backed store at `path`.
    pub fn open(self, path: &Path) -> StoreResult<Store> {
        let storage = Box::new(FileStorage::open(path)?);
        let mut store = self.with_storage(storage)?;
        store.path = Some(Arc::new(path.to_path_buf()));
        Ok(store)
    }

    /// Terminal: create a fresh file-backed store at `path`, truncating
    /// any existing file.
    pub fn create(self, path: &Path) -> StoreResult<Store> {
        let storage = Box::new(FileStorage::create(path)?);
        let mut store = self.with_storage(storage)?;
        store.path = Some(Arc::new(path.to_path_buf()));
        Ok(store)
    }

    /// Terminal: wrap an arbitrary storage device.
    pub fn with_storage(self, storage: Box<dyn Storage>) -> StoreResult<Store> {
        let pager = match self.wal_pages {
            Some(pages) => Pager::with_wal_pages(storage, self.stats, pages)?,
            None => Pager::new(storage, self.stats)?,
        };
        let mut pool = match self.shards {
            Some(n) => BufferPool::with_shards(pager, self.capacity, n),
            None => BufferPool::new(pager, self.capacity),
        };
        // The pool only ever caches B+tree pages (meta and segment
        // extents bypass it), so every device load can be structurally
        // validated: a torn page becomes `StoreError::Corrupt` at load
        // instead of an out-of-bounds panic at first use.
        pool.set_page_check(crate::btree::validate_page);
        let store = Store {
            pool: Arc::new(pool),
            path: None,
            closed: Arc::new(AtomicBool::new(false)),
        };
        // Reconcile the persisted free list against live segment
        // extents: a torn shutdown between the free-list append and the
        // catalog delete in `delete_segment` can leave a freed extent
        // that a live segment still claims; handing it out again would
        // double-allocate those pages.
        let live = store.live_segment_extents()?;
        if !live.is_empty() {
            store.pool.reconcile_free_extents(&live);
        }
        Ok(store)
    }
}

/// An embedded key-value store holding named ordered trees — the
/// reproduction's stand-in for BerkeleyDB JE — plus named page-aligned
/// segments for bulk write-once blobs.
#[derive(Debug, Clone)]
pub struct Store {
    pool: Arc<BufferPool>,
    /// Backing file path, when file-backed (error context only).
    path: Option<Arc<PathBuf>>,
    /// Set by the first [`Store::close`]; shared by clones so a second
    /// close anywhere is a no-op.
    closed: Arc<AtomicBool>,
}

impl Store {
    /// Configure a store ([`StoreOptions`] builder).
    pub fn options() -> StoreOptions {
        StoreOptions::new()
    }

    /// An ephemeral in-memory store with default options.
    pub fn in_memory() -> Store {
        Store::options().open_memory()
    }

    /// Open (or create) a file-backed store at `path` with default
    /// options.
    pub fn open(path: &Path) -> StoreResult<Store> {
        Store::options().open(path)
    }

    /// Create a fresh file-backed store with default options,
    /// truncating any existing file.
    pub fn create(path: &Path) -> StoreResult<Store> {
        Store::options().create(path)
    }

    /// Number of shards in the underlying buffer pool.
    pub fn shard_count(&self) -> usize {
        self.pool.shard_count()
    }

    /// Backing file path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref().map(|p| p.as_path())
    }

    /// Open a named tree, creating it if absent.
    /// [`SEGMENT_CATALOG_TREE`] is reserved for the segment catalog.
    pub fn open_tree(&self, name: &str) -> StoreResult<Tree> {
        if name == SEGMENT_CATALOG_TREE {
            return Err(StoreError::NameTooLong(format!("{name} (reserved)")));
        }
        self.open_tree_raw(name)
    }

    fn open_tree_raw(&self, name: &str) -> StoreResult<Tree> {
        let root = match self.pool.tree_root(name) {
            Some(r) => r,
            None => {
                let t = BTree::create(&self.pool)?;
                self.pool.set_tree_root(name, t.root())?;
                t.root()
            }
        };
        Ok(Tree {
            pool: Arc::clone(&self.pool),
            name: name.to_string(),
            root: Arc::new(Mutex::new(root)),
        })
    }

    /// Names of all trees in the catalog (the reserved segment catalog
    /// excluded).
    pub fn tree_names(&self) -> Vec<String> {
        self.pool
            .tree_names()
            .into_iter()
            .filter(|n| n != SEGMENT_CATALOG_TREE)
            .collect()
    }

    // ---- segments ----

    /// Store `bytes` as the named segment: allocate a contiguous extent
    /// (reusing a freed one when it fits), write the data pages straight
    /// through to the device, *then* publish the catalog entry. The
    /// ordering means a crash can leave an unpublished (or stale) entry
    /// but never a published entry over unwritten pages; the entry
    /// itself becomes durable at the next [`Store::flush`]. Re-putting a
    /// name replaces its entry and returns the old extent to the free
    /// list — only after the new entry is published, so a crash in
    /// between can leak the old extent but never leave the catalog
    /// pointing at recycled pages.
    pub fn put_segment(&self, name: &str, bytes: &[u8]) -> StoreResult<()> {
        let pages = bytes.len().div_ceil(PAGE_SIZE).max(1) as u64;
        let first = self.pool.allocate_extent(pages)?;
        self.pool.write_extent(first, bytes)?;
        let entry = SegmentEntry {
            first_page: first,
            pages,
            len: bytes.len() as u64,
        };
        let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
        let old = tree.get(name.as_bytes())?;
        tree.insert(name.as_bytes(), &entry.encode())?;
        if let Some(old) = old.as_deref().and_then(SegmentEntry::decode) {
            self.pool.free_extent(old.first_page, old.pages);
        }
        Ok(())
    }

    /// Fetch a segment's bytes. `prefer_mmap` asks for a read-only OS
    /// mapping when the device supports one (file-backed unix stores);
    /// otherwise (or when mapping declines) the bytes are read into a
    /// heap buffer. Returns `Ok(None)` when no such segment exists and
    /// [`StoreError::SegmentInvalid`] when the catalog entry is present
    /// but unusable — malformed, or pointing outside the allocated page
    /// range, the signature of a torn shutdown.
    pub fn get_segment(&self, name: &str, prefer_mmap: bool) -> StoreResult<Option<SegmentData>> {
        // Don't create the catalog tree on a read path.
        if self.pool.tree_root(SEGMENT_CATALOG_TREE).is_none() {
            return Ok(None);
        }
        let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
        let Some(value) = tree.get(name.as_bytes())? else {
            return Ok(None);
        };
        let invalid = |reason| StoreError::SegmentInvalid {
            name: name.to_string(),
            reason,
        };
        let entry = SegmentEntry::decode(&value).ok_or_else(|| invalid("malformed entry"))?;
        let byte_len =
            usize::try_from(entry.len).map_err(|_| invalid("length exceeds address space"))?;
        if entry.first_page < self.pool.first_data_page()
            || entry.len > entry.pages * PAGE_SIZE as u64
            || entry
                .first_page
                .checked_add(entry.pages)
                .is_none_or(|end| end > self.pool.page_count())
        {
            return Err(invalid("extent outside allocated pages"));
        }
        if prefer_mmap && byte_len > 0 {
            // A mapping failure on a valid store degrades to the heap
            // read below — which reports real device trouble — rather
            // than aborting the fetch.
            if let Ok(Some(map)) = self.pool.mmap_extent(entry.first_page, byte_len) {
                return Ok(Some(SegmentData::Mapped { map, len: byte_len }));
            }
        }
        Ok(Some(SegmentData::Heap(
            self.pool.read_extent(entry.first_page, byte_len)?,
        )))
    }

    /// Names of all stored segments.
    pub fn segment_names(&self) -> StoreResult<Vec<String>> {
        Ok(self
            .segment_entries()?
            .into_iter()
            .map(|(name, _)| name)
            .collect())
    }

    /// Every live segment's name and catalog entry, in name order
    /// (malformed entries are skipped — [`Store::get_segment`] reports
    /// those). The crash-consistency harness checks free-list overlap
    /// and extent bounds against this.
    pub fn segment_entries(&self) -> StoreResult<Vec<(String, SegmentEntry)>> {
        if self.pool.tree_root(SEGMENT_CATALOG_TREE).is_none() {
            return Ok(Vec::new());
        }
        let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
        // Explicit `next_entry` loop: the `Iterator` sugar swallows scan
        // errors into an empty tail, and "no segments" is load-bearing
        // here (open-time reconcile skips entirely on an empty list and
        // could hand out pages a live segment still claims).
        let mut it = tree.scan_prefix(b"");
        let mut out = Vec::new();
        while let Some((k, v)) = it.next_entry()? {
            if let (Ok(name), Some(e)) = (String::from_utf8(k), SegmentEntry::decode(&v)) {
                out.push((name, e));
            }
        }
        Ok(out)
    }

    /// The pager's current free extents (`(first_page, pages)` runs,
    /// sorted by first page) — exposed for the crash harness's overlap
    /// checks.
    pub fn free_extents(&self) -> Vec<FreeExtent> {
        self.pool.free_extents()
    }

    /// Drop a segment, returning its extent to the free list so later
    /// allocations reuse the pages. Returns `true` if the segment
    /// existed. The free-list append happens *before* the catalog
    /// delete: if a torn shutdown persists only the append, open-time
    /// reconciliation sees the still-live catalog entry and drops the
    /// overlapping free extent, whereas the reverse order could leak the
    /// extent with no record of it anywhere.
    pub fn delete_segment(&self, name: &str) -> StoreResult<bool> {
        if self.pool.tree_root(SEGMENT_CATALOG_TREE).is_none() {
            return Ok(false);
        }
        let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
        let Some(value) = tree.get(name.as_bytes())? else {
            return Ok(false);
        };
        if let Some(entry) = SegmentEntry::decode(&value) {
            self.pool.free_extent(entry.first_page, entry.pages);
        }
        tree.delete(name.as_bytes())
    }

    /// Every live segment's extent, straight from the catalog.
    fn live_segment_extents(&self) -> StoreResult<Vec<FreeExtent>> {
        Ok(self
            .segment_entries()?
            .into_iter()
            .map(|(_, e)| (e.first_page, e.pages))
            .collect())
    }

    /// True when [`Store::get_segment`] can return mapped bytes.
    pub fn supports_mmap(&self) -> bool {
        self.pool.supports_mmap()
    }

    /// True when the backing device outlives the process (file-backed),
    /// i.e. persisted auxiliary structures are worth writing.
    pub fn is_persistent(&self) -> bool {
        self.pool.is_persistent()
    }

    // ---- lifecycle ----

    /// Snapshot the cumulative I/O counters. Two snapshots bracket a
    /// unit of work; [`IoSnapshot::since`] yields the pages and cache
    /// traffic that work actually caused — the per-query attribution
    /// the serving layer reports in its stats frames. Counters are
    /// store-wide, so concurrent work on the same store shows up in
    /// overlapping deltas.
    pub fn io_stats_snapshot(&self) -> IoSnapshot {
        self.pool.io_snapshot()
    }

    /// Former name of [`Store::io_stats_snapshot`].
    #[doc(hidden)]
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.io_stats_snapshot()
    }

    /// Write back dirty pages and sync the device. On a WAL-backed
    /// store this also drains the pending group-commit batch and
    /// checkpoints (truncates) the log. Blocks while a transaction is
    /// open — do not call with an un-committed [`Txn`] on the same
    /// thread.
    pub fn flush(&self) -> StoreResult<()> {
        self.pool.flush()
    }

    /// Begin an atomic transaction. All tree writes, segment puts, and
    /// deletes through this store until the matching [`Txn::commit`]
    /// become visible and durable together: on a WAL-backed store the
    /// commit stages one log batch (fsynced at the group-commit
    /// window), and a crash before the batch is logged rolls the whole
    /// transaction back on reopen. Dropping the returned [`Txn`]
    /// without committing rolls back immediately.
    ///
    /// Transactions are single-writer: `begin` blocks until no other
    /// transaction (or exclusive maintenance section) is open. They are
    /// not reentrant — a second `begin`, or a [`Store::flush`] /
    /// [`Store::vacuum`], from the same thread while a `Txn` is open
    /// deadlocks.
    pub fn begin(&self) -> StoreResult<Txn> {
        self.pool.begin_txn();
        Ok(Txn {
            pool: Arc::clone(&self.pool),
            done: false,
        })
    }

    /// True when the backing device carries a write-ahead log (i.e. the
    /// store was created persistent with a non-zero WAL region).
    pub fn wal_enabled(&self) -> bool {
        self.pool.wal_enabled()
    }

    /// First page id usable for data; pages below it hold the metadata
    /// page and the WAL region.
    pub fn first_data_page(&self) -> PageId {
        self.pool.first_data_page()
    }

    /// Number of currently *live* pages: meta + WAL region + reachable
    /// tree pages + catalogued segment extents. The complement of this
    /// within [`Store::page_count`] is the dead space vacuum can
    /// reclaim — benchmarks use the pair to compute recovery fractions.
    pub fn live_page_count(&self) -> StoreResult<u64> {
        Ok(self.live_pages()?.len() as u64)
    }

    /// Flush everything and sync before the store handle goes away —
    /// the explicit close. Segment *data* is written through at
    /// [`Store::put_segment`] time, so this is what makes the segment
    /// catalog (and any dirty tree pages) durable; call it before
    /// dropping a file-backed store whose contents you intend to reopen.
    ///
    /// Idempotent: the first *successful* call flushes, every later call
    /// (from this handle or any clone) is a no-op returning `Ok`. A
    /// failed close does not latch — the error comes back and the store
    /// stays open so the caller can retry once the device recovers
    /// (latching first would report the failure once and then swallow
    /// it forever). Reads and writes through still-held handles keep
    /// working after a close — only the closing flush itself is
    /// one-shot.
    pub fn close(&self) -> StoreResult<()> {
        if self.closed.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.flush()?;
        self.closed.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// True once [`Store::close`] has run on this handle or any clone.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Store-level resource counters: live segments, reusable free-list
    /// pages, and pages reclaimed by [`Store::vacuum`].
    pub fn stats(&self) -> StoreResult<StoreStats> {
        let segments_live = if self.pool.tree_root(SEGMENT_CATALOG_TREE).is_none() {
            0
        } else {
            self.open_tree_raw(SEGMENT_CATALOG_TREE)?.len()? as u64
        };
        Ok(StoreStats {
            segments_live,
            free_extent_pages: self.pool.free_extent_pages(),
            vacuum_reclaimed_pages: self.pool.vacuum_reclaimed_pages(),
        })
    }

    /// Compact the store: slide every live page down into a dense
    /// prefix, rewrite all page references (tree child pointers, sibling
    /// links, overflow chains, catalog roots, segment entries), rebuild
    /// the free-extent list, and truncate the dead tail back to the
    /// filesystem. Returns the number of pages reclaimed (the drop in
    /// [`Store::page_count`]).
    ///
    /// Liveness is computed from first principles — every page reachable
    /// from a catalogued tree plus every catalogued segment extent plus
    /// the meta page — so vacuum also recovers extents the bounded free
    /// list had to drop.
    ///
    /// Vacuum invalidates handles that cache physical locations: open
    /// [`Tree`] handles (their cached root may have moved) and mapped
    /// segment bytes ([`SegmentData::Mapped`] — the mapped pages can be
    /// pulled out from under the mapping). Reopen trees and re-fetch
    /// segments afterwards. Vacuum itself is not crash-atomic; a crash
    /// in the middle can leave dangling segment entries, which the read
    /// path reports as [`StoreError::SegmentInvalid`].
    pub fn vacuum(&self) -> StoreResult<u64> {
        // Vacuum holds the transaction gate for its whole run: no
        // transaction may commit while pages are being relocated, and
        // the opening flush drains + checkpoints the WAL so no pending
        // batch images describe the old layout.
        let _excl = self.pool.txn_exclusion();
        let first_data = self.pool.first_data_page();
        // Make the device authoritative and wipe the free list —
        // relocation targets must never race allocations for the holes,
        // and the list is rebuilt from scratch at the end.
        self.pool.flush_locked()?;
        self.pool.set_free_extents(Vec::new());
        let old_count = self.pool.page_count();

        // ---- analyze: live units (single tree pages, whole extents) ----
        let tree_roots: Vec<(String, PageId)> = self
            .pool
            .tree_names()
            .into_iter()
            .filter_map(|n| self.pool.tree_root(&n).map(|r| (n, r)))
            .collect();
        let mut tree_pages: BTreeSet<PageId> = BTreeSet::new();
        for (_, root) in &tree_roots {
            BTree::open(&self.pool, *root).collect_pages(&mut tree_pages)?;
        }
        let mut segments: Vec<(String, SegmentEntry)> = self.segment_entries()?;
        let mut units: Vec<(PageId, u64, Option<usize>)> = tree_pages
            .iter()
            .map(|&p| (p, 1, None))
            .chain(
                segments
                    .iter()
                    .enumerate()
                    .map(|(i, (_, e))| (e.first_page, e.pages, Some(i))),
            )
            .collect();
        units.sort_unstable_by_key(|&(first, _, _)| first);
        let mut prev_end = first_data;
        for &(first, pages, _) in &units {
            if first < prev_end || first.checked_add(pages).is_none_or(|end| end > old_count) {
                return Err(StoreError::Corrupt("vacuum: live extents overlap"));
            }
            prev_end = first + pages;
        }

        // ---- plan the dense layout ----
        // Units are assigned ascending targets from the first data page
        // up; because
        // sources are disjoint and ascending, every target range sits at
        // or below its source and never overlaps a later source, so the
        // moves can be applied in order with only per-unit buffering.
        let mut map: std::collections::HashMap<PageId, PageId> = std::collections::HashMap::new();
        let mut moves: Vec<(PageId, u64, PageId)> = Vec::new();
        let mut next: PageId = first_data;
        for &(first, pages, seg) in &units {
            let target = next;
            next += pages;
            if target == first {
                continue;
            }
            moves.push((first, pages, target));
            match seg {
                None => {
                    map.insert(first, target);
                }
                Some(i) => {
                    segments[i].1 = SegmentEntry {
                        first_page: target,
                        ..segments[i].1
                    };
                }
            }
        }

        // ---- apply moves at device level, then fix references ----
        for &(first, pages, target) in &moves {
            let bytes = self.pool.read_extent(first, (pages as usize) * PAGE_SIZE)?;
            self.pool.write_extent(target, &bytes)?;
        }
        // Frames cached during analysis describe the old layout.
        self.pool.forget_frames_from(0);
        if !map.is_empty() {
            let mut page = vec![0u8; PAGE_SIZE];
            for &p in &tree_pages {
                let np = map.get(&p).copied().unwrap_or(p);
                page.copy_from_slice(&self.pool.read_extent(np, PAGE_SIZE)?);
                // These reads bypass the pool (and its load-time check),
                // so validate before parsing slot offsets out of them.
                crate::btree::validate_page(&page).map_err(StoreError::Corrupt)?;
                if crate::btree::rewrite_page_pointers(&mut page, &map) {
                    self.pool.write_extent(np, &page)?;
                }
            }
            for (name, root) in &tree_roots {
                if let Some(&new_root) = map.get(root) {
                    self.pool.set_tree_root(name, new_root)?;
                }
            }
        }
        // Republish entries for moved segments through the (already
        // relocated) catalog tree.
        let moved_entries: Vec<&(String, SegmentEntry)> = segments
            .iter()
            .filter(|(_, e)| moves.iter().any(|&(_, _, target)| target == e.first_page))
            .collect();
        if !moved_entries.is_empty() {
            let tree = self.open_tree_raw(SEGMENT_CATALOG_TREE)?;
            for (name, e) in moved_entries {
                tree.insert(name.as_bytes(), &e.encode())?;
            }
        }
        self.pool.flush_locked()?;

        // ---- re-derive liveness (catalog rewrites can allocate), then
        // rebuild the free list and drop the tail ----
        let live = self.live_pages()?;
        let new_count = live.iter().next_back().map_or(first_data, |&p| p + 1);
        self.pool
            .set_free_extents(free_runs(&live, new_count).into_iter().collect());
        self.pool.forget_frames_from(new_count);
        self.pool.shrink_to(new_count)?;
        self.pool.flush_locked()?;
        Ok(old_count.saturating_sub(self.pool.page_count()))
    }

    /// Every live page: the meta page and WAL region, all pages
    /// reachable from catalogued trees, and all catalogued segment
    /// extents.
    fn live_pages(&self) -> StoreResult<BTreeSet<PageId>> {
        let mut live = BTreeSet::new();
        live.insert(META_PAGE);
        // The WAL header + record region is infrastructure, always live.
        live.extend(META_PAGE + 1..self.pool.first_data_page());
        for name in self.pool.tree_names() {
            if let Some(root) = self.pool.tree_root(&name) {
                BTree::open(&self.pool, root).collect_pages(&mut live)?;
            }
        }
        for (first, pages) in self.live_segment_extents()? {
            live.extend(first..first + pages);
        }
        Ok(live)
    }

    /// Total allocated pages (a proxy for on-disk size).
    pub fn page_count(&self) -> u64 {
        self.pool.page_count()
    }

    /// Approximate on-disk size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.page_count() * crate::PAGE_SIZE as u64
    }
}

impl Drop for Store {
    /// Best-effort flush when the last handle goes away without an
    /// explicit [`Store::close`]. Drop must never panic (it may run
    /// during another panic's unwind) and has no way to return an
    /// error, so a failed flush is swallowed into the
    /// [`IoSnapshot::flush_failures`] counter. Only the final handle
    /// flushes, and only while open [`Tree`] handles (which share the
    /// pool) don't outlive it.
    fn drop(&mut self) {
        if Arc::strong_count(&self.pool) == 1
            && !self.closed.load(Ordering::SeqCst)
            && self.pool.flush().is_err()
        {
            self.pool.record_flush_failure();
        }
    }
}

/// An open transaction on a [`Store`], returned by [`Store::begin`].
///
/// Holds the store's single-writer gate until resolved. [`commit`]
/// publishes every write made since `begin` atomically; [`rollback`]
/// (or dropping the guard) restores the pre-transaction state
/// byte-for-byte — pages are un-written, allocations un-made, root
/// moves un-done.
///
/// [`commit`]: Txn::commit
/// [`rollback`]: Txn::rollback
#[must_use = "dropping a Txn rolls it back"]
pub struct Txn {
    pool: Arc<BufferPool>,
    done: bool,
}

impl std::fmt::Debug for Txn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn").field("done", &self.done).finish()
    }
}

impl Txn {
    /// Commit: everything written since [`Store::begin`] becomes
    /// visible atomically. On a WAL-backed store durability arrives
    /// with the group-commit fsync (at the latest, the next
    /// [`Store::flush`]); an error here means the transaction state is
    /// already published in memory but the log append failed — the
    /// caller should surface it and flush.
    pub fn commit(mut self) -> StoreResult<()> {
        self.done = true;
        self.pool.commit_txn()
    }

    /// Roll back: restore the exact pre-transaction state.
    pub fn rollback(mut self) {
        self.done = true;
        self.pool.rollback_txn();
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.done {
            self.pool.rollback_txn();
        }
    }
}

/// A named, ordered key-value tree within a [`Store`].
#[derive(Debug, Clone)]
pub struct Tree {
    pool: Arc<BufferPool>,
    name: String,
    root: Arc<Mutex<PageId>>,
}

impl Tree {
    /// The tree's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Insert or replace; returns `true` if the key was new.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> StoreResult<bool> {
        let mut root = self.root.lock();
        let mut bt = BTree::open(&self.pool, *root);
        let was_new = bt.insert(key, value)?;
        if bt.root() != *root {
            *root = bt.root();
            self.pool.set_tree_root(&self.name, *root)?;
        }
        Ok(was_new)
    }

    /// Replace the tree's contents with key-sorted pairs packed
    /// bottom-up (see [`BTree::bulk_load`]) at the given fill factor
    /// ([`crate::btree::DEFAULT_FILL`] is the usual choice). The
    /// previous root's pages are abandoned — the same write-once policy
    /// as overflow replacement; the shredder bulk-loads into freshly
    /// created trees, where nothing is lost.
    pub fn bulk_load<I>(&self, pairs: I, fill_factor: f64) -> StoreResult<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let mut root = self.root.lock();
        let bt = BTree::bulk_load(&self.pool, pairs, fill_factor)?;
        *root = bt.root();
        self.pool.set_tree_root(&self.name, *root)
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let root = *self.root.lock();
        BTree::open(&self.pool, root).get(key)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &[u8]) -> StoreResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Remove a key; returns `true` if it was present.
    pub fn delete(&self, key: &[u8]) -> StoreResult<bool> {
        let root = *self.root.lock();
        BTree::open(&self.pool, root).delete(key)
    }

    /// Ordered scan over a key range. Accepts the usual range syntax:
    /// `tree.range(..)`, `tree.range(a..b)`, `tree.range(a..=b)` with
    /// `Vec<u8>` endpoints.
    pub fn range<R: RangeBounds<Vec<u8>>>(&self, bounds: R) -> RangeIter<'_> {
        let root = *self.root.lock();
        let start_owned: Bound<Vec<u8>> = clone_bound(bounds.start_bound());
        let end: Bound<Vec<u8>> = clone_bound(bounds.end_bound());
        let start_ref: Bound<&[u8]> = match &start_owned {
            Bound::Included(v) => Bound::Included(v.as_slice()),
            Bound::Excluded(v) => Bound::Excluded(v.as_slice()),
            Bound::Unbounded => Bound::Unbounded,
        };
        match BTree::open(&self.pool, root).range(start_ref, end) {
            Ok(it) => it,
            // Setup failure (an I/O error or torn page on the descent)
            // must not panic a read path; the error surfaces through
            // `next_entry`/`error()` on the returned iterator.
            Err(e) => RangeIter::failed(&self.pool, e),
        }
    }

    /// Scan all keys beginning with `prefix`, in order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> RangeIter<'_> {
        let root = *self.root.lock();
        let end = match prefix_successor(prefix) {
            Some(e) => Bound::Excluded(e),
            None => Bound::Unbounded,
        };
        match BTree::open(&self.pool, root).range(Bound::Included(prefix), end) {
            Ok(it) => it,
            Err(e) => RangeIter::failed(&self.pool, e),
        }
    }

    /// Number of entries — O(n).
    pub fn len(&self) -> StoreResult<usize> {
        let root = *self.root.lock();
        BTree::open(&self.pool, root).len()
    }

    /// True when empty — O(1).
    pub fn is_empty(&self) -> StoreResult<bool> {
        let root = *self.root.lock();
        BTree::open(&self.pool, root).is_empty()
    }
}

fn clone_bound(b: Bound<&Vec<u8>>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(v) => Bound::Included(v.clone()),
        Bound::Excluded(v) => Bound::Excluded(v.clone()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Contiguous runs of non-live pages in `[1, bound)`, ascending — the
/// holes vacuum relocates segments into and rebuilds the free list from.
fn free_runs(live: &BTreeSet<PageId>, bound: u64) -> Vec<FreeExtent> {
    let mut runs = Vec::new();
    let mut cursor: PageId = 1;
    for &p in live.range(1..bound) {
        if p > cursor {
            runs.push((cursor, p - cursor));
        }
        cursor = p + 1;
    }
    if bound > cursor {
        runs.push((cursor, bound - cursor));
    }
    runs
}

/// The smallest byte string greater than every string with this prefix,
/// or `None` when the prefix is all `0xff`.
fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_tree_twice_shares_data() {
        let store = Store::in_memory();
        let a = store.open_tree("t").unwrap();
        a.insert(b"k", b"v").unwrap();
        let b = store.open_tree("t").unwrap();
        assert_eq!(b.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn separate_trees_are_independent() {
        let store = Store::in_memory();
        let a = store.open_tree("a").unwrap();
        let b = store.open_tree("b").unwrap();
        a.insert(b"k", b"from-a").unwrap();
        b.insert(b"k", b"from-b").unwrap();
        assert_eq!(a.get(b"k").unwrap().as_deref(), Some(&b"from-a"[..]));
        assert_eq!(b.get(b"k").unwrap().as_deref(), Some(&b"from-b"[..]));
        assert_eq!(store.tree_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn root_split_visible_through_catalog() {
        let store = Store::in_memory();
        let t = store.open_tree("big").unwrap();
        for i in 0..3000u32 {
            t.insert(format!("{i:06}").as_bytes(), b"payload").unwrap();
        }
        // A second handle opened after the splits must see everything.
        let t2 = store.open_tree("big").unwrap();
        assert_eq!(t2.len().unwrap(), 3000);
    }

    #[test]
    fn scan_prefix_works() {
        let store = Store::in_memory();
        let t = store.open_tree("t").unwrap();
        for k in ["a/1", "a/2", "a/3", "b/1", "", "a"] {
            t.insert(k.as_bytes(), b"").unwrap();
        }
        let got: Vec<String> = t
            .scan_prefix(b"a/")
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(got, vec!["a/1", "a/2", "a/3"]);
        // Empty prefix scans everything.
        assert_eq!(t.scan_prefix(b"").count(), 6);
    }

    #[test]
    fn range_syntax_variants() {
        let store = Store::in_memory();
        let t = store.open_tree("t").unwrap();
        for i in 0..10u8 {
            t.insert(&[i], &[i]).unwrap();
        }
        assert_eq!(t.range(..).count(), 10);
        assert_eq!(t.range(vec![3]..vec![7]).count(), 4);
        assert_eq!(t.range(vec![3]..=vec![7]).count(), 5);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pagestore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.db");
        {
            let store = Store::create(&path).unwrap();
            let t = store.open_tree("nodes").unwrap();
            for i in 0..2000u32 {
                t.insert(&i.to_be_bytes(), format!("node {i}").as_bytes())
                    .unwrap();
            }
            store.flush().unwrap();
        }
        {
            let store = Store::open(&path).unwrap();
            let t = store.open_tree("nodes").unwrap();
            assert_eq!(t.len().unwrap(), 2000);
            assert_eq!(
                t.get(&1234u32.to_be_bytes()).unwrap().as_deref(),
                Some(&b"node 1234"[..])
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefix_successor_edges() {
        assert_eq!(prefix_successor(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_successor(&[0x01, 0xff]), Some(vec![0x02]));
        assert_eq!(prefix_successor(&[0xff, 0xff]), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn close_is_idempotent() {
        let store = Store::in_memory();
        store.open_tree("t").unwrap().insert(b"k", b"v").unwrap();
        assert!(!store.is_closed());
        store.close().unwrap();
        assert!(store.is_closed());
        // Second close — on this handle and on a clone — is a no-op.
        store.close().unwrap();
        let clone = store.clone();
        assert!(clone.is_closed());
        clone.close().unwrap();
    }

    #[test]
    fn stats_track_segments_and_free_pages() {
        let store = Store::in_memory();
        let s = store.stats().unwrap();
        assert_eq!(s.segments_live, 0);
        assert_eq!(s.free_extent_pages, 0);
        store.put_segment("a", &vec![1u8; PAGE_SIZE * 3]).unwrap();
        store.put_segment("b", &vec![2u8; PAGE_SIZE]).unwrap();
        assert_eq!(store.stats().unwrap().segments_live, 2);
        store.delete_segment("a").unwrap();
        let s = store.stats().unwrap();
        assert_eq!(s.segments_live, 1);
        assert_eq!(s.free_extent_pages, 3);
    }

    #[test]
    fn vacuum_reclaims_dead_tail() {
        let store = Store::in_memory();
        let t = store.open_tree("t").unwrap();
        for i in 0..100u32 {
            t.insert(&i.to_be_bytes(), &[7u8; 50]).unwrap();
        }
        let keep = vec![3u8; PAGE_SIZE + 5];
        store.put_segment("keep", &keep).unwrap();
        store
            .put_segment("dead", &vec![9u8; PAGE_SIZE * 20])
            .unwrap();
        let before = store.page_count();
        store.delete_segment("dead").unwrap();
        let reclaimed = store.vacuum().unwrap();
        assert!(reclaimed >= 20, "reclaimed only {reclaimed} pages");
        assert_eq!(store.page_count(), before - reclaimed);
        assert_eq!(store.stats().unwrap().vacuum_reclaimed_pages, reclaimed);
        // Everything live survives.
        assert_eq!(t.len().unwrap(), 100);
        assert_eq!(&*store.get_segment("keep", false).unwrap().unwrap(), &keep);
    }

    #[test]
    fn vacuum_relocates_segments_into_holes() {
        // A big dead extent below a small live one: vacuum must slide the
        // live segment down so truncation can take the whole tail.
        let store = Store::in_memory();
        store
            .put_segment("low", &vec![1u8; PAGE_SIZE * 30])
            .unwrap();
        let hi = vec![5u8; PAGE_SIZE * 2 + 13];
        store.put_segment("hi", &hi).unwrap();
        store.delete_segment("low").unwrap();
        let reclaimed = store.vacuum().unwrap();
        assert!(reclaimed >= 28, "reclaimed only {reclaimed} pages");
        assert_eq!(&*store.get_segment("hi", false).unwrap().unwrap(), &hi);
        assert_eq!(store.stats().unwrap().free_extent_pages, 0);
    }

    #[test]
    fn vacuum_on_compact_store_is_noop() {
        let store = Store::in_memory();
        let t = store.open_tree("t").unwrap();
        for i in 0..50u32 {
            t.insert(&i.to_be_bytes(), b"v").unwrap();
        }
        let before = store.page_count();
        assert_eq!(store.vacuum().unwrap(), 0);
        assert_eq!(store.page_count(), before);
        assert_eq!(t.len().unwrap(), 50);
    }

    #[test]
    fn io_snapshot_reports_traffic() {
        let store = Store::in_memory();
        let t = store.open_tree("t").unwrap();
        for i in 0..5000u32 {
            t.insert(&i.to_be_bytes(), &[0u8; 100]).unwrap();
        }
        store.flush().unwrap();
        let snap = store.io_snapshot();
        assert!(
            snap.blocks_written > 10,
            "expected real write traffic: {snap:?}"
        );
    }
}

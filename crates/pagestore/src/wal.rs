//! Page-image write-ahead log: record format and recovery replay.
//!
//! The WAL lives *inside* the database device, in a fixed extent right
//! after the meta page, so the one `Storage` the store already owns (and
//! the fault-injection layer already intercepts) carries the log too:
//!
//! ```text
//! page 0        meta page (magic, catalog, free list)
//! page 1        WAL header: magic, record-region size, checksum
//! pages 2..2+N  WAL record region (append-only byte stream)
//! pages 2+N..   data pages (trees, overflow chains, segment extents)
//! ```
//!
//! The record region is an append-only stream of checksummed records:
//!
//! ```text
//! offset  size  field
//!      0     8  record magic "XMWALR01"
//!      8     8  lsn   (u64 LE, consecutive within a run)
//!     16     8  epoch (u64 LE, constant within a run)
//!     24     8  page id the image belongs to (0 for commit records)
//!     32     8  payload length (PAGE_SIZE for images, 0 for commits)
//!     40     1  kind: 1 = page image, 2 = commit
//!     41    15  zero padding
//!     56     8  FNV-1a-64 over header[0..56] ++ payload
//! ```
//!
//! A transaction batch is a run of image records followed by exactly one
//! commit record, appended with a single `write_at` and made durable with
//! one `sync` — that sync *is* the commit point. Replay scans from the
//! head of the region, buffers image records, and applies them to their
//! home pages only when it reaches the batch's commit record; anything
//! after the last valid commit — a torn record, a checksum mismatch, an
//! epoch or LSN discontinuity — is an uncommitted tail and is discarded.
//! Replay never writes into the WAL region itself, so running it twice
//! over the same device is idempotent by construction.
//!
//! The epoch counter makes checkpoint truncation safe without erasing
//! the whole region: a checkpoint zeroes only the first record header
//! (one 64-byte write) and bumps the epoch, so stale deeper records from
//! the previous run fail the epoch/LSN continuity check and read as
//! tail debris.

use crate::error::{StoreError, StoreResult};
use crate::pager::PageId;
use crate::storage::Storage;
use crate::PAGE_SIZE;

/// Page holding the WAL header (written once at store creation).
pub const WAL_HEADER_PAGE: PageId = 1;

/// Magic prefix of the WAL header page.
pub const WAL_HEADER_MAGIC: &[u8; 8] = b"XMWALHD1";

/// Magic prefix of every WAL record.
const RECORD_MAGIC: &[u8; 8] = b"XMWALR01";

/// Fixed size of a record header.
pub const RECORD_HEADER_LEN: usize = 64;

/// Default size of the record region, in pages (4 MiB at 4 KiB pages).
pub const DEFAULT_WAL_RECORD_PAGES: u64 = 1024;

/// Record kind: a full page image.
pub const KIND_IMAGE: u8 = 1;

/// Record kind: a commit marker sealing the images before it.
pub const KIND_COMMIT: u8 = 2;

/// Upper sanity bound on the record-region size (4 GiB).
const MAX_RECORD_PAGES: u64 = 1 << 20;

/// FNV-1a-64 over a sequence of byte slices.
fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Geometry of the WAL extent within the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalLayout {
    /// Pages in the record region (excluding the header page).
    pub record_pages: u64,
}

impl WalLayout {
    /// Byte offset of the first record (the head).
    pub fn first_record_off(&self) -> u64 {
        (WAL_HEADER_PAGE + 1) * PAGE_SIZE as u64
    }

    /// One past the last byte of the record region.
    pub fn end_off(&self) -> u64 {
        self.first_record_off() + self.record_pages * PAGE_SIZE as u64
    }

    /// First page id outside the WAL extent — where data pages begin.
    pub fn first_data_page(&self) -> PageId {
        WAL_HEADER_PAGE + 1 + self.record_pages
    }
}

/// Serialize the WAL header page: magic, record-region size, checksum.
pub fn encode_header_page(record_pages: u64) -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    page[0..8].copy_from_slice(WAL_HEADER_MAGIC);
    page[8..16].copy_from_slice(&record_pages.to_le_bytes());
    let sum = fnv1a(&[&page[0..16]]);
    page[16..24].copy_from_slice(&sum.to_le_bytes());
    page
}

/// Parse a WAL header page, returning the record-region size. `None`
/// means "this is not a WAL header" — the store has no WAL (a pre-WAL
/// file) and page 1 is an ordinary data page.
pub fn decode_header_page(page: &[u8]) -> Option<u64> {
    if page.len() < 24 || &page[0..8] != WAL_HEADER_MAGIC {
        return None;
    }
    let sum = u64::from_le_bytes(page[16..24].try_into().unwrap());
    if fnv1a(&[&page[0..16]]) != sum {
        return None;
    }
    let record_pages = u64::from_le_bytes(page[8..16].try_into().unwrap());
    if record_pages == 0 || record_pages > MAX_RECORD_PAGES {
        return None;
    }
    Some(record_pages)
}

fn push_record(out: &mut Vec<u8>, lsn: u64, epoch: u64, page_id: PageId, kind: u8, payload: &[u8]) {
    let mut hdr = [0u8; RECORD_HEADER_LEN];
    hdr[0..8].copy_from_slice(RECORD_MAGIC);
    hdr[8..16].copy_from_slice(&lsn.to_le_bytes());
    hdr[16..24].copy_from_slice(&epoch.to_le_bytes());
    hdr[24..32].copy_from_slice(&page_id.to_le_bytes());
    hdr[32..40].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    hdr[40] = kind;
    let sum = fnv1a(&[&hdr[0..56], payload]);
    hdr[56..64].copy_from_slice(&sum.to_le_bytes());
    out.extend_from_slice(&hdr);
    out.extend_from_slice(payload);
}

/// Serialize one transaction batch: an image record per `(page, bytes)`
/// pair, then a single commit record. LSNs start at `start_lsn` and the
/// caller advances its counter by `images.len() + 1`.
pub fn encode_batch(images: &[(PageId, &[u8])], epoch: u64, start_lsn: u64) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(images.len() * (RECORD_HEADER_LEN + PAGE_SIZE) + RECORD_HEADER_LEN);
    let mut lsn = start_lsn;
    for &(page, bytes) in images {
        debug_assert_eq!(bytes.len(), PAGE_SIZE);
        push_record(&mut out, lsn, epoch, page, KIND_IMAGE, bytes);
        lsn += 1;
    }
    push_record(&mut out, lsn, epoch, 0, KIND_COMMIT, &[]);
    out
}

/// What replay found and did.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayOutcome {
    /// Valid records scanned (committed or not).
    pub records_seen: u64,
    /// Commit records whose batches were applied.
    pub commits_applied: u64,
    /// Page images written back to their home pages.
    pub images_applied: u64,
    /// Epoch the next run must use (last seen + 1; 1 on an empty log).
    pub next_epoch: u64,
    /// True when the head record bytes are not all-zero — the opener
    /// must zero the head (and sync) before appending, so stale records
    /// can never chain onto the new run.
    pub head_dirty: bool,
}

/// Scan the record region and apply every committed batch to its home
/// pages. Stops at the first invalid record (bad magic, bad checksum,
/// malformed shape, epoch/LSN discontinuity, overrun) — everything from
/// there on is an uncommitted or torn tail. Buffered images of a batch
/// whose commit record never appears are discarded. The WAL region
/// itself is never written, so replay is idempotent.
pub fn replay(storage: &mut dyn Storage, layout: &WalLayout) -> StoreResult<ReplayOutcome> {
    let mut off = layout.first_record_off();
    let end = layout.end_off();
    let mut out = ReplayOutcome {
        next_epoch: 1,
        ..ReplayOutcome::default()
    };
    {
        let mut head = [0u8; RECORD_HEADER_LEN];
        storage.read_at(off, &mut head)?;
        out.head_dirty = head.iter().any(|&b| b != 0);
    }
    let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
    let mut run: Option<(u64, u64)> = None; // (epoch, next expected lsn)
    loop {
        if off + RECORD_HEADER_LEN as u64 > end {
            break;
        }
        let mut hdr = [0u8; RECORD_HEADER_LEN];
        storage.read_at(off, &mut hdr)?;
        if &hdr[0..8] != RECORD_MAGIC {
            break;
        }
        let lsn = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        let epoch = u64::from_le_bytes(hdr[16..24].try_into().unwrap());
        let page_id = u64::from_le_bytes(hdr[24..32].try_into().unwrap());
        let plen = u64::from_le_bytes(hdr[32..40].try_into().unwrap());
        let kind = hdr[40];
        let shape_ok = match kind {
            KIND_IMAGE => plen == PAGE_SIZE as u64,
            KIND_COMMIT => plen == 0,
            _ => false,
        };
        if !shape_ok || off + RECORD_HEADER_LEN as u64 + plen > end {
            break;
        }
        let mut payload = vec![0u8; plen as usize];
        if plen > 0 {
            storage.read_at(off + RECORD_HEADER_LEN as u64, &mut payload)?;
        }
        let sum = u64::from_le_bytes(hdr[56..64].try_into().unwrap());
        if fnv1a(&[&hdr[0..56], &payload]) != sum {
            break;
        }
        match run {
            Some((e, next_lsn)) if epoch != e || lsn != next_lsn => break,
            _ => {}
        }
        run = Some((epoch, lsn + 1));
        out.records_seen += 1;
        if kind == KIND_IMAGE {
            // Images may target the meta page or any data page, never
            // the WAL extent itself; a checksummed record pointing into
            // the log is debris from a layout change — stop there.
            let in_wal = page_id != 0 && page_id < layout.first_data_page();
            let Some(home) = page_id.checked_mul(PAGE_SIZE as u64) else {
                break;
            };
            if in_wal {
                break;
            }
            let _ = home;
            pending.push((page_id, payload));
        } else {
            for (pid, img) in pending.drain(..) {
                storage.write_at(pid * PAGE_SIZE as u64, &img)?;
                out.images_applied += 1;
            }
            out.commits_applied += 1;
        }
        off += RECORD_HEADER_LEN as u64 + plen;
    }
    if out.commits_applied > 0 {
        storage.sync()?;
    }
    out.next_epoch = match run {
        Some((e, _)) => e
            .checked_add(1)
            .ok_or(StoreError::Corrupt("wal epoch overflow"))?,
        None => 1,
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn layout() -> WalLayout {
        WalLayout { record_pages: 8 }
    }

    fn img(b: u8) -> Vec<u8> {
        vec![b; PAGE_SIZE]
    }

    fn append(dev: &mut MemStorage, off: u64, bytes: &[u8]) -> u64 {
        dev.write_at(off, bytes).unwrap();
        off + bytes.len() as u64
    }

    fn page_at(dev: &mut MemStorage, id: PageId) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        dev.read_at(id * PAGE_SIZE as u64, &mut buf).unwrap();
        buf
    }

    #[test]
    fn header_page_round_trips() {
        let page = encode_header_page(1024);
        assert_eq!(decode_header_page(&page), Some(1024));
        // A torn header (flipped byte) is "no WAL", not an error.
        let mut torn = page.clone();
        torn[9] ^= 0xff;
        assert_eq!(decode_header_page(&torn), None);
        assert_eq!(decode_header_page(&vec![0u8; PAGE_SIZE]), None);
    }

    #[test]
    fn committed_batch_is_applied_on_replay() {
        let lay = layout();
        let mut dev = MemStorage::new();
        let first_data = lay.first_data_page();
        let batch = encode_batch(
            &[(first_data, &img(0xAA)), (first_data + 3, &img(0xBB))],
            1,
            0,
        );
        append(&mut dev, lay.first_record_off(), &batch);
        let out = replay(&mut dev, &lay).unwrap();
        assert_eq!(out.commits_applied, 1);
        assert_eq!(out.images_applied, 2);
        assert_eq!(out.next_epoch, 2);
        assert!(out.head_dirty);
        assert_eq!(page_at(&mut dev, first_data), img(0xAA));
        assert_eq!(page_at(&mut dev, first_data + 3), img(0xBB));
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let lay = layout();
        let mut dev = MemStorage::new();
        let p = lay.first_data_page();
        let committed = encode_batch(&[(p, &img(0x11))], 1, 0);
        let off = append(&mut dev, lay.first_record_off(), &committed);
        // A second batch whose commit record is missing: images only.
        let mut tail = Vec::new();
        push_record(&mut tail, 2, 1, p, KIND_IMAGE, &img(0x22));
        append(&mut dev, off, &tail);
        let out = replay(&mut dev, &lay).unwrap();
        assert_eq!(out.commits_applied, 1);
        assert_eq!(page_at(&mut dev, p), img(0x11), "uncommitted image applied");
    }

    #[test]
    fn torn_record_stops_the_scan() {
        let lay = layout();
        let mut dev = MemStorage::new();
        let p = lay.first_data_page();
        let b1 = encode_batch(&[(p, &img(0x11))], 1, 0);
        let off = append(&mut dev, lay.first_record_off(), &b1);
        let b2 = encode_batch(&[(p, &img(0x22))], 1, 2);
        // Tear the second batch mid-payload (sector-aligned prefix).
        append(&mut dev, off, &b2[..512]);
        let out = replay(&mut dev, &lay).unwrap();
        assert_eq!(out.commits_applied, 1);
        assert_eq!(page_at(&mut dev, p), img(0x11));
    }

    #[test]
    fn epoch_mismatch_reads_as_tail_debris() {
        let lay = layout();
        let mut dev = MemStorage::new();
        let p = lay.first_data_page();
        // New run (epoch 2) at the head, old-epoch debris right after.
        let fresh = encode_batch(&[(p, &img(0x33))], 2, 0);
        let off = append(&mut dev, lay.first_record_off(), &fresh);
        let debris = encode_batch(&[(p + 1, &img(0x44))], 1, 7);
        append(&mut dev, off, &debris);
        let out = replay(&mut dev, &lay).unwrap();
        assert_eq!(out.commits_applied, 1);
        assert_eq!(out.next_epoch, 3);
        assert_eq!(page_at(&mut dev, p), img(0x33));
        assert_ne!(page_at(&mut dev, p + 1), img(0x44));
    }

    #[test]
    fn lsn_discontinuity_stops_the_scan() {
        let lay = layout();
        let mut dev = MemStorage::new();
        let p = lay.first_data_page();
        let b1 = encode_batch(&[(p, &img(0x55))], 1, 0);
        let off = append(&mut dev, lay.first_record_off(), &b1);
        let skipped = encode_batch(&[(p + 1, &img(0x66))], 1, 9); // lsn gap
        append(&mut dev, off, &skipped);
        let out = replay(&mut dev, &lay).unwrap();
        assert_eq!(out.commits_applied, 1);
        assert_ne!(page_at(&mut dev, p + 1), img(0x66));
    }

    #[test]
    fn replay_twice_is_idempotent() {
        let lay = layout();
        let mut dev = MemStorage::new();
        let p = lay.first_data_page();
        let batch = encode_batch(&[(p, &img(0x77)), (0, &img(0x01))], 1, 0);
        append(&mut dev, lay.first_record_off(), &batch);
        let first = replay(&mut dev, &lay).unwrap();
        let snapshot: Vec<u8> = {
            let mut all = vec![0u8; dev.len().unwrap() as usize];
            dev.read_at(0, &mut all).unwrap();
            all
        };
        let second = replay(&mut dev, &lay).unwrap();
        assert_eq!(first.commits_applied, second.commits_applied);
        let mut again = vec![0u8; dev.len().unwrap() as usize];
        dev.read_at(0, &mut again).unwrap();
        assert_eq!(snapshot, again, "second replay changed the device");
    }

    #[test]
    fn empty_log_is_a_clean_run() {
        let lay = layout();
        let mut dev = MemStorage::new();
        let out = replay(&mut dev, &lay).unwrap();
        assert_eq!(out.records_seen, 0);
        assert_eq!(out.next_epoch, 1);
        assert!(!out.head_dirty);
    }

    #[test]
    fn image_into_wal_region_stops_the_scan() {
        let lay = layout();
        let mut dev = MemStorage::new();
        let batch = encode_batch(&[(WAL_HEADER_PAGE, &img(0x99))], 1, 0);
        append(&mut dev, lay.first_record_off(), &batch);
        let out = replay(&mut dev, &lay).unwrap();
        assert_eq!(out.commits_applied, 0);
        assert_ne!(page_at(&mut dev, WAL_HEADER_PAGE), img(0x99));
    }
}

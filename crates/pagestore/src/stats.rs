//! Cumulative I/O instrumentation.
//!
//! The paper's §IX uses `vmstat` to chart cumulative block I/O (Fig. 11)
//! and the CPU's I/O-wait percentage (Fig. 12) while a transformation
//! runs. We instrument at the pager level instead: every page transfer
//! bumps a block counter and accumulates the wall time spent inside the
//! read/write call. A sampling thread in the bench harness snapshots
//! [`IoStats`] periodically to regenerate both figures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared, thread-safe I/O counters. Cheap to clone (reference-counted).
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    read_ns: AtomicU64,
    write_ns: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    flush_failures: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Pages read from the backing device.
    pub blocks_read: u64,
    /// Pages written to the backing device.
    pub blocks_written: u64,
    /// Wall time spent inside device reads.
    pub read_time: Duration,
    /// Wall time spent inside device writes.
    pub write_time: Duration,
    /// Buffer-pool hits.
    pub cache_hits: u64,
    /// Buffer-pool misses (each miss implies a device read).
    pub cache_misses: u64,
    /// Best-effort flushes that failed and were swallowed (the drop
    /// path must never panic; this counter is how those errors stay
    /// observable).
    pub flush_failures: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Record a device read of `blocks` pages taking `elapsed` (public
    /// so external harnesses can meter their own I/O paths).
    pub fn record_read(&self, blocks: u64, elapsed: Duration) {
        self.inner.blocks_read.fetch_add(blocks, Ordering::Relaxed);
        self.inner
            .read_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record a device write of `blocks` pages taking `elapsed`.
    pub fn record_write(&self, blocks: u64, elapsed: Duration) {
        self.inner
            .blocks_written
            .fetch_add(blocks, Ordering::Relaxed);
        self.inner
            .write_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_flush_failure(&self) {
        self.inner.flush_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            blocks_read: self.inner.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.inner.blocks_written.load(Ordering::Relaxed),
            read_time: Duration::from_nanos(self.inner.read_ns.load(Ordering::Relaxed)),
            write_time: Duration::from_nanos(self.inner.write_ns.load(Ordering::Relaxed)),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            flush_failures: self.inner.flush_failures.load(Ordering::Relaxed),
        }
    }
}

/// Store-level resource counters, read through
/// [`crate::store::Store::stats`] — the allocator/segment companions to
/// the I/O counters in [`IoSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Segments currently present in the catalog.
    pub segments_live: u64,
    /// Pages sitting on the free-extent list, available for reuse.
    pub free_extent_pages: u64,
    /// Pages returned to the filesystem by vacuum since this store
    /// handle opened (cumulative, not persisted).
    pub vacuum_reclaimed_pages: u64,
}

impl IoSnapshot {
    /// Total pages transferred in either direction — the paper's
    /// "cumulative block I/O" (Fig. 11).
    pub fn total_blocks(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }

    /// Total wall time spent blocked on the device.
    pub fn io_time(&self) -> Duration {
        self.read_time + self.write_time
    }

    /// The fraction of `elapsed` spent blocked on I/O — the paper's "wait
    /// percentage" (Fig. 12). Clamped to `[0, 1]`.
    pub fn wait_fraction(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.io_time().as_secs_f64() / elapsed.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// Counter-wise difference (`self - earlier`), for interval plots.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            blocks_read: self.blocks_read - earlier.blocks_read,
            blocks_written: self.blocks_written - earlier.blocks_written,
            read_time: self.read_time - earlier.read_time,
            write_time: self.write_time - earlier.write_time,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            flush_failures: self.flush_failures - earlier.flush_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(3, Duration::from_millis(5));
        s.record_write(2, Duration::from_millis(7));
        s.record_read(1, Duration::from_millis(1));
        let snap = s.snapshot();
        assert_eq!(snap.blocks_read, 4);
        assert_eq!(snap.blocks_written, 2);
        assert_eq!(snap.total_blocks(), 6);
        assert_eq!(snap.io_time(), Duration::from_millis(13));
    }

    #[test]
    fn clones_share_counters() {
        let s = IoStats::new();
        let s2 = s.clone();
        s2.record_read(1, Duration::ZERO);
        assert_eq!(s.snapshot().blocks_read, 1);
    }

    #[test]
    fn wait_fraction_bounds() {
        let s = IoStats::new();
        s.record_read(1, Duration::from_secs(2));
        let snap = s.snapshot();
        assert_eq!(snap.wait_fraction(Duration::from_secs(4)), 0.5);
        assert_eq!(snap.wait_fraction(Duration::from_secs(1)), 1.0); // clamped
        assert_eq!(snap.wait_fraction(Duration::ZERO), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_read(5, Duration::from_millis(10));
        let a = s.snapshot();
        s.record_read(3, Duration::from_millis(4));
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.blocks_read, 3);
        assert_eq!(d.read_time, Duration::from_millis(4));
    }
}

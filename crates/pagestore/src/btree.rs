//! A slotted-page B+tree with variable-length keys and values.
//!
//! ## Page layouts (all pages are [`crate::PAGE_SIZE`] bytes)
//!
//! **Leaf** (`tag = 1`)
//! ```text
//! 0      1        3            5           13       16
//! [tag] [nkeys:u16] [cell_start:u16] [next_leaf:u64] [pad] [slots: u16 × nkeys] ... cells
//! cell = [flags:u8][klen:u16][vlen:u32][key][value | overflow_head:u64]
//! ```
//! Cells are allocated from the page end downward; the slot array (sorted
//! by key) grows upward. `flags & 1` means the value lives in an overflow
//! chain and the cell body holds the 8-byte head page id, with `vlen`
//! giving the total value length.
//!
//! **Interior** (`tag = 2`)
//! ```text
//! [tag] [nkeys:u16] [cell_start:u16] [leftmost_child:u64] [pad] [slots] ... cells
//! cell = [klen:u16][child:u64][key]
//! ```
//! `leftmost_child` covers keys `< key[0]`; `child[i]` covers
//! `[key[i], key[i+1])`.
//!
//! **Overflow** (`tag = 3`): `[tag][next:u64][len:u16][data...]`.
//!
//! ## Behavioural notes
//!
//! * Replacing or deleting a value abandons its overflow chain (space is
//!   leaked until the file is rebuilt). The XMorph workload is
//!   write-once/read-many, so reclamation is deliberately out of scope.
//! * Deletion removes the slot without rebalancing; underfull pages are
//!   permitted, searches and scans remain correct.
//! * Range scans materialize one leaf at a time, so a scan does not hold
//!   pool pages pinned. Mutating the tree during a scan is unsupported.

use crate::buffer::BufferPool;
use crate::error::{StoreError, StoreResult};
use crate::pager::PageId;
use crate::PAGE_SIZE;
use std::ops::Bound;

/// Maximum key length in bytes.
pub const MAX_KEY_LEN: usize = 512;

/// Default fraction of a page's usable space filled by
/// [`BTree::bulk_load`]. Below 1.0 so a lightly updated tree still
/// absorbs a few point inserts without immediate splits.
pub const DEFAULT_FILL: f64 = 0.9;

/// Values whose cell would exceed this many bytes spill to overflow pages.
const MAX_CELL: usize = 1000;

const TAG_LEAF: u8 = 1;
const TAG_INTERIOR: u8 = 2;
const TAG_OVERFLOW: u8 = 3;

const HDR: usize = 16;
const NIL: PageId = 0;

const FLAG_OVERFLOW: u8 = 1;

const OVERFLOW_HDR: usize = 11;
const OVERFLOW_DATA: usize = PAGE_SIZE - OVERFLOW_HDR;

/// Upper bound on root-to-leaf descent length. A healthy tree with
/// fanout ≥ 2 can't exceed 64 levels (that would need 2^64 entries), so
/// hitting the bound means a child pointer cycle — a torn page's stale
/// pointer aimed back up the tree — and the descent reports corruption
/// instead of looping forever.
const MAX_DEPTH: usize = 64;

// ---- little-endian helpers over raw pages ----

fn get_u16(p: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([p[off], p[off + 1]])
}

fn put_u16(p: &mut [u8], off: usize, v: u16) {
    p[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(p: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(p[off..off + 4].try_into().unwrap())
}

fn put_u32(p: &mut [u8], off: usize, v: u32) {
    p[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(p: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(p[off..off + 8].try_into().unwrap())
}

fn put_u64(p: &mut [u8], off: usize, v: u64) {
    p[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn tag(p: &[u8]) -> u8 {
    p[0]
}

fn nkeys(p: &[u8]) -> usize {
    get_u16(p, 1) as usize
}

fn set_nkeys(p: &mut [u8], n: usize) {
    put_u16(p, 1, n as u16)
}

fn cell_start(p: &[u8]) -> usize {
    get_u16(p, 3) as usize
}

fn set_cell_start(p: &mut [u8], v: usize) {
    put_u16(p, 3, v as u16)
}

fn slot(p: &[u8], i: usize) -> usize {
    get_u16(p, HDR + 2 * i) as usize
}

fn set_slot(p: &mut [u8], i: usize, off: usize) {
    put_u16(p, HDR + 2 * i, off as u16)
}

fn init_leaf(p: &mut [u8]) {
    p[..HDR].fill(0);
    p[0] = TAG_LEAF;
    set_cell_start(p, PAGE_SIZE);
}

fn init_interior(p: &mut [u8]) {
    p[..HDR].fill(0);
    p[0] = TAG_INTERIOR;
    set_cell_start(p, PAGE_SIZE);
}

fn next_leaf(p: &[u8]) -> PageId {
    get_u64(p, 5)
}

fn set_next_leaf(p: &mut [u8], id: PageId) {
    put_u64(p, 5, id)
}

fn leftmost_child(p: &[u8]) -> PageId {
    get_u64(p, 5)
}

fn set_leftmost_child(p: &mut [u8], id: PageId) {
    put_u64(p, 5, id)
}

// ---- leaf cells ----

/// Parsed view of a leaf cell.
struct LeafCell {
    key_start: usize,
    klen: usize,
    vlen: usize,
    overflow: bool,
}

fn leaf_cell(p: &[u8], off: usize) -> LeafCell {
    let flags = p[off];
    let klen = get_u16(p, off + 1) as usize;
    let vlen = get_u32(p, off + 3) as usize;
    LeafCell {
        key_start: off + 7,
        klen,
        vlen,
        overflow: flags & FLAG_OVERFLOW != 0,
    }
}

fn leaf_cell_key(p: &[u8], off: usize) -> &[u8] {
    let c = leaf_cell(p, off);
    &p[c.key_start..c.key_start + c.klen]
}

/// On-page size of a leaf cell holding `klen`/`stored_vlen` bytes.
fn leaf_cell_size(klen: usize, stored_vlen: usize) -> usize {
    7 + klen + stored_vlen
}

// ---- interior cells ----

fn interior_cell_key(p: &[u8], off: usize) -> &[u8] {
    let klen = get_u16(p, off) as usize;
    &p[off + 10..off + 10 + klen]
}

fn interior_cell_child(p: &[u8], off: usize) -> PageId {
    get_u64(p, off + 2)
}

fn interior_cell_size(klen: usize) -> usize {
    10 + klen
}

/// Free bytes between the slot array and the cell area.
fn free_space(p: &[u8]) -> usize {
    cell_start(p) - (HDR + 2 * nkeys(p))
}

/// Structural validation of a raw tree page, installed into the buffer
/// pool (see [`crate::buffer::BufferPool::set_page_check`]) so it runs
/// once per device load — cache misses only, never hits. A torn write
/// can persist any 512-byte prefix of a page over arbitrary stale
/// bytes, so every offset the accessors above dereference must be
/// proven in-bounds here; with that done once, the hot-path accessors
/// stay unchecked. An all-zero header passes as "uninitialized": bulk
/// load allocates all its pages before writing them, and an eviction in
/// between legitimately round-trips a zeroed page through the device.
pub(crate) fn validate_page(p: &[u8]) -> Result<(), &'static str> {
    if p.len() != PAGE_SIZE {
        return Err("tree page has wrong length");
    }
    match tag(p) {
        0 => {
            if nkeys(p) == 0 && cell_start(p) == 0 {
                Ok(())
            } else {
                Err("untagged page with nonzero header")
            }
        }
        TAG_LEAF | TAG_INTERIOR => {
            let n = nkeys(p);
            let cs = cell_start(p);
            if cs > PAGE_SIZE || cs < HDR + 2 * n {
                return Err("cell area overlaps slot array");
            }
            let is_leaf = tag(p) == TAG_LEAF;
            for i in 0..n {
                let off = slot(p, i);
                if off < cs {
                    return Err("slot points outside the cell area");
                }
                let end = if is_leaf {
                    if off + 7 > PAGE_SIZE {
                        return Err("leaf cell header out of bounds");
                    }
                    let c = leaf_cell(p, off);
                    let stored = if c.overflow { 8 } else { c.vlen };
                    off + leaf_cell_size(c.klen, stored)
                } else {
                    if off + 10 > PAGE_SIZE {
                        return Err("interior cell header out of bounds");
                    }
                    off + interior_cell_size(get_u16(p, off) as usize)
                };
                if end > PAGE_SIZE {
                    return Err("cell extends past the page");
                }
            }
            Ok(())
        }
        TAG_OVERFLOW => {
            if get_u16(p, 9) as usize > OVERFLOW_DATA {
                return Err("overflow chunk longer than a page");
            }
            Ok(())
        }
        _ => Err("unknown page tag"),
    }
}

/// Binary search the slot array. `Ok(i)` = exact match at slot `i`;
/// `Err(i)` = the key would sort at slot `i`.
fn search_slots(p: &[u8], key: &[u8], get_key: fn(&[u8], usize) -> &[u8]) -> Result<usize, usize> {
    let n = nkeys(p);
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let k = get_key(p, slot(p, mid));
        match k.cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// A B+tree rooted at a page, operating through a buffer pool. The root
/// page id may change on splits; [`BTree::root`] reports the current one.
#[derive(Debug)]
pub struct BTree<'a> {
    pool: &'a BufferPool,
    root: PageId,
}

/// Result of a recursive insert: `Some((separator, new_right_page))` when
/// the child split.
type SplitInfo = Option<(Vec<u8>, PageId)>;

impl<'a> BTree<'a> {
    /// Create an empty tree (allocates one leaf page).
    pub fn create(pool: &'a BufferPool) -> StoreResult<Self> {
        let root = pool.allocate()?;
        pool.write_with(root, init_leaf)?;
        Ok(BTree { pool, root })
    }

    /// Open an existing tree at `root`.
    pub fn open(pool: &'a BufferPool, root: PageId) -> Self {
        BTree { pool, root }
    }

    /// Build a tree bottom-up from key-sorted `(key, value)` pairs: one
    /// sequential pass packs leaf pages to `fill_factor` of their usable
    /// space (left to right, sibling-chained), stacking interior levels
    /// over the leaves' fence keys as it goes until a single root
    /// remains. Loading n entries costs O(n) page writes with zero
    /// splits, versus n root-to-leaf descents (with ~n/fanout splits)
    /// for repeated [`BTree::insert`] — and the leaves come out
    /// clustered in key order, so later range scans walk sequentially
    /// allocated pages.
    ///
    /// The build is **streaming**: each leaf is written the moment the
    /// next entry no longer fits it (its successor's page id is
    /// allocated first, so the sibling chain links forward), and each
    /// interior node the moment its child set is complete. Peak memory
    /// is one open node per tree level — the pairs iterator can
    /// therefore be an out-of-core merge producing far more entries
    /// than fit in memory.
    ///
    /// Keys must be strictly increasing (duplicates included) or the
    /// load aborts with [`StoreError::Corrupt`]. `fill_factor` is
    /// clamped to `[0.5, 1.0]`; see [`DEFAULT_FILL`].
    pub fn bulk_load<I>(pool: &'a BufferPool, pairs: I, fill_factor: f64) -> StoreResult<Self>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let budget = (((PAGE_SIZE - HDR) as f64) * fill_factor.clamp(0.5, 1.0)) as usize;
        // One open node per interior level; `levels[0]` parents the
        // leaves. A node buffers its leftmost child and routing cells
        // until the next child no longer fits, then lands on a fresh
        // page in one copy (interior pages carry no sibling pointer, so
        // they can be written as soon as they are full).
        struct Node {
            first: Vec<u8>,
            leftmost: PageId,
            cells: Vec<Vec<u8>>,
            used: usize,
        }
        fn push_child(
            pool: &BufferPool,
            levels: &mut Vec<Option<Node>>,
            budget: usize,
            depth: usize,
            sep: Vec<u8>,
            child: PageId,
        ) -> StoreResult<()> {
            if levels.len() == depth {
                levels.push(None);
            }
            let size = interior_cell_size(sep.len()) + 2;
            match &mut levels[depth] {
                open @ None => {
                    *open = Some(Node {
                        first: sep,
                        leftmost: child,
                        cells: Vec::new(),
                        used: 0,
                    });
                }
                Some(node) if node.used + size <= budget => {
                    let mut cell = Vec::with_capacity(interior_cell_size(sep.len()));
                    cell.extend_from_slice(&(sep.len() as u16).to_le_bytes());
                    cell.extend_from_slice(&child.to_le_bytes());
                    cell.extend_from_slice(&sep);
                    node.used += size;
                    node.cells.push(cell);
                }
                Some(_) => {
                    let node = levels[depth].take().expect("open node");
                    let page = pool.allocate()?;
                    pool.write_with(page, |p| {
                        init_interior(p);
                        set_leftmost_child(p, node.leftmost);
                        rebuild_interior(p, &node.cells);
                    })?;
                    push_child(pool, levels, budget, depth + 1, node.first, page)?;
                    levels[depth] = Some(Node {
                        first: sep,
                        leftmost: child,
                        cells: Vec::new(),
                        used: 0,
                    });
                }
            }
            Ok(())
        }
        // The open leaf: raw cells serialized into one flat buffer
        // (plus per-cell sizes) so the loop allocates per leaf, not per
        // entry, and each leaf lands on its page as a single copy.
        struct LeafRun {
            first: Vec<u8>,
            flat: Vec<u8>,
            sizes: Vec<u16>,
        }
        let mut levels: Vec<Option<Node>> = Vec::new();
        let mut cur = LeafRun {
            first: Vec::new(),
            flat: Vec::new(),
            sizes: Vec::new(),
        };
        // Page reserved for `cur` by the previous leaf's sibling link.
        let mut cur_page: Option<PageId> = None;
        let mut last_key: Option<Vec<u8>> = None;
        for (key, value) in pairs {
            if key.len() > MAX_KEY_LEN {
                return Err(StoreError::KeyTooLarge(key.len()));
            }
            if let Some(prev) = &last_key {
                if prev.as_slice() >= key.as_slice() {
                    return Err(StoreError::Corrupt("bulk_load input not strictly sorted"));
                }
            }
            let vlen = value.len();
            let (stored, flags) = if leaf_cell_size(key.len(), vlen) > MAX_CELL {
                let head = write_overflow(pool, &value)?;
                (head.to_le_bytes().to_vec(), FLAG_OVERFLOW)
            } else {
                (value, 0u8)
            };
            let size = leaf_cell_size(key.len(), stored.len());
            if !cur.sizes.is_empty() && cur.flat.len() + size + 2 * (cur.sizes.len() + 1) > budget {
                // This entry opens the next leaf, so the full one can be
                // written now, sibling-chained to its successor's
                // freshly allocated page.
                let page = match cur_page.take() {
                    Some(p) => p,
                    None => pool.allocate()?,
                };
                let next = pool.allocate()?;
                let run = std::mem::replace(
                    &mut cur,
                    LeafRun {
                        first: Vec::new(),
                        flat: Vec::new(),
                        sizes: Vec::new(),
                    },
                );
                pool.write_with(page, |p| {
                    init_leaf(p);
                    set_next_leaf(p, next);
                    rebuild_leaf_flat(p, &run.flat, &run.sizes);
                })?;
                push_child(pool, &mut levels, budget, 0, run.first, page)?;
                cur_page = Some(next);
            }
            if cur.sizes.is_empty() {
                cur.first = key.clone();
            }
            cur.flat.push(flags);
            cur.flat
                .extend_from_slice(&(key.len() as u16).to_le_bytes());
            cur.flat.extend_from_slice(&(vlen as u32).to_le_bytes());
            cur.flat.extend_from_slice(&key);
            cur.flat.extend_from_slice(&stored);
            cur.sizes.push(size as u16);
            last_key = Some(key);
        }
        if cur.sizes.is_empty() {
            // Empty input (a flush is always followed by the entry that
            // forced it, so a non-empty stream ends with an open leaf).
            return Self::create(pool);
        }
        let page = match cur_page.take() {
            Some(p) => p,
            None => pool.allocate()?,
        };
        pool.write_with(page, |p| {
            init_leaf(p);
            set_next_leaf(p, NIL);
            rebuild_leaf_flat(p, &cur.flat, &cur.sizes);
        })?;
        push_child(pool, &mut levels, budget, 0, cur.first, page)?;
        // Fold the open nodes upward; each level's remainder becomes a
        // child of the level above, and the top of the fold is the root.
        let mut depth = 0usize;
        loop {
            let node = levels[depth].take().expect("open node per level");
            if node.cells.is_empty() && depth + 1 >= levels.len() {
                // A single child at the top: it is the root itself.
                return Ok(BTree {
                    pool,
                    root: node.leftmost,
                });
            }
            let page = pool.allocate()?;
            pool.write_with(page, |p| {
                init_interior(p);
                set_leftmost_child(p, node.leftmost);
                rebuild_interior(p, &node.cells);
            })?;
            if depth + 1 >= levels.len() {
                return Ok(BTree { pool, root: page });
            }
            push_child(pool, &mut levels, budget, depth + 1, node.first, page)?;
            depth += 1;
        }
    }

    /// Current root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Add every page reachable from this tree — interior, leaf, and
    /// overflow pages — to `out`. This is vacuum's live-page analysis:
    /// any allocated page not reported by some catalogued tree (and not
    /// part of a live segment extent) is dead. Pages already in `out`
    /// are not re-walked.
    pub fn collect_pages(&self, out: &mut std::collections::BTreeSet<PageId>) -> StoreResult<()> {
        self.collect_rec(self.root, out)
    }

    fn collect_rec(
        &self,
        page: PageId,
        out: &mut std::collections::BTreeSet<PageId>,
    ) -> StoreResult<()> {
        if page == NIL || !out.insert(page) {
            return Ok(());
        }
        enum Kids {
            Children(Vec<PageId>),
            Overflows(Vec<PageId>),
            NotATreePage,
        }
        let kids = self.pool.read_with(page, |p| match tag(p) {
            TAG_INTERIOR => {
                let mut v = Vec::with_capacity(nkeys(p) + 1);
                v.push(leftmost_child(p));
                for i in 0..nkeys(p) {
                    v.push(interior_cell_child(p, slot(p, i)));
                }
                Kids::Children(v)
            }
            TAG_LEAF => {
                let mut v = Vec::new();
                for i in 0..nkeys(p) {
                    let c = leaf_cell(p, slot(p, i));
                    if c.overflow {
                        v.push(get_u64(p, c.key_start + c.klen));
                    }
                }
                Kids::Overflows(v)
            }
            _ => Kids::NotATreePage,
        })?;
        match kids {
            Kids::NotATreePage => {
                return Err(StoreError::Corrupt("tree walk reached a non-tree page"))
            }
            Kids::Children(children) => {
                for c in children {
                    self.collect_rec(c, out)?;
                }
            }
            Kids::Overflows(heads) => {
                for head in heads {
                    let mut page = head;
                    while page != NIL && out.insert(page) {
                        page = self.pool.read_with(page, |p| {
                            if tag(p) == TAG_OVERFLOW {
                                get_u64(p, 1)
                            } else {
                                NIL
                            }
                        })?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Insert or replace. Returns `true` if the key was new.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> StoreResult<bool> {
        if key.len() > MAX_KEY_LEN {
            return Err(StoreError::KeyTooLarge(key.len()));
        }
        // Spill large values to an overflow chain first.
        let inline: Vec<u8>;
        let (stored, flags, vlen) = if leaf_cell_size(key.len(), value.len()) > MAX_CELL {
            let head = write_overflow(self.pool, value)?;
            inline = head.to_le_bytes().to_vec();
            (&inline[..], FLAG_OVERFLOW, value.len())
        } else {
            (value, 0u8, value.len())
        };
        let (was_new, split) = self.insert_rec(self.root, key, stored, flags, vlen)?;
        if let Some((sep, right)) = split {
            let old_root = self.root;
            let new_root = self.pool.allocate()?;
            self.pool.write_with(new_root, |p| {
                init_interior(p);
                set_leftmost_child(p, old_root);
            })?;
            self.interior_insert_cell(new_root, &sep, right)?;
            self.root = new_root;
        }
        Ok(was_new)
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> StoreResult<Option<Vec<u8>>> {
        let mut page = self.root;
        for _ in 0..MAX_DEPTH {
            enum Next {
                Child(PageId),
                Found(Option<Vec<u8>>, Option<(PageId, usize)>),
                NotATreePage,
            }
            let next = self.pool.read_with(page, |p| match tag(p) {
                TAG_INTERIOR => Next::Child(child_for_key(p, key)),
                TAG_LEAF => match search_slots(p, key, leaf_cell_key) {
                    Ok(i) => {
                        let off = slot(p, i);
                        let c = leaf_cell(p, off);
                        if c.overflow {
                            let head = get_u64(p, c.key_start + c.klen);
                            Next::Found(None, Some((head, c.vlen)))
                        } else {
                            let v = p[c.key_start + c.klen..c.key_start + c.klen + c.vlen].to_vec();
                            Next::Found(Some(v), None)
                        }
                    }
                    Err(_) => Next::Found(None, None),
                },
                _ => Next::NotATreePage,
            })?;
            match next {
                Next::Child(c) => page = c,
                Next::Found(v, None) => return Ok(v),
                Next::Found(_, Some((head, total))) => {
                    return Ok(Some(read_overflow(self.pool, head, total)?))
                }
                Next::NotATreePage => {
                    return Err(StoreError::Corrupt("descent reached a non-tree page"))
                }
            }
        }
        Err(StoreError::Corrupt("tree deeper than the descent bound"))
    }

    /// True if the key is present.
    pub fn contains(&self, key: &[u8]) -> StoreResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Remove a key. Returns `true` if it was present. Pages are not
    /// rebalanced (see module docs).
    pub fn delete(&mut self, key: &[u8]) -> StoreResult<bool> {
        let mut page = self.root;
        for _ in 0..MAX_DEPTH {
            enum Next {
                Child(PageId),
                Done(bool),
                NotATreePage,
            }
            let next = self.pool.write_with(page, |p| match tag(p) {
                TAG_INTERIOR => Next::Child(child_for_key(p, key)),
                TAG_LEAF => match search_slots(p, key, leaf_cell_key) {
                    Ok(i) => {
                        remove_slot(p, i);
                        Next::Done(true)
                    }
                    Err(_) => Next::Done(false),
                },
                _ => Next::NotATreePage,
            })?;
            match next {
                Next::Child(c) => page = c,
                Next::Done(found) => return Ok(found),
                Next::NotATreePage => {
                    return Err(StoreError::Corrupt("descent reached a non-tree page"))
                }
            }
        }
        Err(StoreError::Corrupt("tree deeper than the descent bound"))
    }

    /// Ordered scan of `[start, end)` style bounds over (key, value) pairs.
    pub fn range(&self, start: Bound<&[u8]>, end: Bound<Vec<u8>>) -> StoreResult<RangeIter<'a>> {
        // Find the first leaf/slot at or after `start`.
        let start_key: &[u8] = match start {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let mut page = self.root;
        let mut depth = 0usize;
        loop {
            depth += 1;
            if depth > MAX_DEPTH {
                return Err(StoreError::Corrupt("tree deeper than the descent bound"));
            }
            enum Down {
                Leaf,
                Child(PageId),
                NotATreePage,
            }
            let down = self.pool.read_with(page, |p| match tag(p) {
                TAG_INTERIOR => Down::Child(child_for_key(p, start_key)),
                TAG_LEAF => Down::Leaf,
                _ => Down::NotATreePage,
            })?;
            match down {
                Down::Leaf => break,
                Down::Child(c) => page = c,
                Down::NotATreePage => {
                    return Err(StoreError::Corrupt("descent reached a non-tree page"))
                }
            }
        }
        let mut iter = RangeIter {
            pool: self.pool,
            leaf: page,
            buffered: Vec::new(),
            pos: 0,
            end,
            error: None,
            hops: 0,
        };
        iter.fill_from_leaf()?;
        // Skip entries before the start bound.
        while let Some(k) = iter.peek_key() {
            let skip = match start {
                Bound::Included(s) => k < s,
                Bound::Excluded(s) => k <= s,
                Bound::Unbounded => false,
            };
            if !skip {
                break;
            }
            iter.pos += 1;
            if iter.pos >= iter.buffered.len() {
                iter.advance_leaf()?;
                if iter.leaf == NIL && iter.buffered.is_empty() {
                    break;
                }
            }
        }
        Ok(iter)
    }

    /// Number of entries — O(n), full scan.
    pub fn len(&self) -> StoreResult<usize> {
        let mut n = 0;
        let mut iter = self.range(Bound::Unbounded, Bound::Unbounded)?;
        while iter.next_entry()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// True when the tree holds no entries — O(1) on the first leaf.
    pub fn is_empty(&self) -> StoreResult<bool> {
        let mut iter = self.range(Bound::Unbounded, Bound::Unbounded)?;
        Ok(iter.next_entry()?.is_none())
    }

    // ---- internals ----

    fn insert_rec(
        &mut self,
        page: PageId,
        key: &[u8],
        stored: &[u8],
        flags: u8,
        vlen: usize,
    ) -> StoreResult<(bool, SplitInfo)> {
        let is_interior = self.pool.read_with(page, |p| tag(p) == TAG_INTERIOR)?;
        if is_interior {
            let child = self.pool.read_with(page, |p| child_for_key(p, key))?;
            let (was_new, split) = self.insert_rec(child, key, stored, flags, vlen)?;
            if let Some((sep, right)) = split {
                let own_split = self.interior_insert_cell(page, &sep, right)?;
                return Ok((was_new, own_split));
            }
            return Ok((was_new, None));
        }
        // Leaf insert.
        let cell_size = leaf_cell_size(key.len(), stored.len());
        let (fits, was_new) = self.pool.write_with(page, |p| {
            match search_slots(p, key, leaf_cell_key) {
                Ok(i) => {
                    // Replace: drop the old slot, then insert fresh below.
                    remove_slot(p, i);
                    if free_or_compact(p, cell_size + 2) {
                        leaf_insert_at(p, i, key, stored, flags, vlen);
                        (true, false)
                    } else {
                        (false, false)
                    }
                }
                Err(i) => {
                    if free_or_compact(p, cell_size + 2) {
                        leaf_insert_at(p, i, key, stored, flags, vlen);
                        (true, true)
                    } else {
                        (false, true)
                    }
                }
            }
        })?;
        if fits {
            return Ok((was_new, None));
        }
        // Split the leaf, then retry the insert into the proper half.
        let (sep, right) = self.split_leaf(page)?;
        let target = if key < sep.as_slice() { page } else { right };
        let ok = self.pool.write_with(target, |p| {
            let i = match search_slots(p, key, leaf_cell_key) {
                Ok(i) => {
                    remove_slot(p, i);
                    i
                }
                Err(i) => i,
            };
            if free_or_compact(p, cell_size + 2) {
                leaf_insert_at(p, i, key, stored, flags, vlen);
                true
            } else {
                false
            }
        })?;
        if !ok {
            return Err(StoreError::Corrupt("cell does not fit even after split"));
        }
        Ok((was_new, Some((sep, right))))
    }

    /// Split a full leaf; returns (separator, right page id).
    fn split_leaf(&mut self, page: PageId) -> StoreResult<(Vec<u8>, PageId)> {
        let right = self.pool.allocate()?;
        // Copy out all cells, split by half the bytes.
        let (cells, old_next) = self.pool.read_with(page, |p| {
            let mut cells: Vec<Vec<u8>> = Vec::with_capacity(nkeys(p));
            for i in 0..nkeys(p) {
                let off = slot(p, i);
                let c = leaf_cell(p, off);
                let stored = if c.overflow { 8 } else { c.vlen };
                cells.push(p[off..off + leaf_cell_size(c.klen, stored)].to_vec());
            }
            (cells, next_leaf(p))
        })?;
        let total: usize = cells.iter().map(|c| c.len() + 2).sum();
        let mut acc = 0usize;
        let mut cut = cells.len() / 2; // fallback for uniform cells
        for (i, c) in cells.iter().enumerate() {
            acc += c.len() + 2;
            if acc > total / 2 {
                cut = i + 1;
                break;
            }
        }
        cut = cut.clamp(1, cells.len() - 1);
        let sep = {
            let c = &cells[cut];
            let klen = get_u16(c, 1) as usize;
            c[7..7 + klen].to_vec()
        };
        let (left_cells, right_cells) = cells.split_at(cut);
        self.pool.write_with(page, |p| {
            init_leaf(p);
            set_next_leaf(p, right);
            rebuild_leaf(p, left_cells);
        })?;
        self.pool.write_with(right, |p| {
            init_leaf(p);
            set_next_leaf(p, old_next);
            rebuild_leaf(p, right_cells);
        })?;
        Ok((sep, right))
    }

    /// Insert a (separator, child) cell into an interior page, splitting
    /// it if necessary.
    fn interior_insert_cell(
        &mut self,
        page: PageId,
        sep: &[u8],
        child: PageId,
    ) -> StoreResult<SplitInfo> {
        let size = interior_cell_size(sep.len());
        let ok = self.pool.write_with(page, |p| {
            let i = match search_slots(p, sep, interior_cell_key) {
                Ok(i) => i,
                Err(i) => i,
            };
            if free_or_compact(p, size + 2) {
                interior_insert_at(p, i, sep, child);
                true
            } else {
                false
            }
        })?;
        if ok {
            return Ok(None);
        }
        // Split the interior page: promote the middle key.
        let right = self.pool.allocate()?;
        let cells = self.pool.read_with(page, |p| {
            let mut cells: Vec<Vec<u8>> = Vec::with_capacity(nkeys(p));
            for i in 0..nkeys(p) {
                let off = slot(p, i);
                let klen = get_u16(p, off) as usize;
                cells.push(p[off..off + interior_cell_size(klen)].to_vec());
            }
            cells
        })?;
        let mid = cells.len() / 2;
        let promoted_key = {
            let c = &cells[mid];
            let klen = get_u16(c, 0) as usize;
            c[10..10 + klen].to_vec()
        };
        let promoted_child = get_u64(&cells[mid], 2);
        let left_cells = &cells[..mid];
        let right_cells = &cells[mid + 1..];
        self.pool.write_with(page, |p| {
            let lm = leftmost_child(p);
            init_interior(p);
            set_leftmost_child(p, lm);
            rebuild_interior(p, left_cells);
        })?;
        self.pool.write_with(right, |p| {
            init_interior(p);
            set_leftmost_child(p, promoted_child);
            rebuild_interior(p, right_cells);
        })?;
        // Now insert the pending cell into the proper half.
        let target = if sep < promoted_key.as_slice() {
            page
        } else {
            right
        };
        let ok = self.pool.write_with(target, |p| {
            let i = match search_slots(p, sep, interior_cell_key) {
                Ok(i) => i,
                Err(i) => i,
            };
            if free_or_compact(p, size + 2) {
                interior_insert_at(p, i, sep, child);
                true
            } else {
                false
            }
        })?;
        if !ok {
            return Err(StoreError::Corrupt(
                "interior cell does not fit after split",
            ));
        }
        Ok(Some((promoted_key, right)))
    }
}

/// Rewrite every page-id reference in a raw tree page through `map`
/// (old id → new id): an interior page's leftmost child and routing
/// cells, a leaf's sibling link and overflow heads, an overflow page's
/// chain link. Ids absent from the map (including `NIL`) are untouched.
/// Returns `true` if anything changed. This is vacuum's relocation
/// fix-up — pages move on the device, then each survivor gets its
/// pointers re-aimed.
pub(crate) fn rewrite_page_pointers(
    p: &mut [u8],
    map: &std::collections::HashMap<PageId, PageId>,
) -> bool {
    let mut offs: Vec<usize> = Vec::new();
    match tag(p) {
        TAG_LEAF => {
            offs.push(5); // next_leaf
            for i in 0..nkeys(p) {
                let c = leaf_cell(p, slot(p, i));
                if c.overflow {
                    offs.push(c.key_start + c.klen);
                }
            }
        }
        TAG_INTERIOR => {
            offs.push(5); // leftmost_child
            for i in 0..nkeys(p) {
                offs.push(slot(p, i) + 2);
            }
        }
        TAG_OVERFLOW => offs.push(1),
        _ => {}
    }
    let mut changed = false;
    for off in offs {
        let old = get_u64(p, off);
        if old == NIL {
            continue;
        }
        if let Some(&new) = map.get(&old) {
            if new != old {
                put_u64(p, off, new);
                changed = true;
            }
        }
    }
    changed
}

/// Write `value` into a chain of overflow pages; returns the head.
fn write_overflow(pool: &BufferPool, value: &[u8]) -> StoreResult<PageId> {
    let mut chunks: Vec<&[u8]> = value.chunks(OVERFLOW_DATA).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let pages: Vec<PageId> = (0..chunks.len())
        .map(|_| pool.allocate())
        .collect::<StoreResult<_>>()?;
    for (i, chunk) in chunks.iter().enumerate() {
        let next = pages.get(i + 1).copied().unwrap_or(NIL);
        pool.write_with(pages[i], |p| {
            p[0] = TAG_OVERFLOW;
            put_u64(p, 1, next);
            put_u16(p, 9, chunk.len() as u16);
            p[OVERFLOW_HDR..OVERFLOW_HDR + chunk.len()].copy_from_slice(chunk);
        })?;
    }
    Ok(pages[0])
}

fn read_overflow(pool: &BufferPool, head: PageId, total: usize) -> StoreResult<Vec<u8>> {
    let mut out = Vec::with_capacity(total);
    let mut page = head;
    while page != NIL && out.len() < total {
        let (next, chunk) = pool.read_with(page, |p| {
            if tag(p) != TAG_OVERFLOW {
                return (NIL, None);
            }
            let len = get_u16(p, 9) as usize;
            (
                get_u64(p, 1),
                Some(p[OVERFLOW_HDR..OVERFLOW_HDR + len].to_vec()),
            )
        })?;
        match chunk {
            Some(c) => out.extend_from_slice(&c),
            None => return Err(StoreError::Corrupt("broken overflow chain")),
        }
        page = next;
    }
    if out.len() != total {
        return Err(StoreError::Corrupt(
            "overflow chain shorter than recorded length",
        ));
    }
    Ok(out)
}

/// Interior routing: child page covering `key`.
fn child_for_key(p: &[u8], key: &[u8]) -> PageId {
    match search_slots(p, key, interior_cell_key) {
        Ok(i) => interior_cell_child(p, slot(p, i)),
        Err(0) => leftmost_child(p),
        Err(i) => interior_cell_child(p, slot(p, i - 1)),
    }
}

/// Remove slot `i` (cell bytes become garbage until compaction).
fn remove_slot(p: &mut [u8], i: usize) {
    let n = nkeys(p);
    for j in i..n - 1 {
        let v = slot(p, j + 1);
        set_slot(p, j, v);
    }
    set_nkeys(p, n - 1);
}

/// Ensure at least `needed` free bytes, compacting the page if garbage
/// would make room. Returns false if the cell simply cannot fit.
fn free_or_compact(p: &mut [u8], needed: usize) -> bool {
    if free_space(p) >= needed {
        return true;
    }
    // Compute live bytes; compact if that would help.
    let n = nkeys(p);
    let is_leaf = tag(p) == TAG_LEAF;
    let mut cells: Vec<Vec<u8>> = Vec::with_capacity(n);
    let mut live = 0usize;
    for i in 0..n {
        let off = slot(p, i);
        let size = if is_leaf {
            let c = leaf_cell(p, off);
            let stored = if c.overflow { 8 } else { c.vlen };
            leaf_cell_size(c.klen, stored)
        } else {
            let klen = get_u16(p, off) as usize;
            interior_cell_size(klen)
        };
        live += size + 2;
        cells.push(p[off..off + size].to_vec());
    }
    if PAGE_SIZE - HDR - live < needed {
        return false;
    }
    if is_leaf {
        let nl = next_leaf(p);
        init_leaf(p);
        set_next_leaf(p, nl);
        rebuild_leaf(p, &cells);
    } else {
        let lm = leftmost_child(p);
        init_interior(p);
        set_leftmost_child(p, lm);
        rebuild_interior(p, &cells);
    }
    free_space(p) >= needed
}

/// Append a flat run of pre-serialized leaf cells (already sorted)
/// into a freshly initialized leaf: one block copy, then slot fixups.
/// Cells sit low-to-high in slot order — nothing in the page format
/// requires the descending layout the incremental path produces.
fn rebuild_leaf_flat(p: &mut [u8], flat: &[u8], sizes: &[u16]) {
    let base = cell_start(p) - flat.len();
    p[base..base + flat.len()].copy_from_slice(flat);
    let mut off = base;
    for (i, &sz) in sizes.iter().enumerate() {
        set_slot(p, i, off);
        off += sz as usize;
    }
    set_cell_start(p, base);
    set_nkeys(p, sizes.len());
}

/// Append raw leaf cells (already sorted) into a freshly initialized leaf.
fn rebuild_leaf(p: &mut [u8], cells: &[Vec<u8>]) {
    for (i, cell) in cells.iter().enumerate() {
        let start = cell_start(p) - cell.len();
        p[start..start + cell.len()].copy_from_slice(cell);
        set_cell_start(p, start);
        set_slot(p, i, start);
    }
    set_nkeys(p, cells.len());
}

fn rebuild_interior(p: &mut [u8], cells: &[Vec<u8>]) {
    for (i, cell) in cells.iter().enumerate() {
        let start = cell_start(p) - cell.len();
        p[start..start + cell.len()].copy_from_slice(cell);
        set_cell_start(p, start);
        set_slot(p, i, start);
    }
    set_nkeys(p, cells.len());
}

/// Insert a leaf cell at slot `i`. Caller must have ensured space.
fn leaf_insert_at(p: &mut [u8], i: usize, key: &[u8], stored: &[u8], flags: u8, vlen: usize) {
    let size = leaf_cell_size(key.len(), stored.len());
    let start = cell_start(p) - size;
    p[start] = flags;
    put_u16(p, start + 1, key.len() as u16);
    put_u32(p, start + 3, vlen as u32);
    p[start + 7..start + 7 + key.len()].copy_from_slice(key);
    p[start + 7 + key.len()..start + size].copy_from_slice(stored);
    set_cell_start(p, start);
    let n = nkeys(p);
    for j in (i..n).rev() {
        let v = slot(p, j);
        set_slot(p, j + 1, v);
    }
    set_slot(p, i, start);
    set_nkeys(p, n + 1);
}

fn interior_insert_at(p: &mut [u8], i: usize, key: &[u8], child: PageId) {
    let size = interior_cell_size(key.len());
    let start = cell_start(p) - size;
    put_u16(p, start, key.len() as u16);
    put_u64(p, start + 2, child);
    p[start + 10..start + 10 + key.len()].copy_from_slice(key);
    set_cell_start(p, start);
    let n = nkeys(p);
    for j in (i..n).rev() {
        let v = slot(p, j);
        set_slot(p, j + 1, v);
    }
    set_slot(p, i, start);
    set_nkeys(p, n + 1);
}

/// An ordered iterator over key/value pairs. Buffered one leaf at a time.
pub struct RangeIter<'a> {
    pool: &'a BufferPool,
    leaf: PageId,
    buffered: Vec<(Vec<u8>, StoredValue)>,
    pos: usize,
    end: Bound<Vec<u8>>,
    error: Option<StoreError>,
    /// Sibling links followed so far; more hops than allocated pages
    /// means the chain loops (a torn page's stale `next_leaf`).
    hops: u64,
}

enum StoredValue {
    Inline(Vec<u8>),
    Overflow { head: PageId, total: usize },
}

impl<'a> RangeIter<'a> {
    /// An iterator that yields only `err`: the error-path stand-in for a
    /// scan whose setup failed, so infallible signatures like
    /// [`crate::store::Tree::range`] can hand back the error through
    /// [`RangeIter::next_entry`] / [`RangeIter::error`] instead of
    /// panicking.
    pub(crate) fn failed(pool: &'a BufferPool, err: StoreError) -> RangeIter<'a> {
        RangeIter {
            pool,
            leaf: NIL,
            buffered: Vec::new(),
            pos: 0,
            end: Bound::Unbounded,
            error: Some(err),
            hops: 0,
        }
    }

    fn peek_key(&self) -> Option<&[u8]> {
        self.buffered.get(self.pos).map(|(k, _)| k.as_slice())
    }

    /// Buffer the current leaf's cells (keys + stored value descriptors).
    fn fill_from_leaf(&mut self) -> StoreResult<()> {
        self.buffered.clear();
        self.pos = 0;
        if self.leaf == NIL {
            return Ok(());
        }
        let entries = self.pool.read_with(self.leaf, |p| {
            if tag(p) != TAG_LEAF {
                return None;
            }
            let mut out = Vec::with_capacity(nkeys(p));
            for i in 0..nkeys(p) {
                let off = slot(p, i);
                let c = leaf_cell(p, off);
                let key = p[c.key_start..c.key_start + c.klen].to_vec();
                let val = if c.overflow {
                    StoredValue::Overflow {
                        head: get_u64(p, c.key_start + c.klen),
                        total: c.vlen,
                    }
                } else {
                    StoredValue::Inline(
                        p[c.key_start + c.klen..c.key_start + c.klen + c.vlen].to_vec(),
                    )
                };
                out.push((key, val));
            }
            Some(out)
        })?;
        match entries {
            Some(entries) => {
                self.buffered = entries;
                Ok(())
            }
            None => Err(StoreError::Corrupt("leaf chain reached a non-leaf page")),
        }
    }

    fn advance_leaf(&mut self) -> StoreResult<()> {
        if self.leaf == NIL {
            self.buffered.clear();
            return Ok(());
        }
        self.hop()?;
        let next = self.pool.read_with(self.leaf, next_leaf)?;
        self.leaf = next;
        self.fill_from_leaf()?;
        // Skip empty leaves (possible after heavy deletion).
        while self.leaf != NIL && self.buffered.is_empty() {
            self.hop()?;
            let next = self.pool.read_with(self.leaf, next_leaf)?;
            self.leaf = next;
            self.fill_from_leaf()?;
        }
        Ok(())
    }

    fn hop(&mut self) -> StoreResult<()> {
        self.hops += 1;
        if self.hops > self.pool.page_count() {
            return Err(StoreError::Corrupt("leaf sibling chain does not terminate"));
        }
        Ok(())
    }

    /// Pull the next entry, resolving overflow values.
    pub fn next_entry(&mut self) -> StoreResult<Option<(Vec<u8>, Vec<u8>)>> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        loop {
            if self.pos >= self.buffered.len() {
                if self.leaf == NIL {
                    return Ok(None);
                }
                self.advance_leaf()?;
                if self.buffered.is_empty() {
                    return Ok(None);
                }
                continue;
            }
            let (key, val) = &self.buffered[self.pos];
            let past_end = match &self.end {
                Bound::Included(e) => key.as_slice() > e.as_slice(),
                Bound::Excluded(e) => key.as_slice() >= e.as_slice(),
                Bound::Unbounded => false,
            };
            if past_end {
                return Ok(None);
            }
            let key = key.clone();
            let value = match val {
                StoredValue::Inline(v) => v.clone(),
                StoredValue::Overflow { head, total } => read_overflow(self.pool, *head, *total)?,
            };
            self.pos += 1;
            return Ok(Some((key, value)));
        }
    }

    /// Pull the next entry's key only, leaving the value untouched (no
    /// value clone, overflow chains never followed). Key-merge scans —
    /// the co-occurrence pass behind `typeDistance` — compare keys
    /// alone, so this skips one value allocation per step.
    pub fn next_key(&mut self) -> StoreResult<Option<Vec<u8>>> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        loop {
            if self.pos >= self.buffered.len() {
                if self.leaf == NIL {
                    return Ok(None);
                }
                self.advance_leaf()?;
                if self.buffered.is_empty() {
                    return Ok(None);
                }
                continue;
            }
            let (key, _) = &self.buffered[self.pos];
            let past_end = match &self.end {
                Bound::Included(e) => key.as_slice() > e.as_slice(),
                Bound::Excluded(e) => key.as_slice() >= e.as_slice(),
                Bound::Unbounded => false,
            };
            if past_end {
                return Ok(None);
            }
            let key = key.clone();
            self.pos += 1;
            return Ok(Some(key));
        }
    }
}

impl<'a> Iterator for RangeIter<'a> {
    type Item = (Vec<u8>, Vec<u8>);

    /// Iterator sugar over [`RangeIter::next_entry`]; I/O errors stop the
    /// iteration and are stashed in the iterator (see [`RangeIter::error`]).
    fn next(&mut self) -> Option<Self::Item> {
        match self.next_entry() {
            Ok(e) => e,
            Err(err) => {
                self.error = Some(err);
                None
            }
        }
    }
}

impl<'a> RangeIter<'a> {
    /// An I/O error encountered by the `Iterator` impl, if any.
    pub fn error(&self) -> Option<&StoreError> {
        self.error.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use crate::stats::IoStats;
    use crate::storage::MemStorage;

    fn pool() -> BufferPool {
        let pager = Pager::new(Box::new(MemStorage::new()), IoStats::new()).unwrap();
        BufferPool::new(pager, 64)
    }

    #[test]
    fn insert_get_single() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        assert!(t.insert(b"k", b"v").unwrap());
        assert_eq!(t.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(t.get(b"missing").unwrap(), None);
    }

    #[test]
    fn replace_value() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        assert!(t.insert(b"k", b"v1").unwrap());
        assert!(!t.insert(b"k", b"v2").unwrap());
        assert_eq!(t.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn many_inserts_split_and_survive() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        let n = 5000u32;
        for i in 0..n {
            let k = format!("key-{:08}", i * 7919 % n);
            let v = format!("value-{i}");
            t.insert(k.as_bytes(), v.as_bytes()).unwrap();
        }
        assert_ne!(t.root(), 1, "root must have split");
        for i in 0..n {
            let k = format!("key-{:08}", i);
            assert!(t.get(k.as_bytes()).unwrap().is_some(), "missing {k}");
        }
        assert_eq!(t.len().unwrap(), n as usize);
    }

    #[test]
    fn range_scan_is_sorted_and_complete() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        for i in (0..1000u32).rev() {
            t.insert(format!("{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let keys: Vec<Vec<u8>> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys.len(), 1000);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn bounded_range_scan() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        for i in 0..100u32 {
            t.insert(format!("{i:03}").as_bytes(), b"x").unwrap();
        }
        let got: Vec<String> = t
            .range(
                Bound::Included(b"010".as_slice()),
                Bound::Excluded(b"015".to_vec()),
            )
            .unwrap()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(got, vec!["010", "011", "012", "013", "014"]);
    }

    #[test]
    fn prefix_style_scan() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        t.insert(b"a/1", b"").unwrap();
        t.insert(b"a/2", b"").unwrap();
        t.insert(b"b/1", b"").unwrap();
        let got: Vec<Vec<u8>> = t
            .range(
                Bound::Included(b"a/".as_slice()),
                Bound::Excluded(b"a0".to_vec()),
            )
            .unwrap()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(got, vec![b"a/1".to_vec(), b"a/2".to_vec()]);
    }

    #[test]
    fn large_values_use_overflow() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        let big = vec![7u8; 100_000];
        t.insert(b"big", &big).unwrap();
        t.insert(b"small", b"s").unwrap();
        assert_eq!(t.get(b"big").unwrap().unwrap(), big);
        // Overflow values also come back through scans.
        let all: Vec<(Vec<u8>, Vec<u8>)> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect();
        assert_eq!(all[0].1.len(), 100_000);
        assert_eq!(all[1].1, b"s");
    }

    #[test]
    fn empty_value_ok() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        t.insert(b"k", b"").unwrap();
        assert_eq!(t.get(b"k").unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn delete_removes_and_scan_skips() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        for i in 0..50u32 {
            t.insert(format!("{i:02}").as_bytes(), b"x").unwrap();
        }
        assert!(t.delete(b"25").unwrap());
        assert!(!t.delete(b"25").unwrap());
        assert_eq!(t.get(b"25").unwrap(), None);
        assert_eq!(t.len().unwrap(), 49);
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        for i in 0..500u32 {
            t.insert(&i.to_be_bytes(), b"v").unwrap();
        }
        for i in 0..500u32 {
            assert!(t.delete(&i.to_be_bytes()).unwrap());
        }
        assert!(t.is_empty().unwrap());
        for i in 0..500u32 {
            t.insert(&i.to_be_bytes(), b"v2").unwrap();
        }
        assert_eq!(t.len().unwrap(), 500);
        assert_eq!(
            t.get(&42u32.to_be_bytes()).unwrap().as_deref(),
            Some(&b"v2"[..])
        );
    }

    #[test]
    fn key_too_large_rejected() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        let k = vec![1u8; MAX_KEY_LEN + 1];
        assert!(matches!(
            t.insert(&k, b"v"),
            Err(StoreError::KeyTooLarge(_))
        ));
    }

    #[test]
    fn max_len_key_accepted() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        let k = vec![1u8; MAX_KEY_LEN];
        t.insert(&k, b"v").unwrap();
        assert!(t.contains(&k).unwrap());
    }

    #[test]
    fn interleaved_sizes_force_varied_splits() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        for i in 0..800u32 {
            let k = format!("k{:06}", i);
            let v = vec![b'v'; (i as usize % 500) + 1];
            t.insert(k.as_bytes(), &v).unwrap();
        }
        for i in 0..800u32 {
            let k = format!("k{:06}", i);
            let v = t.get(k.as_bytes()).unwrap().unwrap();
            assert_eq!(v.len(), (i as usize % 500) + 1);
        }
    }

    #[test]
    fn sequential_and_reverse_insert_orders() {
        for reverse in [false, true] {
            let pool = pool();
            let mut t = BTree::create(&pool).unwrap();
            let mut ids: Vec<u32> = (0..2000).collect();
            if reverse {
                ids.reverse();
            }
            for i in ids {
                t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
            }
            let keys: Vec<Vec<u8>> = t
                .range(Bound::Unbounded, Bound::Unbounded)
                .unwrap()
                .map(|(k, _)| k)
                .collect();
            assert_eq!(keys.len(), 2000);
            assert!(keys.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

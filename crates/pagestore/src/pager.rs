//! Page allocation and transfer over a [`Storage`] device.
//!
//! Page 0 is the meta page: magic, version, page count, the table
//! catalog (name → root page for each named tree), and the free-extent
//! list. All other pages belong to B+trees, overflow chains, or segment
//! extents.
//!
//! ## Free-extent list
//!
//! Deleting (or replacing) a segment returns its extent to a persistent
//! free list so the allocator can hand the pages out again instead of
//! growing the file forever. The list lives in the meta page's spare
//! space after the catalog region:
//!
//! ```text
//! offset  size  field
//!     18     2  free-extent count (u16; absent in old files ⇒ zero)
//!   3160    16  entry 0: first_page u64 LE, pages u64 LE
//!   3176    16  entry 1 …  (up to MAX_FREE_EXTENTS entries)
//! ```
//!
//! Entries are kept sorted by first page and adjacent extents coalesce.
//! When the list would overflow its fixed region the smallest extent is
//! dropped — a bounded leak that [`crate::Store::vacuum`] recovers later
//! from live-page analysis, which never trusts this list.

use crate::error::{StoreError, StoreResult};
use crate::stats::IoStats;
use crate::storage::Storage;
use crate::wal::{self, WalLayout, DEFAULT_WAL_RECORD_PAGES, RECORD_HEADER_LEN, WAL_HEADER_PAGE};
use crate::PAGE_SIZE;
use std::time::Instant;

/// Identifier of a page: its index within the database file.
pub type PageId = u64;

/// The meta page id.
pub const META_PAGE: PageId = 0;

const MAGIC: &[u8; 8] = b"XMPHSTO1";

/// Maximum number of named trees in the catalog.
pub const MAX_TREES: usize = 64;

/// Maximum tree name length in bytes.
pub const MAX_NAME_LEN: usize = 40;

/// Meta-page offset of the free-extent count.
const FREE_COUNT_OFF: usize = 18;

/// Meta-page offset of the first free-extent entry (right after the
/// fixed catalog region).
const FREE_LIST_OFF: usize = 24 + MAX_TREES * (9 + MAX_NAME_LEN);

/// Bytes per free-extent entry: first page + page count.
const FREE_ENTRY_LEN: usize = 16;

/// Maximum persisted free extents (the meta page's spare tail).
pub const MAX_FREE_EXTENTS: usize = (PAGE_SIZE - FREE_LIST_OFF) / FREE_ENTRY_LEN;

/// A contiguous run of unallocated pages: `(first_page, pages)`.
pub type FreeExtent = (PageId, u64);

/// Byte offset of a page, refusing ids whose offset would overflow —
/// the shape a torn meta page or catalog entry takes when a crash
/// leaves a huge page id behind (a plain multiply wraps in release
/// builds and would silently alias a low offset).
fn page_offset(id: PageId) -> StoreResult<u64> {
    id.checked_mul(PAGE_SIZE as u64)
        .ok_or(StoreError::Corrupt("page id overflows device offset"))
}

/// A catalog entry: a named tree and its current root page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Tree name (UTF-8, at most [`MAX_NAME_LEN`] bytes).
    pub name: String,
    /// Root page of the tree's B+tree.
    pub root: PageId,
}

/// Runtime cursor into the WAL record region.
#[derive(Debug)]
struct WalState {
    layout: WalLayout,
    /// Byte offset of the next append.
    off: u64,
    /// Epoch stamped on every record of the current run.
    epoch: u64,
    /// Next LSN to stamp.
    lsn: u64,
}

/// Pager: page-granular reads and writes plus allocation, with I/O
/// accounting.
pub struct Pager {
    storage: Box<dyn Storage>,
    stats: IoStats,
    page_count: u64,
    catalog: Vec<CatalogEntry>,
    /// Free page extents, sorted by first page, adjacent runs coalesced.
    free: Vec<FreeExtent>,
    /// Cumulative pages reclaimed by vacuum over this pager's lifetime.
    vacuum_reclaimed: u64,
    /// The write-ahead log, when this device carries one (persistent
    /// stores created with a WAL extent; `None` for memory stores and
    /// pre-WAL files).
    wal: Option<WalState>,
    /// True while a transaction is open (single writer). Suppresses
    /// meta-page home writes and routes frees/allocations into the
    /// transaction-scoped lists below.
    in_txn: bool,
    /// Meta changed while suppressed; persisted at the next group sync
    /// (WAL stores) or commit (no-WAL stores).
    meta_dirty: bool,
    /// Extents handed out during the open transaction — returned to the
    /// free list on rollback.
    txn_allocs: Vec<FreeExtent>,
    /// Catalog roots changed by the open transaction: `(name, previous
    /// root)`, `None` when the entry didn't exist — restored on rollback.
    txn_roots: Vec<(String, Option<PageId>)>,
    /// Extents freed during the open transaction — quarantined so the
    /// allocator can't recycle them while the freeing operation can
    /// still roll back.
    txn_free: Vec<FreeExtent>,
    /// Extents freed while the WAL holds un-checkpointed batches. Merged
    /// into `free` only at checkpoint: a replayed batch may rewrite any
    /// page it imaged, so pages freed (and directly overwritten) before
    /// the log is truncated would be resurrected with stale bytes.
    wal_free: Vec<FreeExtent>,
    /// Pages committed but not yet logged+synced (deduplicated; their
    /// frames are pinned in the buffer pool until the group sync).
    pending_pages: Vec<PageId>,
    /// Commits since the last group sync.
    unsynced_commits: u64,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("page_count", &self.page_count)
            .field("catalog", &self.catalog)
            .field("free", &self.free)
            .finish()
    }
}

impl Pager {
    /// Wrap a device with the default WAL size. If the device is empty a
    /// fresh meta page (and, on persistent devices, a WAL extent) is
    /// written; otherwise any WAL is replayed and the existing meta page
    /// is validated and loaded.
    pub fn new(storage: Box<dyn Storage>, stats: IoStats) -> StoreResult<Self> {
        Pager::with_wal_pages(storage, stats, DEFAULT_WAL_RECORD_PAGES)
    }

    /// Like [`Pager::new`] with an explicit WAL record-region size for
    /// *fresh* devices (`0` disables the WAL entirely). Reopened devices
    /// use the size recorded in their WAL header, ignoring this value.
    pub fn with_wal_pages(
        mut storage: Box<dyn Storage>,
        stats: IoStats,
        wal_record_pages: u64,
    ) -> StoreResult<Self> {
        if storage.is_empty()? {
            let wal = if storage.is_persistent() && wal_record_pages > 0 {
                Some(WalState {
                    layout: WalLayout {
                        record_pages: wal_record_pages,
                    },
                    off: 0,
                    epoch: 1,
                    lsn: 0,
                })
            } else {
                None
            };
            let page_count = wal.as_ref().map_or(1, |w| w.layout.first_data_page());
            let mut pager = Pager {
                storage,
                stats,
                page_count,
                catalog: Vec::new(),
                free: Vec::new(),
                vacuum_reclaimed: 0,
                wal,
                in_txn: false,
                meta_dirty: false,
                txn_allocs: Vec::new(),
                txn_roots: Vec::new(),
                txn_free: Vec::new(),
                wal_free: Vec::new(),
                pending_pages: Vec::new(),
                unsynced_commits: 0,
            };
            if let Some(w) = &mut pager.wal {
                w.off = w.layout.first_record_off();
                let header = wal::encode_header_page(w.layout.record_pages);
                let start = Instant::now();
                pager
                    .storage
                    .write_at(WAL_HEADER_PAGE * PAGE_SIZE as u64, &header)?;
                pager.stats.record_write(1, start.elapsed());
            }
            pager.write_meta()?;
            if pager.wal.is_some() {
                // Pin the header before any data lands: replay trusts it
                // to find the record region and the data-page boundary.
                pager.storage.sync()?;
            }
            Ok(pager)
        } else {
            // Probe for a WAL header *before* touching the meta page: a
            // crash can tear the meta home write that a committed batch
            // covers, and replay is what restores it.
            let mut wal_state = None;
            {
                let mut hdr = vec![0u8; PAGE_SIZE];
                storage.read_at(WAL_HEADER_PAGE * PAGE_SIZE as u64, &mut hdr)?;
                if let Some(record_pages) = wal::decode_header_page(&hdr) {
                    let layout = WalLayout { record_pages };
                    let outcome = wal::replay(storage.as_mut(), &layout)?;
                    if outcome.head_dirty {
                        // Start a fresh run: zero the head so stale
                        // records can never chain onto the next epoch.
                        storage.write_at(layout.first_record_off(), &[0u8; RECORD_HEADER_LEN])?;
                        storage.sync()?;
                    }
                    wal_state = Some(WalState {
                        off: layout.first_record_off(),
                        epoch: outcome.next_epoch,
                        lsn: 0,
                        layout,
                    });
                }
            }
            let first_data = wal_state.as_ref().map_or(1, |w| w.layout.first_data_page());
            let mut buf = vec![0u8; PAGE_SIZE];
            let start = Instant::now();
            storage.read_at(0, &mut buf)?;
            stats.record_read(1, start.elapsed());
            if &buf[0..8] != MAGIC {
                return Err(StoreError::BadDatabase("bad magic".into()));
            }
            let page_count = u64::from_le_bytes(buf[8..16].try_into().unwrap());
            if page_count < first_data.max(1) {
                // A count inside the meta/WAL extent would let `allocate`
                // hand out those pages and overwrite the catalog or log.
                return Err(StoreError::BadDatabase("page count out of range".into()));
            }
            let ntrees = u16::from_le_bytes(buf[16..18].try_into().unwrap()) as usize;
            if ntrees > MAX_TREES {
                return Err(StoreError::BadDatabase("catalog count out of range".into()));
            }
            let mut catalog = Vec::with_capacity(ntrees);
            let mut off = 24;
            for _ in 0..ntrees {
                let root = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                let nlen = buf[off + 8] as usize;
                if nlen > MAX_NAME_LEN {
                    return Err(StoreError::BadDatabase("catalog name too long".into()));
                }
                let name = String::from_utf8(buf[off + 9..off + 9 + nlen].to_vec())
                    .map_err(|_| StoreError::BadDatabase("catalog name not UTF-8".into()))?;
                catalog.push(CatalogEntry { name, root });
                off += 9 + MAX_NAME_LEN;
            }
            // Free-extent list: pre-free-list files hold zeroes here and
            // read back as an empty list. Entries that don't fit in the
            // allocated page range are crash debris — drop them rather
            // than reject the store.
            let nfree =
                u16::from_le_bytes(buf[FREE_COUNT_OFF..FREE_COUNT_OFF + 2].try_into().unwrap())
                    as usize;
            if nfree > MAX_FREE_EXTENTS {
                return Err(StoreError::BadDatabase(
                    "free-extent count out of range".into(),
                ));
            }
            let mut free = Vec::with_capacity(nfree);
            for i in 0..nfree {
                let off = FREE_LIST_OFF + i * FREE_ENTRY_LEN;
                let first = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                let pages = u64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
                let ok = first >= first_data.max(1)
                    && pages > 0
                    && first
                        .checked_add(pages)
                        .is_some_and(|end| end <= page_count);
                if ok {
                    free.push((first, pages));
                }
            }
            free.sort_unstable();
            Ok(Pager {
                storage,
                stats,
                page_count,
                catalog,
                free,
                vacuum_reclaimed: 0,
                wal: wal_state,
                in_txn: false,
                meta_dirty: false,
                txn_allocs: Vec::new(),
                txn_roots: Vec::new(),
                txn_free: Vec::new(),
                wal_free: Vec::new(),
                pending_pages: Vec::new(),
                unsynced_commits: 0,
            })
        }
    }

    /// First page id past the meta page and WAL extent — where data
    /// pages (trees, segments) begin. `1` when the store has no WAL.
    pub fn first_data_page(&self) -> PageId {
        self.wal.as_ref().map_or(1, |w| w.layout.first_data_page())
    }

    /// True when this store carries a write-ahead log.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// I/O counters shared with the owning store.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Number of allocated pages (including the meta page).
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// The catalog entries.
    pub fn catalog(&self) -> &[CatalogEntry] {
        &self.catalog
    }

    /// Find a tree's root page.
    pub fn tree_root(&self, name: &str) -> Option<PageId> {
        self.catalog.iter().find(|e| e.name == name).map(|e| e.root)
    }

    /// Register a tree (or update its root) and persist the catalog.
    pub fn set_tree_root(&mut self, name: &str, root: PageId) -> StoreResult<()> {
        if name.len() > MAX_NAME_LEN {
            return Err(StoreError::NameTooLong(name.to_string()));
        }
        if self.in_txn && !self.txn_roots.iter().any(|(n, _)| n == name) {
            let old = self.catalog.iter().find(|e| e.name == name).map(|e| e.root);
            self.txn_roots.push((name.to_string(), old));
        }
        if let Some(e) = self.catalog.iter_mut().find(|e| e.name == name) {
            e.root = root;
        } else {
            if self.catalog.len() >= MAX_TREES {
                return Err(StoreError::CatalogFull);
            }
            self.catalog.push(CatalogEntry {
                name: name.to_string(),
                root,
            });
        }
        self.write_meta()
    }

    /// Serialize the current meta state into a fresh page buffer.
    pub fn serialize_meta(&self) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..8].copy_from_slice(MAGIC);
        buf[8..16].copy_from_slice(&self.page_count.to_le_bytes());
        buf[16..18].copy_from_slice(&(self.catalog.len() as u16).to_le_bytes());
        buf[FREE_COUNT_OFF..FREE_COUNT_OFF + 2]
            .copy_from_slice(&(self.free.len() as u16).to_le_bytes());
        let mut off = 24;
        for e in &self.catalog {
            buf[off..off + 8].copy_from_slice(&e.root.to_le_bytes());
            buf[off + 8] = e.name.len() as u8;
            buf[off + 9..off + 9 + e.name.len()].copy_from_slice(e.name.as_bytes());
            off += 9 + MAX_NAME_LEN;
        }
        for (i, &(first, pages)) in self.free.iter().enumerate() {
            let off = FREE_LIST_OFF + i * FREE_ENTRY_LEN;
            buf[off..off + 8].copy_from_slice(&first.to_le_bytes());
            buf[off + 8..off + 16].copy_from_slice(&pages.to_le_bytes());
        }
        buf
    }

    fn write_meta(&mut self) -> StoreResult<()> {
        if self.in_txn {
            // An uncommitted transaction must never reach the meta home
            // page: the batch's meta image goes through the WAL at the
            // group sync instead (or is written at commit for no-WAL
            // stores).
            self.meta_dirty = true;
            return Ok(());
        }
        let buf = self.serialize_meta();
        self.write_page_raw(META_PAGE, &buf)
    }

    /// Write pre-serialized meta bytes straight to the home page (the
    /// group sync writes the exact bytes it just logged).
    pub fn write_meta_home(&mut self, bytes: &[u8]) -> StoreResult<()> {
        self.write_page_raw(META_PAGE, bytes)
    }

    /// Allocate a fresh page and return its id, reusing a freed extent
    /// page when one exists. The page contents on the device are
    /// undefined until first written.
    pub fn allocate(&mut self) -> StoreResult<PageId> {
        let id = match self.take_free(1) {
            Some(id) => id,
            None => {
                let id = self.page_count;
                self.page_count += 1;
                // Persisting the count lazily would lose allocations on
                // crash; we accept writing the meta page on every
                // allocation burst instead of per allocation by deferring
                // to `flush`. The in-memory count is authoritative while
                // the store is open.
                id
            }
        };
        if self.in_txn {
            self.txn_allocs.push((id, 1));
        }
        Ok(id)
    }

    /// Allocate `pages` contiguous pages, returning the first id. Used
    /// by segments, which need one flat on-device run so the whole blob
    /// can be read sequentially or memory-mapped in one piece. Freed
    /// extents are reused (best fit) before the file grows.
    pub fn allocate_extent(&mut self, pages: u64) -> StoreResult<PageId> {
        let id = match self.take_free(pages) {
            Some(id) => id,
            None => {
                let id = self.page_count;
                self.page_count += pages;
                id
            }
        };
        if self.in_txn {
            self.txn_allocs.push((id, pages));
        }
        Ok(id)
    }

    /// Carve `pages` out of the free list, best fit: the smallest extent
    /// that holds them, lowest address on ties. Returns the first page.
    fn take_free(&mut self, pages: u64) -> Option<PageId> {
        let i = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, &(_, len))| len >= pages)
            .min_by_key(|(_, &(first, len))| (len, first))
            .map(|(i, _)| i)?;
        let (first, len) = self.free[i];
        if len == pages {
            self.free.remove(i);
        } else {
            self.free[i] = (first + pages, len - pages);
        }
        Some(first)
    }

    /// Return a page extent to the free list, coalescing with adjacent
    /// runs. The list persists at the next meta write; until then the
    /// in-memory copy is authoritative, like the page count.
    ///
    /// Frees are quarantined in two situations. During a transaction
    /// they park in `txn_free` so a rollback simply forgets them. While
    /// the WAL holds un-checkpointed batches they park in `wal_free`:
    /// replay rewrites every page a committed batch imaged, so recycling
    /// a freed page for a direct extent write before the log truncates
    /// would let recovery resurrect stale bytes over fresh data.
    pub fn free_extent(&mut self, first: PageId, pages: u64) {
        if pages == 0 || first < self.first_data_page() {
            return;
        }
        if self.in_txn {
            self.txn_free.push((first, pages));
            return;
        }
        if let Some(w) = &self.wal {
            if w.off > w.layout.first_record_off() {
                self.wal_free.push((first, pages));
                return;
            }
        }
        self.free_extent_now(first, pages)
    }

    /// Unconditional free-list insert (quarantine release path).
    fn free_extent_now(&mut self, first: PageId, pages: u64) {
        if pages == 0 || first == 0 {
            return;
        }
        let i = self.free.partition_point(|&(f, _)| f < first);
        self.free.insert(i, (first, pages));
        // Coalesce around the insertion point.
        let mut i = i.saturating_sub(1);
        while i + 1 < self.free.len() {
            let (f0, p0) = self.free[i];
            let (f1, p1) = self.free[i + 1];
            if f0 + p0 >= f1 {
                self.free[i] = (f0, p0.max(f1 + p1 - f0));
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
        // Bounded region: drop the smallest extent on overflow. Vacuum
        // recovers the leak from live-page analysis.
        while self.free.len() > MAX_FREE_EXTENTS {
            let drop_i = self
                .free
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, len))| len)
                .map(|(i, _)| i)
                .expect("non-empty free list");
            self.free.remove(drop_i);
        }
    }

    /// The current free extents (sorted by first page).
    pub fn free_extents(&self) -> &[FreeExtent] {
        &self.free
    }

    /// Total pages sitting on the free list.
    pub fn free_extent_pages(&self) -> u64 {
        self.free.iter().map(|&(_, p)| p).sum()
    }

    /// Replace the free list wholesale (vacuum rebuilds it from live-page
    /// analysis). Extents are sorted and clipped to the allocated range.
    pub fn set_free_extents(&mut self, mut free: Vec<FreeExtent>) {
        let floor = self.first_data_page();
        free.retain(|&(first, pages)| {
            first >= floor && pages > 0 && first + pages <= self.page_count
        });
        free.sort_unstable();
        free.truncate(MAX_FREE_EXTENTS);
        self.free = free;
    }

    /// Drop any free extent overlapping one of the `live` extents.
    /// Called once at open: a torn shutdown can persist a free-list
    /// append while the matching catalog delete stays buffered, and
    /// handing such pages out again would double-allocate them under a
    /// live segment. Returns the number of extents dropped.
    pub fn reconcile_free_extents(&mut self, live: &[FreeExtent]) -> usize {
        let before = self.free.len();
        self.free.retain(|&(f, p)| {
            !live
                .iter()
                .any(|&(lf, lp)| f < lf.saturating_add(lp) && lf < f.saturating_add(p))
        });
        before - self.free.len()
    }

    /// Shrink the allocated range to `new_count` pages: clip the free
    /// list, drop the in-memory count, and ask the device to release the
    /// tail. Only vacuum calls this, after proving everything at or past
    /// `new_count` is dead.
    pub fn shrink_to(&mut self, new_count: u64) -> StoreResult<()> {
        let new_count = new_count.max(self.first_data_page());
        if new_count >= self.page_count {
            return Ok(());
        }
        let reclaimed = self.page_count - new_count;
        self.page_count = new_count;
        let mut clipped: Vec<FreeExtent> = Vec::with_capacity(self.free.len());
        for &(first, pages) in &self.free {
            if first >= new_count {
                continue;
            }
            clipped.push((first, pages.min(new_count - first)));
        }
        self.free = clipped;
        self.vacuum_reclaimed += reclaimed;
        self.storage.truncate(new_count * PAGE_SIZE as u64)?;
        Ok(())
    }

    /// Cumulative pages reclaimed by vacuum since this pager opened.
    pub fn vacuum_reclaimed_pages(&self) -> u64 {
        self.vacuum_reclaimed
    }

    /// Write `data` over the extent starting at `first`, padding the
    /// tail of the last page with zeroes so the device stays
    /// page-granular. Goes straight to the device — extent pages never
    /// enter the buffer pool.
    pub fn write_extent(&mut self, first: PageId, data: &[u8]) -> StoreResult<()> {
        let off = page_offset(first)?;
        let pages = data.len().div_ceil(PAGE_SIZE).max(1);
        let start = Instant::now();
        self.storage.write_at(off, data)?;
        let tail = pages * PAGE_SIZE - data.len();
        if tail > 0 {
            let pad = vec![0u8; tail];
            self.storage.write_at(off + data.len() as u64, &pad)?;
        }
        self.stats.record_write(pages as u64, start.elapsed());
        Ok(())
    }

    /// Read `byte_len` bytes of the extent starting at `first` into a
    /// fresh buffer (one sequential device read, bypassing the pool).
    pub fn read_extent(&mut self, first: PageId, byte_len: usize) -> StoreResult<Vec<u8>> {
        let mut buf = vec![0u8; byte_len];
        let start = Instant::now();
        self.storage.read_at(page_offset(first)?, &mut buf)?;
        self.stats
            .record_read(byte_len.div_ceil(PAGE_SIZE).max(1) as u64, start.elapsed());
        Ok(buf)
    }

    /// Memory-map `byte_len` bytes of the extent starting at `first`,
    /// read-only, when the device supports it.
    pub fn mmap_extent(
        &mut self,
        first: PageId,
        byte_len: usize,
    ) -> StoreResult<Option<crate::mmap::MmapRegion>> {
        Ok(self.storage.mmap(page_offset(first)?, byte_len)?)
    }

    /// True when the device can serve read-only mappings.
    pub fn supports_mmap(&mut self) -> bool {
        // Probe-free: only persistent (file) devices ever map, and only
        // on unix. An actual map attempt may still decline at runtime.
        cfg!(unix) && self.storage.is_persistent()
    }

    /// True when the device outlives the process.
    pub fn is_persistent(&self) -> bool {
        self.storage.is_persistent()
    }

    /// Read a page into `buf` (must be `PAGE_SIZE` long).
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> StoreResult<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let start = Instant::now();
        self.storage.read_at(page_offset(id)?, buf)?;
        self.stats.record_read(1, start.elapsed());
        Ok(())
    }

    /// Write a page from `buf` (must be `PAGE_SIZE` long).
    pub fn write_page_raw(&mut self, id: PageId, buf: &[u8]) -> StoreResult<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let start = Instant::now();
        self.storage.write_at(page_offset(id)?, buf)?;
        self.stats.record_write(1, start.elapsed());
        Ok(())
    }

    /// Persist the meta page (page count + catalog) and sync the device.
    pub fn flush(&mut self) -> StoreResult<()> {
        self.write_meta()?;
        self.storage.sync()?;
        Ok(())
    }

    // ---- transactions and the write-ahead log ----

    /// Enter transaction scope. The buffer pool's single-writer lock
    /// serializes callers; this just flips the bookkeeping mode.
    pub fn begin_txn(&mut self) {
        debug_assert!(!self.in_txn, "nested transaction");
        self.in_txn = true;
    }

    /// Commit the open transaction: adopt its allocations and root
    /// changes, move its frees into the WAL quarantine (or straight to
    /// the free list on no-WAL stores), and count it toward the group
    /// commit window. `pending` are the pages the buffer pool newly
    /// marked for the next WAL batch.
    pub fn commit_txn(&mut self, pending: &[PageId]) -> StoreResult<()> {
        debug_assert!(self.in_txn, "commit without begin");
        self.in_txn = false;
        self.txn_allocs.clear();
        self.txn_roots.clear();
        let freed = std::mem::take(&mut self.txn_free);
        if self.wal.is_some() {
            self.pending_pages.extend_from_slice(pending);
            self.wal_free.extend(freed);
            self.unsynced_commits += 1;
        } else {
            for (first, pages) in freed {
                self.free_extent(first, pages);
            }
            if self.meta_dirty {
                self.meta_dirty = false;
                self.write_meta()?;
            }
        }
        Ok(())
    }

    /// Roll the open transaction back: return its allocations to the
    /// free list, restore the catalog roots it changed, and forget its
    /// frees (the freeing operations never happened).
    pub fn rollback_txn(&mut self) {
        debug_assert!(self.in_txn, "rollback without begin");
        self.in_txn = false;
        self.meta_dirty = false;
        self.txn_free.clear();
        for (name, old) in std::mem::take(&mut self.txn_roots) {
            match old {
                Some(root) => {
                    if let Some(e) = self.catalog.iter_mut().find(|e| e.name == name) {
                        e.root = root;
                    }
                }
                None => self.catalog.retain(|e| e.name != name),
            }
        }
        for (first, pages) in std::mem::take(&mut self.txn_allocs) {
            self.free_extent(first, pages);
        }
    }

    /// Pages committed but not yet logged (deduplicated by the pool).
    pub fn pending_pages(&self) -> Vec<PageId> {
        self.pending_pages.clone()
    }

    /// Number of pages awaiting the next WAL batch.
    pub fn pending_len(&self) -> usize {
        self.pending_pages.len()
    }

    /// Commits since the last group sync.
    pub fn unsynced_commits(&self) -> u64 {
        self.unsynced_commits
    }

    /// Append one batch — `images` then a commit record — with a single
    /// device write, then sync: that sync is the commit point for every
    /// transaction in the batch. If the batch doesn't fit in the space
    /// left, the log is checkpointed first (safe: every earlier batch
    /// already wrote its home pages, and the checkpoint syncs them).
    /// On failure the append cursor does not advance, so the caller's
    /// pending state stays intact for a retry.
    pub fn wal_append_commit(&mut self, images: &[(PageId, &[u8])]) -> StoreResult<()> {
        let Some(w) = &self.wal else {
            return Ok(());
        };
        let need =
            images.len() as u64 * (RECORD_HEADER_LEN + PAGE_SIZE) as u64 + RECORD_HEADER_LEN as u64;
        let end = w.layout.end_off();
        if w.off + need > end {
            self.checkpoint()?;
            let w = self.wal.as_ref().expect("wal present");
            if w.off + need > end {
                return Err(StoreError::Corrupt("wal batch exceeds the log region"));
            }
        }
        let w = self.wal.as_ref().expect("wal present");
        let (off, lsn) = (w.off, w.lsn);
        let batch = wal::encode_batch(images, w.epoch, lsn);
        debug_assert_eq!(batch.len() as u64, need);
        let start = Instant::now();
        self.storage.write_at(off, &batch)?;
        self.storage.sync()?;
        self.stats
            .record_write(batch.len().div_ceil(PAGE_SIZE) as u64, start.elapsed());
        let w = self.wal.as_mut().expect("wal present");
        w.off = off + batch.len() as u64;
        w.lsn = lsn + images.len() as u64 + 1;
        Ok(())
    }

    /// The group sync logged and home-wrote everything pending; reset
    /// the window counters.
    pub fn after_group_sync(&mut self) {
        self.pending_pages.clear();
        self.unsynced_commits = 0;
        self.meta_dirty = false;
    }

    /// Truncate the log: make every home page durable, zero the head
    /// record, sync again, and start a new epoch at the head. Releases
    /// the free-extent quarantine — nothing in the (now empty) log can
    /// resurrect those pages anymore.
    pub fn checkpoint(&mut self) -> StoreResult<()> {
        let Some(w) = &self.wal else {
            return Ok(());
        };
        let head = w.layout.first_record_off();
        if w.off == head && self.wal_free.is_empty() {
            return Ok(());
        }
        self.storage.sync()?;
        self.storage.write_at(head, &[0u8; RECORD_HEADER_LEN])?;
        self.storage.sync()?;
        let w = self.wal.as_mut().expect("wal present");
        w.off = head;
        w.epoch += 1;
        w.lsn = 0;
        for (first, pages) in std::mem::take(&mut self.wal_free) {
            self.free_extent_now(first, pages);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn mem_pager() -> Pager {
        Pager::new(Box::new(MemStorage::new()), IoStats::new()).unwrap()
    }

    #[test]
    fn fresh_device_gets_meta_page() {
        let p = mem_pager();
        assert_eq!(p.page_count(), 1);
        assert!(p.catalog().is_empty());
    }

    #[test]
    fn allocate_monotonic() {
        let mut p = mem_pager();
        assert_eq!(p.allocate().unwrap(), 1);
        assert_eq!(p.allocate().unwrap(), 2);
        assert_eq!(p.page_count(), 3);
    }

    #[test]
    fn page_round_trip() {
        let mut p = mem_pager();
        let id = p.allocate().unwrap();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 42;
        page[PAGE_SIZE - 1] = 7;
        p.write_page_raw(id, &page).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        p.read_page(id, &mut back).unwrap();
        assert_eq!(page, back);
    }

    #[test]
    fn catalog_round_trip_through_reopen() {
        let mut device = MemStorage::new();
        {
            let mut p = Pager::new(Box::new(std::mem::take(&mut device)), IoStats::new()).unwrap();
            p.set_tree_root("nodes", 7).unwrap();
            p.set_tree_root("shapes", 9).unwrap();
            p.set_tree_root("nodes", 11).unwrap(); // update
            p.flush().unwrap();
            // Steal the device back out through a raw write/read cycle:
            // MemStorage cannot be recovered from Box<dyn>, so emulate by
            // re-reading the meta page bytes below with a fresh pager over
            // a file instead.
        }
        // File-based persistence check.
        let dir = std::env::temp_dir().join(format!("pagestore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog-roundtrip.db");
        {
            let fs = crate::storage::FileStorage::create(&path).unwrap();
            let mut p = Pager::new(Box::new(fs), IoStats::new()).unwrap();
            p.set_tree_root("nodes", 7).unwrap();
            p.set_tree_root("shapes", 9).unwrap();
            p.set_tree_root("nodes", 11).unwrap();
            p.flush().unwrap();
        }
        {
            let fs = crate::storage::FileStorage::open(&path).unwrap();
            let p = Pager::new(Box::new(fs), IoStats::new()).unwrap();
            assert_eq!(p.tree_root("nodes"), Some(11));
            assert_eq!(p.tree_root("shapes"), Some(9));
            assert_eq!(p.tree_root("missing"), None);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_stats_counted() {
        let stats = IoStats::new();
        let mut p = Pager::new(Box::new(MemStorage::new()), stats.clone()).unwrap();
        let id = p.allocate().unwrap();
        let page = vec![0u8; PAGE_SIZE];
        p.write_page_raw(id, &page).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(id, &mut buf).unwrap();
        let snap = stats.snapshot();
        assert!(snap.blocks_written >= 2); // meta + data page
        assert!(snap.blocks_read >= 1);
    }

    #[test]
    fn name_too_long_rejected() {
        let mut p = mem_pager();
        let long = "x".repeat(MAX_NAME_LEN + 1);
        assert!(matches!(
            p.set_tree_root(&long, 1),
            Err(StoreError::NameTooLong(_))
        ));
    }

    #[test]
    fn catalog_capacity_enforced() {
        let mut p = mem_pager();
        for i in 0..MAX_TREES {
            p.set_tree_root(&format!("t{i}"), i as u64).unwrap();
        }
        assert!(matches!(
            p.set_tree_root("one-more", 99),
            Err(StoreError::CatalogFull)
        ));
    }

    #[test]
    fn free_extent_coalesces_adjacent_runs() {
        let mut p = mem_pager();
        p.allocate_extent(30).unwrap(); // pages 1..31
        p.free_extent(5, 3);
        p.free_extent(10, 2);
        assert_eq!(p.free_extents(), &[(5, 3), (10, 2)]);
        // Filling the gap merges all three into one run.
        p.free_extent(8, 2);
        assert_eq!(p.free_extents(), &[(5, 7)]);
        assert_eq!(p.free_extent_pages(), 7);
    }

    #[test]
    fn allocate_reuses_freed_pages_best_fit() {
        let mut p = mem_pager();
        p.allocate_extent(40).unwrap(); // 1..41
        p.free_extent(3, 2);
        p.free_extent(10, 6);
        // Two pages fit the (3,2) extent exactly; the larger run stays.
        assert_eq!(p.allocate_extent(2).unwrap(), 3);
        assert_eq!(p.free_extents(), &[(10, 6)]);
        // A single page carves off the front of the remaining run.
        assert_eq!(p.allocate().unwrap(), 10);
        assert_eq!(p.free_extents(), &[(11, 5)]);
        // Too big for any run: the file grows instead.
        assert_eq!(p.allocate_extent(9).unwrap(), 41);
        assert_eq!(p.page_count(), 50);
    }

    #[test]
    fn free_list_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("pagestore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("freelist-roundtrip.db");
        let base;
        {
            let fs = crate::storage::FileStorage::create(&path).unwrap();
            let mut p = Pager::new(Box::new(fs), IoStats::new()).unwrap();
            base = p.allocate_extent(20).unwrap();
            assert_eq!(base, p.first_data_page());
            p.free_extent(base + 3, 3);
            p.free_extent(base + 11, 5);
            p.flush().unwrap();
        }
        {
            let fs = crate::storage::FileStorage::open(&path).unwrap();
            let p = Pager::new(Box::new(fs), IoStats::new()).unwrap();
            assert_eq!(p.free_extents(), &[(base + 3, 3), (base + 11, 5)]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_list_overflow_drops_smallest() {
        let mut p = mem_pager();
        // Non-adjacent single-page extents (every other page) until the
        // region overflows, then one big extent that must survive.
        p.allocate_extent(4000).unwrap();
        for i in 0..MAX_FREE_EXTENTS {
            p.free_extent(1 + 2 * i as u64, 1);
        }
        assert_eq!(p.free_extents().len(), MAX_FREE_EXTENTS);
        p.free_extent(3000, 100);
        assert_eq!(p.free_extents().len(), MAX_FREE_EXTENTS);
        assert!(p.free_extents().contains(&(3000, 100)));
    }

    #[test]
    fn reconcile_drops_overlapping_free_extents() {
        let mut p = mem_pager();
        p.allocate_extent(30).unwrap();
        p.free_extent(5, 4);
        p.free_extent(20, 2);
        let dropped = p.reconcile_free_extents(&[(6, 3)]);
        assert_eq!(dropped, 1);
        assert_eq!(p.free_extents(), &[(20, 2)]);
    }

    #[test]
    fn shrink_clips_free_list_and_counts_reclaimed() {
        let mut p = mem_pager();
        p.allocate_extent(50).unwrap();
        p.free_extent(40, 11); // straddles the new boundary
        p.shrink_to(45).unwrap();
        assert_eq!(p.page_count(), 45);
        assert_eq!(p.free_extents(), &[(40, 5)]);
        assert_eq!(p.vacuum_reclaimed_pages(), 6);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut device = MemStorage::new();
        device.write_at(0, b"NOTADATB").unwrap();
        device.write_at(PAGE_SIZE as u64 - 1, &[0]).unwrap();
        assert!(matches!(
            Pager::new(Box::new(device), IoStats::new()),
            Err(StoreError::BadDatabase(_))
        ));
    }
}

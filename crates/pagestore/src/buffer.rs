//! A sharded LRU buffer pool over the [`Pager`].
//!
//! Access is closure-scoped (`read_with` / `write_with`) so callers never
//! hold references into the pool across evictions. The frame cache is
//! split into a power-of-two number of independent shards, each guarded
//! by its own mutex with its own frame map and LRU clock — concurrent
//! readers and writers only contend when they touch pages that hash to
//! the same shard. The pager (device I/O, page allocation, the tree
//! catalog) sits behind a separate mutex that is only taken on cache
//! misses, dirty writebacks, and metadata operations; cache hits touch
//! nothing but the owning shard's lock and the shared atomic counters.
//!
//! Lock order is strictly shard → pager (a shard lock may be held while
//! taking the pager lock, never the reverse), which makes the pool
//! deadlock-free by construction.

use crate::error::StoreResult;
use crate::pager::{PageId, Pager, META_PAGE};
use crate::stats::{IoSnapshot, IoStats};
use crate::PAGE_SIZE;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};

/// Default number of cached pages (4 MiB at 4 KiB pages).
pub const DEFAULT_CAPACITY: usize = 1024;

/// Hard ceiling on the shard count (64 shards is far past the point of
/// diminishing returns for a page cache).
pub const MAX_SHARDS: usize = 64;

/// Fewest frames a shard is allowed to hold; shard counts are clamped
/// so that `capacity / shards >= MIN_FRAMES_PER_SHARD`.
pub const MIN_FRAMES_PER_SHARD: usize = 4;

/// Group commit window: a commit triggers a group sync once this many
/// transactions have committed since the last one. Until then commits
/// are a handful of in-memory flag flips — the fsync is amortized
/// across the window.
pub const COMMIT_WINDOW: u64 = 512;

/// Space-pressure trigger: a commit also triggers a group sync when
/// this many distinct pages are pinned awaiting the next WAL batch,
/// keeping one batch comfortably inside the log region.
pub const PENDING_PRESSURE: usize = 256;

/// Pre-transaction state of a page, captured on its first write inside
/// a transaction. `data: None` marks a page allocated *by* the
/// transaction — rollback drops the frame instead of restoring bytes.
struct Undo {
    data: Option<Box<[u8]>>,
    dirty: bool,
    wal_pending: bool,
}

struct Frame {
    data: Box<[u8]>,
    /// Dirty via the legacy (non-transactional) write path.
    dirty: bool,
    /// Written by the open transaction; pinned until commit/rollback.
    txn_dirty: bool,
    /// Committed but awaiting the next WAL group sync; pinned until the
    /// batch is logged and the home page written.
    wal_pending: bool,
    undo: Option<Undo>,
    last_used: u64,
}

impl Frame {
    fn pinned(&self) -> bool {
        self.txn_dirty || self.wal_pending
    }
}

/// Structural validator run on device-loaded pages; returns the
/// corruption reason on failure.
pub type PageCheck = fn(&[u8]) -> Result<(), &'static str>;

struct ShardInner {
    frames: HashMap<PageId, Frame>,
    tick: u64,
    capacity: usize,
}

/// Single-writer transaction gate. `locked` covers both open
/// transactions and exclusive maintenance (flush, vacuum); `pages`
/// lists every page the open transaction has touched, in first-touch
/// order, so commit/rollback know exactly which frames to visit.
struct TxnCtl {
    locked: bool,
    pages: Vec<PageId>,
}

/// Exclusive (no open transaction) section guard returned by
/// [`BufferPool::txn_exclusion`]; releases the gate on drop.
pub struct TxnExclusion<'a> {
    pool: &'a BufferPool,
}

impl Drop for TxnExclusion<'_> {
    fn drop(&mut self) {
        let mut ctl = self.pool.txn.lock().expect("txn gate poisoned");
        ctl.locked = false;
        self.pool.txn_cv.notify_all();
    }
}

/// A buffer pool: caches page frames across independent shards,
/// evicting each shard's least recently used frame (writing it back
/// first when dirty).
pub struct BufferPool {
    shards: Box<[Mutex<ShardInner>]>,
    /// `shards.len() - 1`; shard routing is `page_id & shard_mask`.
    shard_mask: u64,
    pager: Mutex<Pager>,
    /// Clone of the pager's (atomic, `Arc`-shared) counters so cache
    /// hits and misses are recorded without taking the pager lock.
    stats: IoStats,
    /// Structural check run on every page loaded from the device (cache
    /// misses only, never hits), so a torn page surfaces as a typed
    /// error at load instead of a panic when its garbage offsets are
    /// dereferenced. `None` (the default) skips the check; the `Store`
    /// installs the B+tree validator since tree pages are the only
    /// pages this cache ever holds.
    page_check: Option<PageCheck>,
    /// Transaction gate (see [`TxnCtl`]). A `std` mutex because it
    /// pairs with `txn_cv` — the `parking_lot` shim has no condvar.
    txn: StdMutex<TxnCtl>,
    txn_cv: Condvar,
    /// True while a *writing* transaction is open, so `write_with`
    /// knows to capture undo state. Exclusive maintenance sections
    /// (flush, vacuum) hold the gate without setting this.
    txn_writes: AtomicBool,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// Largest power of two `<= n` (`n >= 1`).
fn floor_pow2(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

/// Default shard count: the number of CPUs rounded up to a power of
/// two, clamped so every shard keeps at least [`MIN_FRAMES_PER_SHARD`]
/// frames and at most [`MAX_SHARDS`] shards exist.
pub fn default_shard_count(capacity: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let by_cpus = cpus.next_power_of_two().min(MAX_SHARDS);
    let by_capacity = floor_pow2((capacity / MIN_FRAMES_PER_SHARD).max(1));
    by_cpus.min(by_capacity)
}

impl BufferPool {
    /// Wrap a pager with the given frame capacity, sharded by CPU count
    /// (see [`default_shard_count`]).
    pub fn new(pager: Pager, capacity: usize) -> Self {
        let shards = default_shard_count(capacity);
        BufferPool::with_shards(pager, capacity, shards)
    }

    /// Wrap a pager with an explicit shard count. `shards` is rounded
    /// up to a power of two and clamped so each shard holds at least
    /// [`MIN_FRAMES_PER_SHARD`] frames; `capacity` is the total frame
    /// budget across all shards.
    pub fn with_shards(pager: Pager, capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 4, "buffer pool needs at least 4 frames");
        let shards = shards
            .max(1)
            .next_power_of_two()
            .min(MAX_SHARDS)
            .min(floor_pow2((capacity / MIN_FRAMES_PER_SHARD).max(1)));
        let per_shard = capacity / shards;
        let stats = pager.stats().clone();
        let shards: Vec<Mutex<ShardInner>> = (0..shards)
            .map(|_| {
                Mutex::new(ShardInner {
                    frames: HashMap::new(),
                    tick: 0,
                    capacity: per_shard,
                })
            })
            .collect();
        BufferPool {
            shard_mask: shards.len() as u64 - 1,
            shards: shards.into_boxed_slice(),
            pager: Mutex::new(pager),
            stats,
            page_check: None,
            txn: StdMutex::new(TxnCtl {
                locked: false,
                pages: Vec::new(),
            }),
            txn_cv: Condvar::new(),
            txn_writes: AtomicBool::new(false),
        }
    }

    /// Install a structural check run on every device-loaded page (see
    /// the `page_check` field). Called once at store construction,
    /// before the pool is shared.
    pub fn set_page_check(&mut self, check: PageCheck) {
        self.page_check = Some(check);
    }

    /// Number of shards the frame cache is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, id: PageId) -> &Mutex<ShardInner> {
        &self.shards[(id & self.shard_mask) as usize]
    }

    /// Run `f` over the page's bytes.
    pub fn read_with<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> StoreResult<R> {
        let mut shard = self.shard_for(id).lock();
        self.touch(&mut shard, id)?;
        let frame = shard.frames.get(&id).expect("frame just loaded");
        let r = f(&frame.data);
        self.evict_to_capacity(&mut shard)?;
        Ok(r)
    }

    /// Run `f` over the page's bytes mutably; the page is marked dirty.
    /// Inside an open transaction the frame's pre-image is captured on
    /// first touch so rollback can restore it byte-for-byte.
    pub fn write_with<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> StoreResult<R> {
        let mut shard = self.shard_for(id).lock();
        self.touch(&mut shard, id)?;
        let frame = shard.frames.get_mut(&id).expect("frame just loaded");
        if self.txn_writes.load(Ordering::Acquire) {
            if !frame.txn_dirty {
                frame.undo = Some(Undo {
                    data: Some(frame.data.clone()),
                    dirty: frame.dirty,
                    wal_pending: frame.wal_pending,
                });
                frame.txn_dirty = true;
                self.txn.lock().expect("txn gate poisoned").pages.push(id);
            }
        } else {
            frame.dirty = true;
        }
        let r = f(&mut frame.data);
        self.evict_to_capacity(&mut shard)?;
        Ok(r)
    }

    /// Allocate a fresh zeroed page (cached dirty, so it reaches the
    /// device on flush/eviction). Inside a transaction the frame is
    /// born transaction-dirty with a "did not exist" undo marker, so
    /// rollback simply drops it (the pager unwinds the allocation).
    pub fn allocate(&self) -> StoreResult<PageId> {
        // The pager lock is released before the shard lock is taken:
        // the only permitted nesting is shard → pager.
        let id = self.pager.lock().allocate()?;
        let in_txn = self.txn_writes.load(Ordering::Acquire);
        let mut shard = self.shard_for(id).lock();
        let tick = bump_tick(&mut shard);
        shard.frames.insert(
            id,
            Frame {
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: !in_txn,
                txn_dirty: in_txn,
                wal_pending: false,
                undo: in_txn.then_some(Undo {
                    data: None,
                    dirty: false,
                    wal_pending: false,
                }),
                last_used: tick,
            },
        );
        if in_txn {
            self.txn.lock().expect("txn gate poisoned").pages.push(id);
        }
        self.evict_to_capacity(&mut shard)?;
        Ok(id)
    }

    /// Allocate a contiguous run of pages for a segment. Extent pages
    /// never enter the frame cache.
    pub fn allocate_extent(&self, pages: u64) -> StoreResult<PageId> {
        self.pager.lock().allocate_extent(pages)
    }

    /// Write a segment's bytes straight through to the device (page
    /// padded), bypassing the frame cache.
    pub fn write_extent(&self, first: PageId, data: &[u8]) -> StoreResult<()> {
        self.pager.lock().write_extent(first, data)
    }

    /// Read a segment's bytes in one sequential device read.
    pub fn read_extent(&self, first: PageId, byte_len: usize) -> StoreResult<Vec<u8>> {
        self.pager.lock().read_extent(first, byte_len)
    }

    /// Memory-map a segment's extent read-only, when the device can.
    pub fn mmap_extent(
        &self,
        first: PageId,
        byte_len: usize,
    ) -> StoreResult<Option<crate::mmap::MmapRegion>> {
        self.pager.lock().mmap_extent(first, byte_len)
    }

    /// Return a page extent to the pager's free list.
    pub fn free_extent(&self, first: PageId, pages: u64) {
        self.pager.lock().free_extent(first, pages)
    }

    /// The pager's current free extents.
    pub fn free_extents(&self) -> Vec<crate::pager::FreeExtent> {
        self.pager.lock().free_extents().to_vec()
    }

    /// Total pages on the pager's free list.
    pub fn free_extent_pages(&self) -> u64 {
        self.pager.lock().free_extent_pages()
    }

    /// Replace the pager's free list (vacuum).
    pub fn set_free_extents(&self, free: Vec<crate::pager::FreeExtent>) {
        self.pager.lock().set_free_extents(free)
    }

    /// Drop free extents overlapping live ones (open-time reconcile).
    pub fn reconcile_free_extents(&self, live: &[crate::pager::FreeExtent]) -> usize {
        self.pager.lock().reconcile_free_extents(live)
    }

    /// Shrink the allocated page range (vacuum tail truncation).
    pub fn shrink_to(&self, new_count: u64) -> StoreResult<()> {
        self.pager.lock().shrink_to(new_count)
    }

    /// Cumulative pages reclaimed by vacuum.
    pub fn vacuum_reclaimed_pages(&self) -> u64 {
        self.pager.lock().vacuum_reclaimed_pages()
    }

    /// Drop cached frames for pages at or past `bound`. Vacuum calls
    /// this after flushing, right before truncating the device, so no
    /// stale frame of a dead tail page can be written back later and
    /// regrow the file.
    pub fn forget_frames_from(&self, bound: PageId) {
        for shard in self.shards.iter() {
            shard.lock().frames.retain(|&id, _| id < bound);
        }
    }

    /// True when the device can serve read-only mappings.
    pub fn supports_mmap(&self) -> bool {
        self.pager.lock().supports_mmap()
    }

    /// True when the device outlives the process (file-backed).
    pub fn is_persistent(&self) -> bool {
        self.pager.lock().is_persistent()
    }

    /// Look up a named tree's root page.
    pub fn tree_root(&self, name: &str) -> Option<PageId> {
        self.pager.lock().tree_root(name)
    }

    /// Register or move a named tree's root page.
    pub fn set_tree_root(&self, name: &str, root: PageId) -> StoreResult<()> {
        self.pager.lock().set_tree_root(name, root)
    }

    /// Names of all registered trees.
    pub fn tree_names(&self) -> Vec<String> {
        self.pager
            .lock()
            .catalog()
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Block until no transaction is open, then hold the gate for the
    /// returned guard's lifetime. Maintenance that must see a quiesced
    /// pool (flush, vacuum) runs under this; unlike [`begin_txn`] it
    /// does *not* arm undo capture.
    ///
    /// [`begin_txn`]: BufferPool::begin_txn
    pub fn txn_exclusion(&self) -> TxnExclusion<'_> {
        let mut ctl = self.txn.lock().expect("txn gate poisoned");
        while ctl.locked {
            ctl = self.txn_cv.wait(ctl).expect("txn gate poisoned");
        }
        ctl.locked = true;
        drop(ctl);
        TxnExclusion { pool: self }
    }

    /// Open a transaction. Blocks until the single-writer gate is free;
    /// all `write_with`/`allocate` calls until the matching
    /// [`commit_txn`]/[`rollback_txn`] belong to this transaction.
    ///
    /// [`commit_txn`]: BufferPool::commit_txn
    /// [`rollback_txn`]: BufferPool::rollback_txn
    pub fn begin_txn(&self) {
        let mut ctl = self.txn.lock().expect("txn gate poisoned");
        while ctl.locked {
            ctl = self.txn_cv.wait(ctl).expect("txn gate poisoned");
        }
        ctl.locked = true;
        ctl.pages.clear();
        drop(ctl);
        self.txn_writes.store(true, Ordering::Release);
        self.pager.lock().begin_txn();
    }

    /// Commit the open transaction. On a WAL-backed store the touched
    /// frames flip to `wal_pending` (pinned, not yet home) and the
    /// fsync is deferred to the group commit window; without a WAL they
    /// flip to plain dirty and the metadata write happens immediately.
    pub fn commit_txn(&self) -> StoreResult<()> {
        self.txn_writes.store(false, Ordering::Release);
        let pages = std::mem::take(&mut self.txn.lock().expect("txn gate poisoned").pages);
        let wal = self.pager.lock().wal_enabled();
        let mut committed: Vec<PageId> = Vec::with_capacity(pages.len());
        for id in pages {
            let mut shard = self.shard_for(id).lock();
            let frame = shard.frames.get_mut(&id).expect("txn frame pinned");
            frame.txn_dirty = false;
            frame.undo = None;
            if wal {
                if !frame.wal_pending {
                    frame.wal_pending = true;
                    committed.push(id);
                }
            } else {
                frame.dirty = true;
            }
        }
        let result = self.pager.lock().commit_txn(&committed);
        let should_sync = result.is_ok() && wal && {
            let pager = self.pager.lock();
            pager.unsynced_commits() >= COMMIT_WINDOW || pager.pending_len() >= PENDING_PRESSURE
        };
        let result = if should_sync {
            result.and(self.group_sync_locked())
        } else {
            result
        };
        let mut ctl = self.txn.lock().expect("txn gate poisoned");
        ctl.locked = false;
        drop(ctl);
        self.txn_cv.notify_all();
        result
    }

    /// Abort the open transaction: every touched frame is restored from
    /// its undo image (frames the transaction allocated are dropped),
    /// then the pager unwinds allocations, root moves, and metadata.
    pub fn rollback_txn(&self) {
        self.txn_writes.store(false, Ordering::Release);
        let pages = std::mem::take(&mut self.txn.lock().expect("txn gate poisoned").pages);
        for id in pages {
            let mut shard = self.shard_for(id).lock();
            let frame = shard.frames.get_mut(&id).expect("txn frame pinned");
            match frame.undo.take() {
                Some(Undo {
                    data: Some(data),
                    dirty,
                    wal_pending,
                }) => {
                    frame.data = data;
                    frame.dirty = dirty;
                    frame.wal_pending = wal_pending;
                    frame.txn_dirty = false;
                }
                // Allocated by this transaction: never existed before.
                Some(Undo { data: None, .. }) | None => {
                    shard.frames.remove(&id);
                }
            }
        }
        self.pager.lock().rollback_txn();
        let mut ctl = self.txn.lock().expect("txn gate poisoned");
        ctl.locked = false;
        drop(ctl);
        self.txn_cv.notify_all();
    }

    /// Group commit: append every `wal_pending` page image plus the
    /// serialized metadata page to the WAL as one batch (the single
    /// fsync inside is the commit point), then write the images to
    /// their home offsets and unpin the frames. Must only run while the
    /// transaction gate is held by the caller (commit path or an
    /// exclusion section) — pending frames cannot change underneath.
    fn group_sync_locked(&self) -> StoreResult<()> {
        let pending = {
            let pager = self.pager.lock();
            if !pager.wal_enabled() || (pager.pending_len() == 0 && pager.unsynced_commits() == 0) {
                return Ok(());
            }
            pager.pending_pages()
        };
        let mut images: Vec<(PageId, Box<[u8]>)> = Vec::with_capacity(pending.len());
        for id in pending {
            let shard = self.shard_for(id).lock();
            let frame = shard.frames.get(&id).expect("wal-pending frame pinned");
            images.push((id, frame.data.clone()));
        }
        {
            let mut pager = self.pager.lock();
            let meta = pager.serialize_meta();
            let mut batch: Vec<(PageId, &[u8])> = images
                .iter()
                .map(|(id, data)| (*id, data.as_ref()))
                .collect();
            batch.push((META_PAGE, meta.as_slice()));
            // Commit point: one append, one fsync.
            pager.wal_append_commit(&batch)?;
            // Home writes after the log is durable; a crash anywhere in
            // here replays the batch from the WAL on reopen.
            pager.write_meta_home(&meta)?;
            for (id, data) in &images {
                pager.write_page_raw(*id, data)?;
            }
            pager.after_group_sync();
        }
        for (id, _) in &images {
            let mut shard = self.shard_for(*id).lock();
            if let Some(frame) = shard.frames.get_mut(id) {
                frame.wal_pending = false;
            }
        }
        Ok(())
    }

    /// Write back all dirty frames and sync the device. Blocks until no
    /// transaction is open; on WAL stores this also drains the pending
    /// group-commit batch and checkpoints (truncates) the log.
    pub fn flush(&self) -> StoreResult<()> {
        let _excl = self.txn_exclusion();
        self.flush_locked()
    }

    /// [`flush`](BufferPool::flush) body, for callers already holding a
    /// [`txn_exclusion`](BufferPool::txn_exclusion) guard (vacuum).
    pub(crate) fn flush_locked(&self) -> StoreResult<()> {
        self.group_sync_locked()?;
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            let dirty: Vec<PageId> = shard
                .frames
                .iter()
                .filter(|(_, fr)| fr.dirty && !fr.pinned())
                .map(|(&id, _)| id)
                .collect();
            if dirty.is_empty() {
                continue;
            }
            // One pager acquisition per shard batch.
            let mut pager = self.pager.lock();
            for id in dirty {
                let frame = shard.frames.get_mut(&id).expect("dirty frame cached");
                pager.write_page_raw(id, &frame.data)?;
                frame.dirty = false;
            }
        }
        let mut pager = self.pager.lock();
        pager.flush()?;
        pager.checkpoint()
    }

    /// First page id usable for data (pages below it are the metadata
    /// page and the WAL region).
    pub fn first_data_page(&self) -> PageId {
        self.pager.lock().first_data_page()
    }

    /// True when this pool's device carries a write-ahead log.
    pub fn wal_enabled(&self) -> bool {
        self.pager.lock().wal_enabled()
    }

    /// Snapshot of the cumulative I/O counters (shared by all shards).
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Count a swallowed best-effort flush failure (the store's drop
    /// path, which must not panic or return).
    pub fn record_flush_failure(&self) {
        self.stats.record_flush_failure();
    }

    /// Number of allocated pages (including meta).
    pub fn page_count(&self) -> u64 {
        self.pager.lock().page_count()
    }

    /// Number of frames currently cached across all shards (for tests).
    pub fn cached_frames(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Ensure the page is cached in `shard` and update its LRU stamp.
    fn touch(&self, shard: &mut ShardInner, id: PageId) -> StoreResult<()> {
        let tick = bump_tick(shard);
        if let Some(frame) = shard.frames.get_mut(&id) {
            frame.last_used = tick;
            self.stats.record_hit();
            return Ok(());
        }
        self.stats.record_miss();
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        self.pager.lock().read_page(id, &mut data)?;
        if let Some(check) = self.page_check {
            check(&data).map_err(crate::error::StoreError::Corrupt)?;
        }
        shard.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                txn_dirty: false,
                wal_pending: false,
                undo: None,
                last_used: tick,
            },
        );
        Ok(())
    }

    /// Evict `shard`'s least-recently-used frames down to its capacity,
    /// writing dirty victims back through the pager. A dirty victim is
    /// written back *before* it leaves the cache: if the device write
    /// fails the frame stays resident (still dirty), so the only copy
    /// of the data survives and a later flush retries — removing first
    /// would drop the bytes on the floor when the write errors.
    /// Frames pinned by an open transaction or an unsynced WAL batch
    /// are never eviction victims — their cached bytes are the only
    /// committed copy until the group sync writes them home — so a
    /// shard may transiently exceed its capacity mid-transaction.
    fn evict_to_capacity(&self, shard: &mut ShardInner) -> StoreResult<()> {
        while shard.frames.len() > shard.capacity {
            let victim = shard
                .frames
                .iter()
                .filter(|(_, fr)| !fr.pinned())
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(&id, _)| id);
            let Some(victim) = victim else {
                break;
            };
            let frame = shard.frames.get_mut(&victim).expect("victim cached");
            if frame.dirty {
                self.pager.lock().write_page_raw(victim, &frame.data)?;
                frame.dirty = false;
            }
            shard.frames.remove(&victim);
        }
        Ok(())
    }
}

fn bump_tick(shard: &mut ShardInner) -> u64 {
    shard.tick += 1;
    shard.tick
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoStats;
    use crate::storage::MemStorage;

    fn pool(capacity: usize) -> BufferPool {
        let pager = Pager::new(Box::new(MemStorage::new()), IoStats::new()).unwrap();
        BufferPool::new(pager, capacity)
    }

    fn sharded_pool(capacity: usize, shards: usize) -> BufferPool {
        let pager = Pager::new(Box::new(MemStorage::new()), IoStats::new()).unwrap();
        BufferPool::with_shards(pager, capacity, shards)
    }

    #[test]
    fn read_after_write_sees_data() {
        let p = pool(8);
        let id = p.allocate().unwrap();
        p.write_with(id, |data| data[10] = 99).unwrap();
        let v = p.read_with(id, |data| data[10]).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn eviction_keeps_pool_at_capacity() {
        let p = pool(4);
        let ids: Vec<PageId> = (0..10)
            .map(|i| {
                let id = p.allocate().unwrap();
                p.write_with(id, |d| d[0] = i as u8 + 1).unwrap();
                id
            })
            .collect();
        assert!(p.cached_frames() <= 4);
        // Every page still readable with its data after eviction.
        for (i, &id) in ids.iter().enumerate() {
            let v = p.read_with(id, |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1);
        }
    }

    #[test]
    fn misses_require_device_reads() {
        // One shard so eviction order is the plain global LRU.
        let p = sharded_pool(4, 1);
        let ids: Vec<PageId> = (0..12).map(|_| p.allocate().unwrap()).collect();
        for &id in &ids {
            p.write_with(id, |d| d[0] = 1).unwrap();
        }
        let before = p.io_snapshot();
        // First id was evicted long ago — reading it is a miss.
        p.read_with(ids[0], |_| ()).unwrap();
        let after = p.io_snapshot();
        assert_eq!(after.cache_misses, before.cache_misses + 1);
        assert_eq!(after.blocks_read, before.blocks_read + 1);
    }

    #[test]
    fn cache_hits_counted() {
        let p = pool(8);
        let id = p.allocate().unwrap();
        p.write_with(id, |d| d[0] = 1).unwrap();
        p.read_with(id, |_| ()).unwrap();
        let snap = p.io_snapshot();
        assert!(snap.cache_hits >= 1);
    }

    #[test]
    fn flush_persists_through_pager() {
        let p = pool(8);
        let id = p.allocate().unwrap();
        p.write_with(id, |d| d[0] = 77).unwrap();
        let before = p.io_snapshot().blocks_written;
        p.flush().unwrap();
        assert!(p.io_snapshot().blocks_written > before);
    }

    #[test]
    fn lru_prefers_old_pages() {
        let p = sharded_pool(4, 1);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate().unwrap()).collect();
        // Keep touching ids[0] while allocating more; ids[0] should stay.
        for _ in 0..6 {
            p.read_with(ids[0], |_| ()).unwrap();
            p.allocate().unwrap();
        }
        let before = p.io_snapshot();
        p.read_with(ids[0], |_| ()).unwrap();
        let after = p.io_snapshot();
        assert_eq!(
            after.cache_misses, before.cache_misses,
            "ids[0] must still be cached"
        );
    }

    #[test]
    fn shard_count_is_power_of_two_and_capacity_bounded() {
        let p = sharded_pool(64, 5);
        // 5 rounds up to 8; 64 / 4-per-shard allows 16, so 8 stands.
        assert_eq!(p.shard_count(), 8);
        // Tiny capacity forces a single shard regardless of request.
        let p = sharded_pool(4, 16);
        assert_eq!(p.shard_count(), 1);
        // Default constructor never exceeds capacity / MIN_FRAMES_PER_SHARD.
        let p = pool(8);
        assert!(p.shard_count() <= 2);
    }

    #[test]
    fn sharded_pool_respects_total_capacity() {
        let p = sharded_pool(16, 4);
        assert_eq!(p.shard_count(), 4);
        for i in 0..200 {
            let id = p.allocate().unwrap();
            p.write_with(id, |d| d[0] = i as u8).unwrap();
        }
        assert!(
            p.cached_frames() <= 16,
            "cached {} frames",
            p.cached_frames()
        );
    }

    #[test]
    fn sharded_pool_preserves_data_across_evictions() {
        let p = sharded_pool(16, 4);
        let ids: Vec<PageId> = (0..100)
            .map(|i| {
                let id = p.allocate().unwrap();
                p.write_with(id, |d| {
                    d[0] = (i % 251) as u8;
                    d[PAGE_SIZE - 1] = (i % 7) as u8;
                })
                .unwrap();
                id
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let (a, b) = p.read_with(id, |d| (d[0], d[PAGE_SIZE - 1])).unwrap();
            assert_eq!(a, (i % 251) as u8);
            assert_eq!(b, (i % 7) as u8);
        }
    }

    #[test]
    fn concurrent_hits_on_distinct_shards() {
        use std::sync::Arc;
        let p = Arc::new(sharded_pool(64, 4));
        let ids: Vec<PageId> = (0..16).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write_with(id, |d| d[0] = i as u8).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = Arc::clone(&p);
                let ids = ids.clone();
                s.spawn(move || {
                    for round in 0..500 {
                        let i = (t + round) % ids.len();
                        let v = p.read_with(ids[i], |d| d[0]).unwrap();
                        assert_eq!(v, i as u8);
                    }
                });
            }
        });
        let snap = p.io_snapshot();
        assert!(snap.cache_hits >= 2000, "hits: {}", snap.cache_hits);
    }
}

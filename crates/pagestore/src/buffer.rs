//! An LRU buffer pool over the [`Pager`].
//!
//! Access is closure-scoped (`read_with` / `write_with`) so callers never
//! hold references into the pool across evictions. All state sits behind a
//! single mutex — the engine is thread-safe but serialized, which matches
//! the paper's single-threaded interpreter.

use crate::error::StoreResult;
use crate::pager::{PageId, Pager};
use crate::stats::IoSnapshot;
use crate::PAGE_SIZE;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default number of cached pages (4 MiB at 4 KiB pages).
pub const DEFAULT_CAPACITY: usize = 1024;

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    last_used: u64,
}

struct PoolInner {
    pager: Pager,
    frames: HashMap<PageId, Frame>,
    tick: u64,
    capacity: usize,
}

/// A buffer pool: caches page frames, evicting the least recently used
/// (writing it back first when dirty).
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool").finish_non_exhaustive()
    }
}

impl BufferPool {
    /// Wrap a pager with the given frame capacity.
    pub fn new(pager: Pager, capacity: usize) -> Self {
        assert!(capacity >= 4, "buffer pool needs at least 4 frames");
        BufferPool {
            inner: Mutex::new(PoolInner { pager, frames: HashMap::new(), tick: 0, capacity }),
        }
    }

    /// Run `f` over the page's bytes.
    pub fn read_with<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> StoreResult<R> {
        let mut inner = self.inner.lock();
        inner.touch(id)?;
        let frame = inner.frames.get(&id).expect("frame just loaded");
        let r = f(&frame.data);
        inner.evict_to_capacity()?;
        Ok(r)
    }

    /// Run `f` over the page's bytes mutably; the page is marked dirty.
    pub fn write_with<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> StoreResult<R> {
        let mut inner = self.inner.lock();
        inner.touch(id)?;
        let frame = inner.frames.get_mut(&id).expect("frame just loaded");
        frame.dirty = true;
        let r = f(&mut frame.data);
        inner.evict_to_capacity()?;
        Ok(r)
    }

    /// Allocate a fresh zeroed page (cached dirty, so it reaches the
    /// device on flush/eviction).
    pub fn allocate(&self) -> StoreResult<PageId> {
        let mut inner = self.inner.lock();
        let id = inner.pager.allocate()?;
        let tick = inner.bump_tick();
        inner.frames.insert(
            id,
            Frame { data: vec![0u8; PAGE_SIZE].into_boxed_slice(), dirty: true, last_used: tick },
        );
        inner.evict_to_capacity()?;
        Ok(id)
    }

    /// Look up a named tree's root page.
    pub fn tree_root(&self, name: &str) -> Option<PageId> {
        self.inner.lock().pager.tree_root(name)
    }

    /// Register or move a named tree's root page.
    pub fn set_tree_root(&self, name: &str, root: PageId) -> StoreResult<()> {
        self.inner.lock().pager.set_tree_root(name, root)
    }

    /// Names of all registered trees.
    pub fn tree_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .pager
            .catalog()
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Write back all dirty frames and sync the device.
    pub fn flush(&self) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        let dirty: Vec<PageId> = inner
            .frames
            .iter()
            .filter(|(_, fr)| fr.dirty)
            .map(|(&id, _)| id)
            .collect();
        for id in dirty {
            inner.write_back(id)?;
        }
        inner.pager.flush()
    }

    /// Snapshot of the cumulative I/O counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.inner.lock().pager.stats().snapshot()
    }

    /// Number of allocated pages (including meta).
    pub fn page_count(&self) -> u64 {
        self.inner.lock().pager.page_count()
    }

    /// Number of frames currently cached (for tests).
    pub fn cached_frames(&self) -> usize {
        self.inner.lock().frames.len()
    }
}

impl PoolInner {
    fn bump_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Ensure the page is cached and update its LRU stamp.
    fn touch(&mut self, id: PageId) -> StoreResult<()> {
        let tick = self.bump_tick();
        if let Some(frame) = self.frames.get_mut(&id) {
            frame.last_used = tick;
            self.pager.stats().record_hit();
            return Ok(());
        }
        self.pager.stats().record_miss();
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        self.pager.read_page(id, &mut data)?;
        self.frames.insert(id, Frame { data, dirty: false, last_used: tick });
        Ok(())
    }

    fn write_back(&mut self, id: PageId) -> StoreResult<()> {
        // Take the buffer out to satisfy the borrow checker, then restore.
        let mut frame = self.frames.remove(&id).expect("write_back of uncached page");
        self.pager.write_page_raw(id, &frame.data)?;
        frame.dirty = false;
        self.frames.insert(id, frame);
        Ok(())
    }

    fn evict_to_capacity(&mut self) -> StoreResult<()> {
        while self.frames.len() > self.capacity {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(&id, _)| id)
                .expect("non-empty frames");
            if self.frames.get(&victim).expect("victim cached").dirty {
                self.write_back(victim)?;
            }
            self.frames.remove(&victim);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoStats;
    use crate::storage::MemStorage;

    fn pool(capacity: usize) -> BufferPool {
        let pager = Pager::new(Box::new(MemStorage::new()), IoStats::new()).unwrap();
        BufferPool::new(pager, capacity)
    }

    #[test]
    fn read_after_write_sees_data() {
        let p = pool(8);
        let id = p.allocate().unwrap();
        p.write_with(id, |data| data[10] = 99).unwrap();
        let v = p.read_with(id, |data| data[10]).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn eviction_keeps_pool_at_capacity() {
        let p = pool(4);
        let ids: Vec<PageId> = (0..10)
            .map(|i| {
                let id = p.allocate().unwrap();
                p.write_with(id, |d| d[0] = i as u8 + 1).unwrap();
                id
            })
            .collect();
        assert!(p.cached_frames() <= 4);
        // Every page still readable with its data after eviction.
        for (i, &id) in ids.iter().enumerate() {
            let v = p.read_with(id, |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1);
        }
    }

    #[test]
    fn misses_require_device_reads() {
        let p = pool(4);
        let ids: Vec<PageId> = (0..12).map(|_| p.allocate().unwrap()).collect();
        for &id in &ids {
            p.write_with(id, |d| d[0] = 1).unwrap();
        }
        let before = p.io_snapshot();
        // First id was evicted long ago — reading it is a miss.
        p.read_with(ids[0], |_| ()).unwrap();
        let after = p.io_snapshot();
        assert_eq!(after.cache_misses, before.cache_misses + 1);
        assert_eq!(after.blocks_read, before.blocks_read + 1);
    }

    #[test]
    fn cache_hits_counted() {
        let p = pool(8);
        let id = p.allocate().unwrap();
        p.write_with(id, |d| d[0] = 1).unwrap();
        p.read_with(id, |_| ()).unwrap();
        let snap = p.io_snapshot();
        assert!(snap.cache_hits >= 1);
    }

    #[test]
    fn flush_persists_through_pager() {
        let p = pool(8);
        let id = p.allocate().unwrap();
        p.write_with(id, |d| d[0] = 77).unwrap();
        let before = p.io_snapshot().blocks_written;
        p.flush().unwrap();
        assert!(p.io_snapshot().blocks_written > before);
    }

    #[test]
    fn lru_prefers_old_pages() {
        let p = pool(4);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate().unwrap()).collect();
        // Keep touching ids[0] while allocating more; ids[0] should stay.
        for _ in 0..6 {
            p.read_with(ids[0], |_| ()).unwrap();
            p.allocate().unwrap();
        }
        let before = p.io_snapshot();
        p.read_with(ids[0], |_| ()).unwrap();
        let after = p.io_snapshot();
        assert_eq!(after.cache_misses, before.cache_misses, "ids[0] must still be cached");
    }
}

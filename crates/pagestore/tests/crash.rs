//! Crash-consistency sweep and fault-injection regression tests.
//!
//! The sweep replays one deterministic workload (tree inserts/deletes,
//! segment put/overwrite/delete, vacuum, close) over [`FaultStorage`],
//! crashing at *every* write index the fault-free run performs. Each
//! crash freezes the device image mid-write (torn at a 512-byte
//! boundary); the image is then reopened and checked against the
//! store's documented crash invariants:
//!
//! - open succeeds or fails with a typed [`StoreError`] — never a panic;
//! - tree scans terminate with data or a typed error;
//! - every catalog entry reads back as a byte-exact previously-written
//!   version of that segment, or is reported absent/invalid;
//! - the free list never overlaps a readable segment's extent;
//! - a vacuum of the reopened store leaves all of the above true.
//!
//! Content equality is relaxed (but never the no-panic / typed-error /
//! no-overlap invariants) for crash points inside the vacuum window:
//! vacuum is documented as not crash-atomic.

use xmorph_pagestore::pager::FreeExtent;
use xmorph_pagestore::{
    FaultHandle, FaultScript, FaultStorage, IoStats, Store, StoreError, PAGE_SIZE,
};

/// Deterministic pseudo-random segment payload.
fn seg_bytes(tag: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag))
        .collect()
}

fn key(i: u32) -> Vec<u8> {
    format!("key{i:04}").into_bytes()
}

fn val(i: u32) -> Vec<u8> {
    vec![i as u8; 100 + (i as usize * 7) % 200]
}

/// Write-index marks captured on the fault-free recording run.
#[derive(Default, Clone, Copy)]
struct Marks {
    /// Writes performed when the mid-workload flush barrier completed.
    flush_done: u64,
    /// Writes performed when vacuum began (content checks relax here).
    vacuum_start: u64,
}

/// The workload under test: shred-like segment traffic plus tree churn,
/// a durability barrier, mutations, a vacuum, and a clean close. Every
/// step propagates errors — under an injected crash this must return
/// `Err`, never panic.
fn workload(
    storage: Box<dyn xmorph_pagestore::storage::Storage>,
    handle: Option<&FaultHandle>,
    marks: &mut Marks,
) -> Result<(), StoreError> {
    // A pool smaller than the working set, so eviction write-backs land
    // mid-workload and the sweep crosses them too.
    let store = Store::options()
        .capacity(8)
        .shards(1)
        .with_storage(storage)?;
    let tree = store.open_tree("t")?;
    for i in 0..150u32 {
        tree.insert(&key(i), &val(i))?;
    }
    store.put_segment("seg/a", &seg_bytes(0xA1, 3000))?;
    store.put_segment("seg/b", &seg_bytes(0xB1, 9000))?;
    store.flush()?;
    if let Some(h) = handle {
        marks.flush_done = h.writes();
    }
    for i in (0..150u32).step_by(3) {
        tree.delete(&key(i))?;
    }
    for i in 150..190u32 {
        tree.insert(&key(i), &val(i))?;
    }
    store.put_segment("seg/a", &seg_bytes(0xA2, 5000))?;
    store.delete_segment("seg/b")?;
    if let Some(h) = handle {
        marks.vacuum_start = h.writes();
    }
    store.vacuum()?;
    store.put_segment("seg/c", &seg_bytes(0xC1, 2000))?;
    store.close()?;
    Ok(())
}

/// Every byte-version each segment name was ever written with.
fn known_versions() -> Vec<(&'static str, Vec<Vec<u8>>)> {
    vec![
        ("seg/a", vec![seg_bytes(0xA1, 3000), seg_bytes(0xA2, 5000)]),
        ("seg/b", vec![seg_bytes(0xB1, 9000)]),
        ("seg/c", vec![seg_bytes(0xC1, 2000)]),
    ]
}

fn overlaps(a: FreeExtent, b: FreeExtent) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

/// Reopen a frozen crash image and check every invariant the store
/// promises about torn shutdowns. `relax_content` admits unknown
/// segment bytes (vacuum-window crashes); all structural invariants
/// still apply.
fn check_reopened(image: Vec<u8>, crash_at: u64, relax_content: bool) {
    let versions = known_versions();
    let (storage, _handle) = FaultStorage::with_image(image, FaultScript::none());
    let store = match Store::options()
        .capacity(24)
        .with_storage(Box::new(storage))
    {
        Ok(s) => s,
        // A typed refusal to open a torn image is within contract.
        Err(_) => return,
    };

    for pass in 0..2 {
        // Tree scans must terminate (no panic, no unbounded sibling
        // walk) even over torn pages.
        if let Ok(tree) = store.open_tree("t") {
            let mut it = tree.range(..);
            let mut seen = 0u64;
            // `Err` ends the scan too: a typed error is within contract.
            while let Ok(Some(_)) = it.next_entry() {
                seen += 1;
                assert!(
                    seen <= 10_000,
                    "crash@{crash_at}: tree scan did not terminate"
                );
            }
        }

        let entries = match store.segment_entries() {
            Ok(e) => e,
            Err(_) => return,
        };
        let mut live: Vec<FreeExtent> = Vec::new();
        for (name, entry) in &entries {
            // Absent or typed-invalid is the documented signature of a
            // torn shutdown; only readable segments are constrained.
            if let Ok(Some(data)) = store.get_segment(name, false) {
                let ok = versions
                    .iter()
                    .find(|(n, _)| n == name)
                    .is_some_and(|(_, vs)| vs.iter().any(|v| v[..] == data[..]));
                assert!(
                    relax_content || ok,
                    "crash@{crash_at} pass {pass}: segment {name:?} read back \
                     {} bytes matching no version ever written",
                    data.len()
                );
                assert!(
                    entry.first_page >= 1 && entry.first_page + entry.pages <= store.page_count(),
                    "crash@{crash_at} pass {pass}: readable segment {name:?} extent \
                     ({}, {}) exceeds page count {}",
                    entry.first_page,
                    entry.pages,
                    store.page_count()
                );
                live.push((entry.first_page, entry.pages));
            }
        }
        for free in store.free_extents() {
            for &seg in &live {
                assert!(
                    !overlaps(free, seg),
                    "crash@{crash_at} pass {pass}: free extent ({}, {}) overlaps live \
                     segment extent ({}, {})",
                    free.0,
                    free.1,
                    seg.0,
                    seg.1
                );
            }
        }

        // Second pass re-checks everything after vacuuming the
        // reopened store: recovery compaction must not lose data.
        if pass == 0 && store.vacuum().is_err() {
            return;
        }
    }
}

/// The tentpole: crash at every write index of the workload, reopen,
/// check invariants. The fault-free recording run pins the sweep width
/// and the phase boundaries.
#[test]
fn exhaustive_crash_sweep_reopens_consistently() {
    let mut marks = Marks::default();
    let (storage, handle) = FaultStorage::new(FaultScript::none());
    workload(Box::new(storage), Some(&handle), &mut marks)
        .expect("fault-free workload must succeed");
    let total_writes = handle.writes();
    assert!(
        total_writes > 50,
        "workload too small to sweep ({total_writes} writes)"
    );
    assert!(marks.flush_done > 0 && marks.vacuum_start >= marks.flush_done);

    for k in 0..total_writes {
        let script = FaultScript::none().crash_at(k).torn_seed(0xC0FFEE ^ k);
        let (storage, handle) = FaultStorage::new(script);
        let mut ignored = Marks::default();
        let res = workload(Box::new(storage), None, &mut ignored);
        assert!(
            res.is_err(),
            "crash@{k}: workload survived a crashed device"
        );
        assert!(handle.crashed(), "crash@{k}: cut never fired");
        check_reopened(handle.image(), k, k >= marks.vacuum_start);
    }
}

/// A handful of crash points re-swept across torn-pattern seeds: the
/// invariants may not depend on which prefix of the cut write landed.
#[test]
fn torn_write_patterns_hold_invariants_across_seeds() {
    let mut marks = Marks::default();
    let (storage, handle) = FaultStorage::new(FaultScript::none());
    workload(Box::new(storage), Some(&handle), &mut marks).unwrap();
    let total_writes = handle.writes();

    let points = [
        1,
        marks.flush_done.saturating_sub(1),
        marks.flush_done + 1,
        marks.vacuum_start + 1,
        total_writes - 1,
    ];
    for &k in &points {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let script = FaultScript::none().crash_at(k).torn_seed(seed);
            let (storage, handle) = FaultStorage::new(script);
            let mut ignored = Marks::default();
            assert!(workload(Box::new(storage), None, &mut ignored).is_err());
            check_reopened(handle.image(), k, k >= marks.vacuum_start);
        }
    }
}

/// Regression (buffer.rs): an eviction write-back failure propagates as
/// a typed error from the mutating call, and the dirty page survives in
/// cache — a later flush retries and the data remains readable.
#[test]
fn eviction_write_error_propagates_and_data_survives() {
    // Recording run: learn which write index is the first eviction
    // write-back (store creation and tree registration write too).
    let first_eviction = {
        let (storage, h) = FaultStorage::new(FaultScript::none());
        let store = Store::options()
            .capacity(4)
            .shards(1)
            .with_storage(Box::new(storage))
            .unwrap();
        let tree = store.open_tree("t").unwrap();
        let base = h.writes();
        for i in 0..200u32 {
            tree.insert(&key(i), &val(i)).unwrap();
            if h.writes() > base {
                break;
            }
        }
        assert!(h.writes() > base, "tiny pool never evicted during inserts");
        base
    };

    let (storage, _handle) = FaultStorage::new(FaultScript::none().fail_write(first_eviction));
    let store = Store::options()
        .capacity(4)
        .shards(1)
        .with_storage(Box::new(storage))
        .unwrap();
    let tree = store.open_tree("t").unwrap();
    let mut failed = None;
    let mut inserted = Vec::new();
    for i in 0..200u32 {
        match tree.insert(&key(i), &val(i)) {
            Ok(_) => inserted.push(i),
            Err(e) => {
                assert!(matches!(e, StoreError::Io(_)), "unexpected error {e:?}");
                failed = Some(i);
                break;
            }
        }
    }
    let failed = failed.expect("tiny pool never evicted through the failing device");
    // The indexed fault fires once: the retried flush goes through and
    // every successfully-inserted key is still there.
    store.flush().unwrap();
    for &i in &inserted {
        assert_eq!(
            tree.get(&key(i)).unwrap().as_deref(),
            Some(&val(i)[..]),
            "key {i} lost after eviction write failure (failure hit insert {failed})"
        );
    }
}

/// Regression (store.rs): a failed closing flush surfaces from
/// `close()` and does not latch the store shut — the retry succeeds.
#[test]
fn failed_close_reports_and_retries() {
    // Sync 0 pins the fresh device's WAL header at creation; sync 1 is
    // the closing flush under test.
    let (storage, _handle) = FaultStorage::new(FaultScript::none().fail_sync(1));
    let store = Store::options().with_storage(Box::new(storage)).unwrap();
    let tree = store.open_tree("t").unwrap();
    tree.insert(b"k", b"v").unwrap();
    let err = store
        .close()
        .expect_err("close must report the failed sync");
    assert!(matches!(err, StoreError::Io(_)));
    assert!(
        !store.is_closed(),
        "failed close must not latch the store shut"
    );
    store
        .close()
        .expect("retried close must succeed once the fault clears");
    assert!(store.is_closed());
}

/// Regression (store.rs): dropping an unclosed store whose flush fails
/// never panics; the failure is counted in the I/O stats instead.
#[test]
fn drop_with_failing_flush_counts_instead_of_panicking() {
    let stats = IoStats::default();
    {
        // Sync 0 is the WAL-header pin at creation; sync 1 is the
        // drop-path flush under test.
        let (storage, _handle) = FaultStorage::new(FaultScript::none().fail_sync(1));
        let store = Store::options()
            .stats(stats.clone())
            .with_storage(Box::new(storage))
            .unwrap();
        store.open_tree("t").unwrap().insert(b"k", b"v").unwrap();
        // Dropped without close(): best-effort flush hits the failing
        // sync and must swallow it.
    }
    assert_eq!(stats.snapshot().flush_failures, 1);
}

/// Regression (store.rs): an mmap failure on a valid store degrades to
/// a heap read of the same bytes instead of aborting the fetch.
#[test]
fn mmap_failure_degrades_to_heap_read() {
    let (storage, _handle) = FaultStorage::new(FaultScript::none().fail_mmap());
    let store = Store::options().with_storage(Box::new(storage)).unwrap();
    let payload = seg_bytes(0x5E, 6000);
    store.put_segment("seg", &payload).unwrap();
    store.flush().unwrap();
    let data = store
        .get_segment("seg", true)
        .unwrap()
        .expect("segment must read back through the heap fallback");
    assert!(!data.is_mapped());
    assert_eq!(&data[..], &payload[..]);
}

/// Regression (btree.rs): a page whose header is garbage surfaces as
/// [`StoreError::Corrupt`] from reads and scans — never a panic or an
/// unbounded walk.
#[test]
fn garbage_page_header_is_reported_not_panicked() {
    let (storage, handle) = FaultStorage::new(FaultScript::none());
    {
        let store = Store::options().with_storage(Box::new(storage)).unwrap();
        let tree = store.open_tree("t").unwrap();
        for i in 0..300u32 {
            tree.insert(&key(i), &val(i)).unwrap();
        }
        store.close().unwrap();
    }
    let mut image = handle.image();
    // Smash the header of every non-meta page that looks like a tree
    // page; at least the root is guaranteed to be one.
    let mut smashed = 0;
    for page in 1..image.len() / PAGE_SIZE {
        let off = page * PAGE_SIZE;
        if matches!(image[off], 1 | 2) {
            image[off..off + 16].copy_from_slice(&[0xEE; 16]);
            smashed += 1;
        }
    }
    assert!(smashed > 0, "no tree pages found to corrupt");

    let (storage, _h) = FaultStorage::with_image(image, FaultScript::none());
    let opened = Store::options().with_storage(Box::new(storage));
    if let Ok(store) = opened {
        if let Ok(tree) = store.open_tree("t") {
            assert!(matches!(tree.get(&key(0)), Ok(None) | Err(_)));
            let mut it = tree.range(..);
            loop {
                match it.next_entry() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        assert!(matches!(e, StoreError::Corrupt(_) | StoreError::Io(_)));
                        break;
                    }
                }
            }
        }
    }
}

/// Regression (pager.rs): a meta page declaring zero pages is rejected
/// with a typed error rather than wrapping allocation math.
#[test]
fn zero_page_count_meta_is_rejected() {
    let mut image = vec![0u8; PAGE_SIZE];
    image[..8].copy_from_slice(b"XMPHSTO1");
    // page_count at offset 8 stays zero.
    let (storage, _h) = FaultStorage::with_image(image, FaultScript::none());
    let err = Store::options()
        .with_storage(Box::new(storage))
        .expect_err("zero page count must not open");
    assert!(matches!(err, StoreError::BadDatabase(_)), "got {err:?}");
}

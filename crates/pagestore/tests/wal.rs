//! WAL recovery properties: crash anywhere, reopen to a committed
//! state — never a hybrid — and recover idempotently.
//!
//! The sweep harness runs a transactional workload over [`FaultStorage`]
//! (whose `is_persistent() == true` enables the WAL), crashes it at
//! every write index and at every sync index, reopens the frozen image,
//! and checks that the visible tree contents equal exactly one of the
//! states that existed at a commit boundary. Group commit means the
//! recovered state can be *any* committed prefix (commits between group
//! syncs are not yet durable), but it can never mix two transactions.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xmorph_pagestore::storage::Storage;
use xmorph_pagestore::{FaultHandle, FaultScript, FaultStorage, Store, StoreError, StoreResult};

type Model = BTreeMap<Vec<u8>, Vec<u8>>;

/// One transaction: `(key_tag, op_tag)` pairs; `op_tag % 4 == 0` is a
/// delete, anything else an insert.
type Batch = Vec<(u8, u8)>;

fn key(tag: u8) -> Vec<u8> {
    format!("key{:03}", tag % 24).into_bytes()
}

/// Values encode the batch index, so a page image from batch `i`
/// surviving next to one from batch `j` (a hybrid state) produces a
/// contents map matching no committed prefix.
fn value(batch: usize, tag: u8) -> Vec<u8> {
    vec![batch as u8 ^ tag; 16 + (tag as usize % 48)]
}

fn open_wal_store(storage: Box<dyn Storage>) -> StoreResult<Store> {
    Store::options()
        .capacity(32)
        .shards(1)
        .wal_pages(128)
        .with_storage(storage)
}

/// Run the batches as one transaction each, flushing (group sync +
/// checkpoint) after every other commit so the sweep crosses appends,
/// home writes, and checkpoints. Returns the `(write, sync)` indexes
/// recorded right after store setup became durable — crash points below
/// them may refuse to open (store creation is not itself WAL-covered).
fn workload(
    storage: Box<dyn Storage>,
    handle: Option<&FaultHandle>,
    batches: &[Batch],
) -> StoreResult<(u64, u64)> {
    let store = open_wal_store(storage)?;
    // Tree creation inside a transaction: the catalog update rides the
    // WAL like every later mutation.
    let setup = store.begin()?;
    let tree = store.open_tree("t")?;
    setup.commit()?;
    store.flush()?;
    let setup_done = handle.map_or((0, 0), |h| (h.writes(), h.syncs()));
    for (bi, batch) in batches.iter().enumerate() {
        let txn = store.begin()?;
        for &(ktag, op) in batch {
            if op % 4 == 0 {
                tree.delete(&key(ktag))?;
            } else {
                tree.insert(&key(ktag), &value(bi, ktag))?;
            }
        }
        txn.commit()?;
        if bi % 2 == 1 {
            store.flush()?;
        }
    }
    store.close()?;
    Ok(setup_done)
}

/// The model state after each commit boundary: `states[0]` is the empty
/// pre-workload store, `states[b]` the contents after batch `b - 1`.
fn committed_states(batches: &[Batch]) -> Vec<Model> {
    let mut states = vec![Model::new()];
    let mut m = Model::new();
    for (bi, batch) in batches.iter().enumerate() {
        for &(ktag, op) in batch {
            if op % 4 == 0 {
                m.remove(&key(ktag));
            } else {
                m.insert(key(ktag), value(bi, ktag));
            }
        }
        states.push(m.clone());
    }
    states
}

/// Read the full tree contents of a reopened image. `Err` means the
/// image refused to open or scan — allowed only for pre-setup crashes.
fn contents(image: Vec<u8>) -> StoreResult<Model> {
    let (storage, _h) = FaultStorage::with_image(image, FaultScript::none());
    let store = open_wal_store(Box::new(storage))?;
    let mut m = Model::new();
    if !store.tree_names().iter().any(|n| n == "t") {
        return Ok(m);
    }
    let tree = store.open_tree("t")?;
    let mut it = tree.range(..);
    while let Some((k, v)) = it.next_entry()? {
        m.insert(k, v);
    }
    Ok(m)
}

fn assert_committed_state(
    got: &StoreResult<Model>,
    states: &[Model],
    setup_done: u64,
    point: &str,
    k: u64,
) {
    match got {
        Ok(m) => {
            assert!(
                states.contains(m),
                "{point}@{k}: recovered contents ({} keys) match no commit \
                 boundary — a hybrid state",
                m.len()
            );
        }
        Err(StoreError::Io(_)) | Err(StoreError::BadDatabase(_)) | Err(StoreError::Corrupt(_)) => {
            assert!(
                k < setup_done,
                "{point}@{k}: post-setup crash image refused to open: {got:?}"
            );
        }
        Err(e) => panic!("{point}@{k}: unexpected error class {e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Crash at every write index *and* every sync index of a random
    // transactional workload; the reopened image must show exactly a
    // committed prefix of the batches.
    #[test]
    fn crash_anywhere_recovers_a_committed_state(
        batches in prop::collection::vec(
            prop::collection::vec((any::<u8>(), any::<u8>()), 1..6),
            1..6,
        )
    ) {
        let states = committed_states(&batches);

        // Fault-free recording run pins the sweep width.
        let (storage, handle) = FaultStorage::new(FaultScript::none());
        let (setup_writes, setup_syncs) = workload(Box::new(storage), Some(&handle), &batches)
            .expect("fault-free workload must succeed");
        let (total_writes, total_syncs) = (handle.writes(), handle.syncs());
        prop_assert!(total_writes > 4);

        for k in 0..total_writes {
            let script = FaultScript::none().crash_at(k).torn_seed(0xC0FFEE ^ k);
            let (storage, handle) = FaultStorage::new(script);
            prop_assert!(workload(Box::new(storage), None, &batches).is_err());
            let got = contents(handle.image());
            assert_committed_state(&got, &states, setup_writes, "write", k);
        }
        for k in 0..total_syncs {
            let script = FaultScript::none().crash_at_sync(k);
            let (storage, handle) = FaultStorage::new(script);
            prop_assert!(workload(Box::new(storage), None, &batches).is_err());
            let got = contents(handle.image());
            assert_committed_state(&got, &states, setup_syncs, "sync", k);
        }
    }
}

/// Recovery is idempotent: replaying a crash image once, twice, or
/// replaying the already-replayed image yields identical contents at
/// every crash point of a fixed workload.
#[test]
fn recovery_is_idempotent_at_every_crash_point() {
    let batches: Vec<Batch> = (0..4u8)
        .map(|b| (0..4u8).map(|i| (b * 4 + i, 1)).collect())
        .collect();
    let states = committed_states(&batches);

    let (storage, handle) = FaultStorage::new(FaultScript::none());
    let (setup_writes, _) = workload(Box::new(storage), Some(&handle), &batches).unwrap();
    let total_writes = handle.writes();

    for k in 0..total_writes {
        let script = FaultScript::none().crash_at(k).torn_seed(0xBEEF ^ k);
        let (storage, handle) = FaultStorage::new(script);
        assert!(workload(Box::new(storage), None, &batches).is_err());
        let image = handle.image();

        // First recovery, capturing the post-replay device image.
        let (storage, h1) = FaultStorage::with_image(image.clone(), FaultScript::none());
        let first = match open_wal_store(Box::new(storage)).and_then(|store| {
            let c = contents_of(&store)?;
            drop(store);
            Ok(c)
        }) {
            Ok(c) => Some((c, h1.image())),
            Err(_) => {
                assert!(
                    k < setup_writes,
                    "write@{k}: post-setup image refused to open"
                );
                None
            }
        };
        let Some((first, replayed_image)) = first else {
            continue;
        };
        assert_committed_state(&Ok(first.clone()), &states, setup_writes, "write", k);

        // Second independent recovery of the *original* image.
        let again = contents(image).expect("second recovery of the same image");
        assert_eq!(first, again, "write@{k}: recovery is not deterministic");

        // Recovery of the already-replayed image (crash during
        // recovery, then recover again) must also agree.
        let twice = contents(replayed_image).expect("recovery of a replayed image");
        assert_eq!(first, twice, "write@{k}: recover-twice diverged");
    }
}

fn contents_of(store: &Store) -> StoreResult<Model> {
    let mut m = Model::new();
    if !store.tree_names().iter().any(|n| n == "t") {
        return Ok(m);
    }
    let tree = store.open_tree("t")?;
    let mut it = tree.range(..);
    while let Some((k, v)) = it.next_entry()? {
        m.insert(k, v);
    }
    Ok(m)
}

/// Group commit under contention: N threads each run M transactions
/// writing a two-key pair (and rolling back every third), interleaved
/// through the single-writer gate. Afterwards every committed pair is
/// fully present, every rolled-back pair fully absent — all-or-nothing
/// per transaction — both live and after a reopen of the device image.
#[test]
fn group_commit_concurrency_is_all_or_nothing() {
    const THREADS: u8 = 4;
    const TXNS: u8 = 25;

    let (storage, handle) = FaultStorage::new(FaultScript::none());
    let store = open_wal_store(Box::new(storage)).unwrap();
    // Create the tree before the threads race to first-create it.
    store.open_tree("pairs").unwrap();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = store.clone();
            s.spawn(move || {
                for i in 0..TXNS {
                    let txn = store.begin().unwrap();
                    // Fresh handle per txn: rollback invalidates cached
                    // tree roots.
                    let tree = store.open_tree("pairs").unwrap();
                    let a = format!("a/{t:02}/{i:02}");
                    let b = format!("b/{t:02}/{i:02}");
                    let v = vec![t ^ i; 64];
                    tree.insert(a.as_bytes(), &v).unwrap();
                    tree.insert(b.as_bytes(), &v).unwrap();
                    if i % 3 == 2 {
                        txn.rollback();
                    } else {
                        txn.commit().unwrap();
                    }
                }
            });
        }
    });
    store.close().unwrap();

    let check = |store: &Store| {
        let tree = store.open_tree("pairs").unwrap();
        for t in 0..THREADS {
            for i in 0..TXNS {
                let a = tree.get(format!("a/{t:02}/{i:02}").as_bytes()).unwrap();
                let b = tree.get(format!("b/{t:02}/{i:02}").as_bytes()).unwrap();
                if i % 3 == 2 {
                    assert!(
                        a.is_none() && b.is_none(),
                        "rolled-back txn {t}/{i} left data behind"
                    );
                } else {
                    let v = [t ^ i; 64];
                    assert_eq!(a.as_deref(), Some(&v[..]), "txn {t}/{i} lost key a");
                    assert_eq!(b.as_deref(), Some(&v[..]), "txn {t}/{i} lost key b");
                }
            }
        }
    };
    check(&store);

    // Same invariants through a cold reopen of the synced image.
    let image = handle.image();
    drop(store);
    let (storage, _h) = FaultStorage::with_image(image, FaultScript::none());
    let reopened = open_wal_store(Box::new(storage)).unwrap();
    check(&reopened);
}

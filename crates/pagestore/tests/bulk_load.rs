//! A bulk-loaded B+tree must be indistinguishable from an incrementally
//! built one: same keys in, same `get`/`range`/`scan_prefix` out, at any
//! fill factor. The bulk loader packs sorted pairs into leaves bottom-up
//! (no root-to-leaf descents), so these properties pin down that the
//! packing — leaf chaining, separator choice, interior stacking,
//! overflow spilling — reproduces the incremental tree's contents
//! exactly.

use proptest::prelude::*;
use xmorph_pagestore::{Store, DEFAULT_FILL};

/// Sorted, deduplicated key/value pairs over a tiny alphabet (so prefix
/// collisions and shared separators actually happen), with value sizes
/// crossing the overflow threshold.
fn pairs_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::btree_map(
        proptest::collection::vec(0u8..4, 1..8),
        0usize..1400,
        0..120,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(k, vlen)| {
                let seed = k.first().copied().unwrap_or(0);
                let v: Vec<u8> = (0..vlen)
                    .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
                    .collect();
                (k, v)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bulk_load_matches_incremental(pairs in pairs_strategy(), fill_pct in 50u32..=100u32) {
        let fill = fill_pct as f64 / 100.0;
        let bulk_store = Store::in_memory();
        let bulk = bulk_store.open_tree("t").unwrap();
        bulk.bulk_load(pairs.clone(), fill).unwrap();

        let inc_store = Store::in_memory();
        let inc = inc_store.open_tree("t").unwrap();
        for (k, v) in &pairs {
            inc.insert(k, v).unwrap();
        }

        prop_assert_eq!(bulk.len().unwrap(), inc.len().unwrap());
        for (k, v) in &pairs {
            prop_assert_eq!(bulk.get(k).unwrap().as_deref(), Some(v.as_slice()));
        }
        let a: Vec<_> = bulk.range(..).collect();
        let b: Vec<_> = inc.range(..).collect();
        prop_assert_eq!(a, b);
        for p in [&b""[..], b"\x00", b"\x01\x02"] {
            let a: Vec<_> = bulk.scan_prefix(p).collect();
            let b: Vec<_> = inc.scan_prefix(p).collect();
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn bulk_load_builds_multi_level_tree() {
    let store = Store::in_memory();
    let t = store.open_tree("t").unwrap();
    let pairs: Vec<_> = (0u32..5000)
        .map(|i| (i.to_be_bytes().to_vec(), i.to_le_bytes().to_vec()))
        .collect();
    t.bulk_load(pairs, 0.6).unwrap();
    assert_eq!(t.len().unwrap(), 5000);
    assert_eq!(
        t.get(&2500u32.to_be_bytes()).unwrap(),
        Some(2500u32.to_le_bytes().to_vec())
    );
    let scanned: Vec<_> = t.range(..).map(|(k, _)| k).collect();
    assert_eq!(scanned.len(), 5000);
    assert!(scanned.windows(2).all(|w| w[0] < w[1]), "ordered scan");
}

#[test]
fn bulk_load_rejects_unsorted_or_duplicate_input() {
    let store = Store::in_memory();
    let t = store.open_tree("t").unwrap();
    let unsorted = vec![(b"b".to_vec(), Vec::new()), (b"a".to_vec(), Vec::new())];
    assert!(t.bulk_load(unsorted, DEFAULT_FILL).is_err());
    let dup = vec![(b"a".to_vec(), Vec::new()), (b"a".to_vec(), Vec::new())];
    assert!(t.bulk_load(dup, DEFAULT_FILL).is_err());
}

#[test]
fn bulk_load_spills_large_values_to_overflow() {
    let store = Store::in_memory();
    let t = store.open_tree("t").unwrap();
    let big = vec![7u8; 50_000];
    t.bulk_load(vec![(b"k".to_vec(), big.clone())], DEFAULT_FILL)
        .unwrap();
    assert_eq!(t.get(b"k").unwrap(), Some(big));
}

#[test]
fn bulk_load_empty_input_yields_empty_tree() {
    let store = Store::in_memory();
    let t = store.open_tree("t").unwrap();
    t.bulk_load(Vec::new(), DEFAULT_FILL).unwrap();
    assert_eq!(t.len().unwrap(), 0);
    assert_eq!(t.range(..).count(), 0);
}

#[test]
fn next_key_visits_the_same_keys_as_entries() {
    let store = Store::in_memory();
    let t = store.open_tree("t").unwrap();
    for i in 0u32..800 {
        t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    let keys: Vec<_> = t.range(..).map(|(k, _)| k).collect();
    let mut it = t.scan_prefix(b"");
    let mut got = Vec::new();
    while let Some(k) = it.next_key().unwrap() {
        got.push(k);
    }
    assert_eq!(got, keys);
}

//! The store is `Send + Sync` (the buffer pool shards its frame table by
//! page id); these tests verify multi-threaded use is safe and
//! linearizable enough for the engine's needs.

use std::sync::Arc;
use xmorph_pagestore::Store;

#[test]
fn threads_writing_separate_trees() {
    let store = Store::in_memory();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let store = store.clone();
            std::thread::spawn(move || {
                let tree = store.open_tree(&format!("tree-{t}")).unwrap();
                for i in 0..2000u32 {
                    tree.insert(&i.to_be_bytes(), format!("t{t}-v{i}").as_bytes())
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..4 {
        let tree = store.open_tree(&format!("tree-{t}")).unwrap();
        assert_eq!(tree.len().unwrap(), 2000);
        assert_eq!(
            tree.get(&42u32.to_be_bytes()).unwrap().unwrap(),
            format!("t{t}-v42").as_bytes()
        );
    }
}

#[test]
fn concurrent_readers_on_shared_tree() {
    let store = Store::in_memory();
    let tree = store.open_tree("shared").unwrap();
    for i in 0..5000u32 {
        tree.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    let tree = Arc::new(tree);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let mut hits = 0usize;
                for i in (t..5000u32).step_by(8) {
                    if tree.get(&i.to_be_bytes()).unwrap().is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 5000);
}

#[test]
fn writer_and_scanners_interleave() {
    // One thread appends to tree A while others scan tree B — mutation
    // during a scan of the *same* tree is unsupported, but unrelated
    // trees must not interfere.
    let store = Store::in_memory();
    let a = store.open_tree("a").unwrap();
    let b = store.open_tree("b").unwrap();
    for i in 0..1000u32 {
        b.insert(&i.to_be_bytes(), b"stable").unwrap();
    }
    let writer = {
        let a = a.clone();
        std::thread::spawn(move || {
            for i in 0..3000u32 {
                a.insert(&i.to_be_bytes(), b"growing").unwrap();
            }
        })
    };
    let scanners: Vec<_> = (0..4)
        .map(|_| {
            let b = b.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    assert_eq!(b.range(..).count(), 1000);
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for s in scanners {
        s.join().unwrap();
    }
    assert_eq!(a.len().unwrap(), 3000);
}

#[test]
fn eviction_under_contention_loses_no_writes() {
    // Many threads write far more pages than the pool can cache, forcing
    // constant eviction with dirty write-back while other shards are
    // under load. Every write must survive: first through the live pool
    // (reads fault evicted pages back in), then from a cold reopen of the
    // backing file (write-back actually reached the device).
    let dir = std::env::temp_dir().join(format!("pagestore-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("evict-contention.db");

    const WRITERS: usize = 8;
    const KEYS_PER_WRITER: u32 = 2000;
    let value = |t: usize, i: u32| format!("writer-{t}-value-{i:05}").into_bytes();
    let key = |t: usize, i: u32| format!("{t}:{i:05}").into_bytes();

    {
        // A tiny pool (32 frames) against ~8 trees × 2000 entries keeps
        // the working set far beyond capacity.
        let store = Store::options().capacity(32).create(&path).unwrap();
        let handles: Vec<_> = (0..WRITERS)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    let tree = store.open_tree(&format!("stress-{t}")).unwrap();
                    for i in 0..KEYS_PER_WRITER {
                        tree.insert(&key(t, i), &value(t, i)).unwrap();
                        // Re-read a much older key so hammered shards keep
                        // faulting evicted pages back in mid-write.
                        if i >= 512 {
                            let old = i - 512;
                            assert_eq!(
                                tree.get(&key(t, old)).unwrap().unwrap(),
                                value(t, old),
                                "writer {t} lost key {old} while writing"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Everything readable through the live (still caching) pool.
        for t in 0..WRITERS {
            let tree = store.open_tree(&format!("stress-{t}")).unwrap();
            assert_eq!(tree.len().unwrap(), KEYS_PER_WRITER as usize);
        }
        store.flush().unwrap();
        let snap = store.io_snapshot();
        assert!(
            snap.blocks_written > 100,
            "expected heavy write-back traffic, got {snap:?}"
        );
    }

    // Cold reopen: the file alone must hold every write.
    let store = Store::open(&path).unwrap();
    for t in 0..WRITERS {
        let tree = store.open_tree(&format!("stress-{t}")).unwrap();
        assert_eq!(
            tree.len().unwrap(),
            KEYS_PER_WRITER as usize,
            "tree {t} lost entries"
        );
        for i in (0..KEYS_PER_WRITER).step_by(97) {
            assert_eq!(
                tree.get(&key(t, i)).unwrap().unwrap(),
                value(t, i),
                "tree {t} key {i} corrupted after reopen"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

//! The store is `Send + Sync` (a single mutex serializes the pool);
//! these tests verify multi-threaded use is safe and linearizable enough
//! for the engine's needs.

use std::sync::Arc;
use xmorph_pagestore::Store;

#[test]
fn threads_writing_separate_trees() {
    let store = Store::in_memory();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let store = store.clone();
            std::thread::spawn(move || {
                let tree = store.open_tree(&format!("tree-{t}")).unwrap();
                for i in 0..2000u32 {
                    tree.insert(&i.to_be_bytes(), format!("t{t}-v{i}").as_bytes()).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..4 {
        let tree = store.open_tree(&format!("tree-{t}")).unwrap();
        assert_eq!(tree.len().unwrap(), 2000);
        assert_eq!(
            tree.get(&42u32.to_be_bytes()).unwrap().unwrap(),
            format!("t{t}-v42").as_bytes()
        );
    }
}

#[test]
fn concurrent_readers_on_shared_tree() {
    let store = Store::in_memory();
    let tree = store.open_tree("shared").unwrap();
    for i in 0..5000u32 {
        tree.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    let tree = Arc::new(tree);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let mut hits = 0usize;
                for i in (t..5000u32).step_by(8) {
                    if tree.get(&i.to_be_bytes()).unwrap().is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 5000);
}

#[test]
fn writer_and_scanners_interleave() {
    // One thread appends to tree A while others scan tree B — mutation
    // during a scan of the *same* tree is unsupported, but unrelated
    // trees must not interfere.
    let store = Store::in_memory();
    let a = store.open_tree("a").unwrap();
    let b = store.open_tree("b").unwrap();
    for i in 0..1000u32 {
        b.insert(&i.to_be_bytes(), b"stable").unwrap();
    }
    let writer = {
        let a = a.clone();
        std::thread::spawn(move || {
            for i in 0..3000u32 {
                a.insert(&i.to_be_bytes(), b"growing").unwrap();
            }
        })
    };
    let scanners: Vec<_> = (0..4)
        .map(|_| {
            let b = b.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    assert_eq!(b.range(..).count(), 1000);
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for s in scanners {
        s.join().unwrap();
    }
    assert_eq!(a.len().unwrap(), 3000);
}

//! Named segment storage: page-aligned blob extents published through a
//! catalog tree, served as heap copies or read-only OS mappings, and
//! validated defensively on the read path (a torn shutdown must degrade
//! to "segment absent", never to garbage bytes).

use std::path::PathBuf;
use xmorph_pagestore::{SegmentEntry, Store, StoreError, PAGE_SIZE, SEGMENT_CATALOG_TREE};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pagestore-seg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

#[test]
fn segment_roundtrip_in_memory() {
    let store = Store::in_memory();
    assert!(store.get_segment("cols", true).unwrap().is_none());
    let data = payload(3 * PAGE_SIZE + 17);
    store.put_segment("cols", &data).unwrap();
    let got = store.get_segment("cols", true).unwrap().unwrap();
    // Memory stores can't map; the fallback is a heap copy.
    assert!(!got.is_mapped());
    assert_eq!(&*got, &data[..]);
    assert_eq!(store.segment_names().unwrap(), vec!["cols".to_string()]);
}

#[test]
fn segment_roundtrip_file_backed_and_mapped() {
    let path = temp_path("roundtrip.db");
    let data = payload(2 * PAGE_SIZE + 100);
    {
        let store = Store::create(&path).unwrap();
        store.put_segment("cols", &data).unwrap();
        store.close().unwrap();
    }
    let store = Store::open(&path).unwrap();
    let got = store.get_segment("cols", true).unwrap().unwrap();
    assert_eq!(got.is_mapped(), store.supports_mmap());
    assert_eq!(&*got, &data[..]);
    // mmap declined on request → heap copy with identical bytes.
    let heap = store.get_segment("cols", false).unwrap().unwrap();
    assert!(!heap.is_mapped());
    assert_eq!(&*heap, &data[..]);
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn segment_overwrite_replaces_contents() {
    let store = Store::in_memory();
    store.put_segment("s", &payload(PAGE_SIZE * 2)).unwrap();
    let newer = payload(37);
    store.put_segment("s", &newer).unwrap();
    let got = store.get_segment("s", false).unwrap().unwrap();
    assert_eq!(&*got, &newer[..]);
    assert_eq!(store.segment_names().unwrap().len(), 1);
}

#[test]
fn segment_delete() {
    let store = Store::in_memory();
    assert!(!store.delete_segment("gone").unwrap());
    store.put_segment("gone", b"bytes").unwrap();
    assert!(store.delete_segment("gone").unwrap());
    assert!(store.get_segment("gone", false).unwrap().is_none());
    assert!(store.segment_names().unwrap().is_empty());
}

#[test]
fn empty_segment_roundtrips() {
    let store = Store::in_memory();
    store.put_segment("empty", b"").unwrap();
    let got = store.get_segment("empty", true).unwrap().unwrap();
    assert!(got.is_empty());
}

#[test]
fn catalog_tree_name_is_reserved() {
    let store = Store::in_memory();
    assert!(store.open_tree(SEGMENT_CATALOG_TREE).is_err());
    // And the catalog never shows up in tree_names.
    store.put_segment("s", b"x").unwrap();
    store.open_tree("ordinary").unwrap();
    assert_eq!(store.tree_names(), vec!["ordinary".to_string()]);
}

#[test]
fn unflushed_drop_reopens_validated_or_absent() {
    // put_segment writes data pages through to the device but the
    // catalog entry lives in buffered tree pages. Dropping without
    // close() may or may not have spilled those pages; either way the
    // reopened store must serve the exact bytes or report the segment
    // absent/invalid — never garbage.
    let path = temp_path("unflushed.db");
    let data = payload(PAGE_SIZE + 9);
    {
        let store = Store::create(&path).unwrap();
        store.put_segment("cols", &data).unwrap();
        // No close()/flush(): simulate a torn shutdown.
    }
    let store = Store::open(&path).unwrap();
    match store.get_segment("cols", true) {
        Ok(Some(got)) => assert_eq!(&*got, &data[..]),
        Ok(None) => {}
        Err(StoreError::SegmentInvalid { .. }) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn dangling_entry_is_reported_invalid() {
    // Forge a catalog entry pointing past the allocated pages — the
    // shape a torn shutdown leaves when the entry flushed but the
    // data-extent allocation didn't. The typed error carries the name
    // so callers can report which segment fell back.
    let path = temp_path("dangling.db");
    let good = {
        let store = Store::create(&path).unwrap();
        store.put_segment("good", b"fine").unwrap();
        store.close().unwrap();
        let (_, entry) = store
            .segment_entries()
            .unwrap()
            .into_iter()
            .find(|(n, _)| n == "good")
            .expect("segment just written");
        entry
    };
    // The public API refuses to write the reserved tree, so corrupt the
    // entry with byte-level surgery: locate its encoding in the file and
    // point first_page far past the allocated range.
    {
        let mut bytes = std::fs::read(&path).unwrap();
        let good = good.encode();
        let pos = bytes
            .windows(good.len())
            .position(|w| w == good)
            .expect("catalog entry bytes present in file");
        let dangling = SegmentEntry {
            first_page: 1 << 40,
            pages: 4,
            len: 4 * PAGE_SIZE as u64,
        };
        bytes[pos..pos + 24].copy_from_slice(&dangling.encode());
        std::fs::write(&path, &bytes).unwrap();
    }
    let store = Store::open(&path).unwrap();
    match store.get_segment("good", true) {
        Err(StoreError::SegmentInvalid { name, .. }) => assert_eq!(name, "good"),
        other => panic!("expected SegmentInvalid, got {other:?}"),
    }
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn deleted_extent_is_reused_not_regrown() {
    let store = Store::in_memory();
    store.put_segment("a", &payload(PAGE_SIZE * 4)).unwrap();
    store.put_segment("b", &payload(PAGE_SIZE * 2)).unwrap();
    let before = store.page_count();
    store.delete_segment("a").unwrap();
    // A same-size replacement must land in the freed hole.
    let newer = payload(PAGE_SIZE * 4 - 3);
    store.put_segment("c", &newer).unwrap();
    assert_eq!(store.page_count(), before);
    assert_eq!(&*store.get_segment("c", false).unwrap().unwrap(), &newer);
    assert_eq!(
        &*store.get_segment("b", false).unwrap().unwrap(),
        &payload(PAGE_SIZE * 2)
    );
}

#[test]
fn torn_free_list_append_is_reconciled_on_open() {
    // Crash ordering for delete-then-reuse: `delete_segment` appends to
    // the free list before deleting the catalog entry, and the two
    // persist independently (meta page vs. buffered tree pages). Forge
    // the torn outcome — free-list entry durable, catalog delete lost —
    // and prove reopening neither serves garbage nor double-allocates
    // the extent under the still-live segment.
    let path = temp_path("torn-free-list.db");
    let keep = payload(PAGE_SIZE * 2 + 11);
    {
        let store = Store::create(&path).unwrap();
        store.put_segment("keep", &keep).unwrap();
        store.close().unwrap();
    }
    {
        // Locate keep's catalog entry to learn its extent, then write
        // that same extent into the meta page's free list.
        let mut bytes = std::fs::read(&path).unwrap();
        let entry_pos = (0..=bytes.len() - 24)
            .find(|&pos| {
                SegmentEntry::decode(&bytes[pos..pos + 24])
                    .is_some_and(|e| e.len == keep.len() as u64 && e.pages == 3 && e.first_page > 0)
            })
            .expect("catalog entry present in file");
        let entry = SegmentEntry::decode(&bytes[entry_pos..entry_pos + 24]).unwrap();
        let free_list_off =
            24 + xmorph_pagestore::pager::MAX_TREES * (9 + xmorph_pagestore::pager::MAX_NAME_LEN);
        bytes[18..20].copy_from_slice(&1u16.to_le_bytes());
        bytes[free_list_off..free_list_off + 8].copy_from_slice(&entry.first_page.to_le_bytes());
        bytes[free_list_off + 8..free_list_off + 16].copy_from_slice(&entry.pages.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
    }
    let store = Store::open(&path).unwrap();
    // The overlapping free extent was dropped at open.
    assert_eq!(store.stats().unwrap().free_extent_pages, 0);
    assert_eq!(&*store.get_segment("keep", false).unwrap().unwrap(), &keep);
    // New allocations must not land under the live segment.
    let fresh = payload(PAGE_SIZE * 3);
    store.put_segment("fresh", &fresh).unwrap();
    assert_eq!(&*store.get_segment("keep", false).unwrap().unwrap(), &keep);
    assert_eq!(
        &*store.get_segment("fresh", false).unwrap().unwrap(),
        &fresh
    );
    store.close().unwrap();
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn vacuum_survives_reopen_with_segments() {
    // End-to-end: delete + vacuum on a file-backed store, then reopen
    // cold and verify both trees and surviving segments.
    let path = temp_path("vacuum-reopen.db");
    let keep = payload(PAGE_SIZE + 77);
    {
        let store = Store::create(&path).unwrap();
        let tree = store.open_tree("t").unwrap();
        for i in 0..300u32 {
            tree.insert(&i.to_be_bytes(), &payload(40)).unwrap();
        }
        store.put_segment("dead", &payload(PAGE_SIZE * 16)).unwrap();
        store.put_segment("keep", &keep).unwrap();
        store.delete_segment("dead").unwrap();
        let reclaimed = store.vacuum().unwrap();
        assert!(reclaimed >= 14, "reclaimed only {reclaimed} pages");
        store.close().unwrap();
    }
    let on_disk = std::fs::metadata(&path).unwrap().len();
    let store = Store::open(&path).unwrap();
    assert_eq!(on_disk, store.page_count() * PAGE_SIZE as u64);
    assert_eq!(store.open_tree("t").unwrap().len().unwrap(), 300);
    assert_eq!(&*store.get_segment("keep", true).unwrap().unwrap(), &keep);
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn segments_survive_many_tree_writes() {
    // Interleave segment puts with tree traffic to shake out extent /
    // page-allocation interference.
    let path = temp_path("interleave.db");
    let data_a = payload(PAGE_SIZE * 2);
    let data_b = payload(PAGE_SIZE * 5 + 1);
    {
        let store = Store::create(&path).unwrap();
        let tree = store.open_tree("t").unwrap();
        for i in 0..500u32 {
            tree.insert(&i.to_be_bytes(), &payload(64)).unwrap();
        }
        store.put_segment("a", &data_a).unwrap();
        for i in 500..1000u32 {
            tree.insert(&i.to_be_bytes(), &payload(64)).unwrap();
        }
        store.put_segment("b", &data_b).unwrap();
        store.close().unwrap();
    }
    let store = Store::open(&path).unwrap();
    let tree = store.open_tree("t").unwrap();
    assert_eq!(tree.len().unwrap(), 1000);
    assert_eq!(&*store.get_segment("a", true).unwrap().unwrap(), &data_a);
    assert_eq!(&*store.get_segment("b", true).unwrap().unwrap(), &data_b);
    let mut names = store.segment_names().unwrap();
    names.sort();
    assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    drop(store);
    std::fs::remove_file(&path).ok();
}

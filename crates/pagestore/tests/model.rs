//! Property tests: the B+tree must behave exactly like `BTreeMap<Vec<u8>, Vec<u8>>`.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xmorph_pagestore::Store;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..8, 0..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        1 => key_strategy().prop_map(Op::Delete),
        1 => key_strategy().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let store = Store::in_memory();
        let tree = store.open_tree("model").unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let was_new = tree.insert(&k, &v).unwrap();
                    let model_new = model.insert(k, v).is_none();
                    prop_assert_eq!(was_new, model_new);
                }
                Op::Delete(k) => {
                    let removed = tree.delete(&k).unwrap();
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k).unwrap(), model.get(&k).cloned());
                }
            }
        }
        // Final state: identical ordered contents.
        let got: Vec<(Vec<u8>, Vec<u8>)> = tree.range(..).collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn range_bounds_match_model(
        entries in prop::collection::btree_map(key_strategy(), any::<u8>(), 0..60),
        lo in key_strategy(),
        hi in key_strategy(),
    ) {
        let store = Store::in_memory();
        let tree = store.open_tree("ranges").unwrap();
        for (k, v) in &entries {
            tree.insert(k, &[*v]).unwrap();
        }
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let got: Vec<Vec<u8>> = tree.range(lo.clone()..hi.clone()).map(|(k, _)| k).collect();
        let want: Vec<Vec<u8>> = entries.range(lo..hi).map(|(k, _)| k.clone()).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn large_values_round_trip(
        sizes in prop::collection::vec(0usize..20_000, 1..8),
    ) {
        let store = Store::in_memory();
        let tree = store.open_tree("big").unwrap();
        for (i, size) in sizes.iter().enumerate() {
            let v = vec![(i % 251) as u8; *size];
            tree.insert(&(i as u32).to_be_bytes(), &v).unwrap();
        }
        for (i, size) in sizes.iter().enumerate() {
            let v = tree.get(&(i as u32).to_be_bytes()).unwrap().unwrap();
            prop_assert_eq!(v.len(), *size);
            prop_assert!(v.iter().all(|&b| b == (i % 251) as u8));
        }
    }
}

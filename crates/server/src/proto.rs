//! The wire protocol: length-prefixed frames with checksummed headers.
//!
//! Every message in either direction is one *frame*: a fixed 40-byte
//! header followed by `len` payload bytes. The header carries the same
//! discipline as the on-disk `colseg`/WAL headers — magic, version,
//! opcode, length, an FNV-1a64 of the payload, and an FNV-1a64 of the
//! header itself — so a desynchronized, truncated, or corrupted stream
//! is *detected* and surfaces as a typed [`ProtoError`], never as a
//! panic, a hang, or a misparsed request.
//!
//! ```text
//! offset  size  field (integers little-endian)
//!      0     8  magic "XMFRAME1"
//!      8     4  protocol version (1)
//!     12     4  opcode
//!     16     8  payload length, bytes (bounded by the receiver)
//!     24     8  FNV-1a64 of the payload
//!     32     8  FNV-1a64 of header bytes 0..32
//!     40     —  payload
//! ```
//!
//! Request opcodes: `PING`, `QUERY` (an XMorph guard), `XQUERY` (an
//! XQuery, served by guard inference), `STATS`, `LIST_STORES`, and the
//! write triple `UPDATE` / `INSERT` / `DELETE` (served under the
//! store's single-writer gate while readers keep their pinned
//! snapshots — see `DESIGN.md` §4i). Response opcodes: `PONG`,
//! `RESULT`, `STATS_REPLY`, `ERROR`, `BUSY`, `STORES`, and `APPLIED`
//! (the write acknowledgement, carrying the store's new epoch). A
//! `QUERY`/`XQUERY` with the `WANT_STATS` flag is answered by a
//! `RESULT` frame immediately followed by a `STATS_REPLY` frame;
//! everything else is one frame per request. `BUSY` is the admission
//! controller's overload answer — see `DESIGN.md` §4h for the
//! contract.
//!
//! Validation order on receive: magic, header checksum, version,
//! opcode, length bound, then (after the payload arrives) payload
//! checksum. Payload *decoding* (the per-opcode layouts below) is
//! likewise total: short buffers and malformed fields return
//! [`ProtoError::BadPayload`], and every allocation is bounded by the
//! frame's actual byte length.

use std::io::{Read, Write};

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: &[u8; 8] = b"XMFRAME1";
/// Protocol version this build speaks.
pub const PROTO_VERSION: u32 = 1;
/// Header size on the wire.
pub const HEADER_LEN: usize = 40;
/// Default cap on payload length, either direction (16 MiB).
pub const DEFAULT_MAX_PAYLOAD: u64 = 16 << 20;

/// `QUERY`/`XQUERY` flag: emit the bare instance stream, no wrapper.
pub const FLAG_NO_WRAPPER: u8 = 1 << 0;
/// `QUERY`/`XQUERY` flag: follow the `RESULT` with a `STATS_REPLY`.
pub const FLAG_WANT_STATS: u8 = 1 << 1;

/// Frame opcodes. Requests are < 128, responses >= 128.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum OpCode {
    /// Liveness probe; empty payload.
    Ping = 1,
    /// Evaluate an XMorph guard ([`QueryPayload`]).
    Query = 2,
    /// Evaluate an XQuery via guard inference ([`QueryPayload`]).
    XQuery = 3,
    /// Store-wide I/O counters for one store ([`StorePayload`]).
    Stats = 4,
    /// List registered store names; empty payload.
    ListStores = 5,
    /// Replace one vertex's text ([`UpdatePayload`]).
    Update = 6,
    /// Shred an XML fragment into a store ([`InsertPayload`]).
    Insert = 7,
    /// Delete a subtree ([`DeletePayload`]).
    Delete = 8,
    /// Answer to [`OpCode::Ping`]; empty payload.
    Pong = 128,
    /// Rendered XML + typing class ([`ResultPayload`]).
    Result = 129,
    /// Per-query or store-wide counters ([`WireStats`]).
    StatsReply = 130,
    /// Typed failure ([`ErrorPayload`]).
    Error = 131,
    /// Admission control rejected the request; payload is the `u32`
    /// in-flight limit that was full. Retry later.
    Busy = 132,
    /// Answer to [`OpCode::ListStores`]: `u16` count, then per store a
    /// `u16` length + UTF-8 name.
    Stores = 133,
    /// Answer to a write opcode ([`AppliedPayload`]): what happened and
    /// the store's epoch after the mutation published.
    Applied = 134,
}

impl OpCode {
    /// Decode a wire opcode.
    pub fn from_u32(v: u32) -> Option<OpCode> {
        Some(match v {
            1 => OpCode::Ping,
            2 => OpCode::Query,
            3 => OpCode::XQuery,
            4 => OpCode::Stats,
            5 => OpCode::ListStores,
            6 => OpCode::Update,
            7 => OpCode::Insert,
            8 => OpCode::Delete,
            128 => OpCode::Pong,
            129 => OpCode::Result,
            130 => OpCode::StatsReply,
            131 => OpCode::Error,
            132 => OpCode::Busy,
            133 => OpCode::Stores,
            134 => OpCode::Applied,
            _ => return None,
        })
    }
}

/// Error codes carried by [`OpCode::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame itself was malformed (bad magic/version/checksum);
    /// the server closes the connection after sending this.
    BadFrame = 1,
    /// Unknown or inapplicable opcode.
    BadOpcode = 2,
    /// The frame was well-formed but its payload didn't decode.
    BadPayload = 3,
    /// Payload length exceeded the server's cap; connection closes.
    Oversized = 4,
    /// No store registered under the requested name.
    UnknownStore = 5,
    /// The guard failed to parse.
    GuardParse = 6,
    /// The typing discipline rejected the guard (add a CAST).
    Rejected = 7,
    /// Query evaluation failed (store error, bad XQuery, …).
    Query = 8,
    /// The server is draining for shutdown.
    Shutdown = 9,
    /// The server was started read-only; writes are refused.
    ReadOnly = 10,
    /// The mutation failed (bad path, unparsable fragment, …).
    Mutate = 11,
}

impl ErrorCode {
    /// Decode a wire error code.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadOpcode,
            3 => ErrorCode::BadPayload,
            4 => ErrorCode::Oversized,
            5 => ErrorCode::UnknownStore,
            6 => ErrorCode::GuardParse,
            7 => ErrorCode::Rejected,
            8 => ErrorCode::Query,
            9 => ErrorCode::Shutdown,
            10 => ErrorCode::ReadOnly,
            11 => ErrorCode::Mutate,
            _ => return None,
        })
    }
}

/// Why a frame or payload failed to decode.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// First eight bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 8]),
    /// Header checksum mismatch — torn or corrupted header.
    HeaderChecksum,
    /// Unsupported protocol version.
    BadVersion(u32),
    /// Unknown opcode.
    BadOpcode(u32),
    /// Payload length above the receiver's cap.
    Oversized {
        /// Length the header declared.
        len: u64,
        /// The receiver's cap.
        max: u64,
    },
    /// Stream ended mid-frame.
    Truncated,
    /// Payload checksum mismatch.
    PayloadChecksum,
    /// The payload bytes didn't decode as the opcode's layout.
    BadPayload(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "stream error: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::HeaderChecksum => write!(f, "frame header checksum mismatch"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            ProtoError::Truncated => write!(f, "stream ended mid-frame"),
            ProtoError::PayloadChecksum => write!(f, "payload checksum mismatch"),
            ProtoError::BadPayload(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        }
    }
}

/// 64-bit FNV-1a — the same checksum the `colseg` and WAL headers use.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub opcode: OpCode,
    /// The payload bytes (layout per opcode).
    pub payload: Vec<u8>,
}

/// Encode a frame into a byte vector (header + payload).
pub fn encode_frame(opcode: OpCode, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(FRAME_MAGIC);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.extend_from_slice(&(opcode as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    let header_sum = fnv1a64(&out[..32]);
    out.extend_from_slice(&header_sum.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame to `w` (single `write_all`, then flush is the
/// caller's business).
pub fn write_frame(w: &mut impl Write, opcode: OpCode, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(opcode, payload))
}

/// Parse and validate a frame header. Returns `(opcode, payload_len)`.
pub fn parse_header(
    header: &[u8; HEADER_LEN],
    max_payload: u64,
) -> Result<(OpCode, u64), ProtoError> {
    let magic: [u8; 8] = header[0..8].try_into().expect("slice len");
    if &magic != FRAME_MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let declared = u64::from_le_bytes(header[32..40].try_into().expect("slice len"));
    if declared != fnv1a64(&header[..32]) {
        return Err(ProtoError::HeaderChecksum);
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("slice len"));
    if version != PROTO_VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let opcode_raw = u32::from_le_bytes(header[12..16].try_into().expect("slice len"));
    let opcode = OpCode::from_u32(opcode_raw).ok_or(ProtoError::BadOpcode(opcode_raw))?;
    let len = u64::from_le_bytes(header[16..24].try_into().expect("slice len"));
    if len > max_payload {
        return Err(ProtoError::Oversized {
            len,
            max: max_payload,
        });
    }
    Ok((opcode, len))
}

/// Read one complete frame from `r`, enforcing `max_payload`. Blocks
/// until a full frame (or an error) arrives; a clean EOF before the
/// first header byte also reports [`ProtoError::Truncated`] — use the
/// server's idle-aware reader when EOF-at-boundary must be told apart.
pub fn read_frame(r: &mut impl Read, max_payload: u64) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (opcode, len) = parse_header(&header, max_payload)?;
    read_payload(r, &header, opcode, len)
}

/// Read and verify the payload for an already-parsed header.
pub fn read_payload(
    r: &mut impl Read,
    header: &[u8; HEADER_LEN],
    opcode: OpCode,
    len: u64,
) -> Result<Frame, ProtoError> {
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let declared = u64::from_le_bytes(header[24..32].try_into().expect("slice len"));
    if declared != fnv1a64(&payload) {
        return Err(ProtoError::PayloadChecksum);
    }
    Ok(Frame { opcode, payload })
}

// ---- payload layouts ----

/// A `QUERY` / `XQUERY` request: which store, how to run, and the
/// program text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPayload {
    /// Registered store name.
    pub store: String,
    /// Render worker threads (`0` = server default).
    pub threads: u32,
    /// [`FLAG_NO_WRAPPER`] | [`FLAG_WANT_STATS`].
    pub flags: u8,
    /// Guard (or XQuery) text.
    pub text: String,
}

impl QueryPayload {
    /// Wire encoding: `u16` store length, store bytes, `u32` threads,
    /// `u8` flags, then the text to end of payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7 + self.store.len() + self.text.len());
        out.extend_from_slice(&(self.store.len() as u16).to_le_bytes());
        out.extend_from_slice(self.store.as_bytes());
        out.extend_from_slice(&self.threads.to_le_bytes());
        out.push(self.flags);
        out.extend_from_slice(self.text.as_bytes());
        out
    }

    /// Total decode of the wire layout.
    pub fn decode(bytes: &[u8]) -> Result<QueryPayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let store = c.take_short_string("store name")?;
        let threads = c.take_u32("threads")?;
        let flags = c.take_u8("flags")?;
        let text = std::str::from_utf8(c.rest())
            .map_err(|_| ProtoError::BadPayload("query text is not UTF-8"))?
            .to_string();
        Ok(QueryPayload {
            store,
            threads,
            flags,
            text,
        })
    }
}

/// An `UPDATE` request: replace the text of the vertex at `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePayload {
    /// Registered store name.
    pub store: String,
    /// Dotted Dewey path of the target vertex (e.g. `"1.2.1"`).
    pub path: String,
    /// Replacement text content.
    pub text: String,
}

impl UpdatePayload {
    /// Wire encoding: `u16`-prefixed store, `u16`-prefixed path, then
    /// the text to end of payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.store.len() + self.path.len() + self.text.len());
        out.extend_from_slice(&(self.store.len() as u16).to_le_bytes());
        out.extend_from_slice(self.store.as_bytes());
        out.extend_from_slice(&(self.path.len() as u16).to_le_bytes());
        out.extend_from_slice(self.path.as_bytes());
        out.extend_from_slice(self.text.as_bytes());
        out
    }

    /// Total decode.
    pub fn decode(bytes: &[u8]) -> Result<UpdatePayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let store = c.take_short_string("store name")?;
        let path = c.take_short_string("dewey path")?;
        let text = std::str::from_utf8(c.rest())
            .map_err(|_| ProtoError::BadPayload("update text is not UTF-8"))?
            .to_string();
        Ok(UpdatePayload { store, path, text })
    }
}

/// Where an `INSERT` places the shredded fragment.
pub const INSERT_MODE_APPEND: u8 = 0;
/// `INSERT` mode: before the sibling at `path` instead of under it.
pub const INSERT_MODE_BEFORE: u8 = 1;

/// An `INSERT` request: shred an XML fragment into the store, either
/// appended under the parent at `path` or ordered before the sibling
/// at `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertPayload {
    /// Registered store name.
    pub store: String,
    /// [`INSERT_MODE_APPEND`] or [`INSERT_MODE_BEFORE`].
    pub mode: u8,
    /// Dotted Dewey path of the parent (append) or sibling (before).
    pub path: String,
    /// The XML fragment to shred.
    pub xml: String,
}

impl InsertPayload {
    /// Wire encoding: `u16`-prefixed store, `u8` mode, `u16`-prefixed
    /// path, then the fragment to end of payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.store.len() + self.path.len() + self.xml.len());
        out.extend_from_slice(&(self.store.len() as u16).to_le_bytes());
        out.extend_from_slice(self.store.as_bytes());
        out.push(self.mode);
        out.extend_from_slice(&(self.path.len() as u16).to_le_bytes());
        out.extend_from_slice(self.path.as_bytes());
        out.extend_from_slice(self.xml.as_bytes());
        out
    }

    /// Total decode.
    pub fn decode(bytes: &[u8]) -> Result<InsertPayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let store = c.take_short_string("store name")?;
        let mode = c.take_u8("insert mode")?;
        if mode > INSERT_MODE_BEFORE {
            return Err(ProtoError::BadPayload("insert mode out of range"));
        }
        let path = c.take_short_string("dewey path")?;
        let xml = std::str::from_utf8(c.rest())
            .map_err(|_| ProtoError::BadPayload("insert fragment is not UTF-8"))?
            .to_string();
        Ok(InsertPayload {
            store,
            mode,
            path,
            xml,
        })
    }
}

/// A `DELETE` request: remove the subtree rooted at `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletePayload {
    /// Registered store name.
    pub store: String,
    /// Dotted Dewey path of the subtree root.
    pub path: String,
}

impl DeletePayload {
    /// Wire encoding: `u16`-prefixed store, `u16`-prefixed path.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.store.len() + self.path.len());
        out.extend_from_slice(&(self.store.len() as u16).to_le_bytes());
        out.extend_from_slice(self.store.as_bytes());
        out.extend_from_slice(&(self.path.len() as u16).to_le_bytes());
        out.extend_from_slice(self.path.as_bytes());
        out
    }

    /// Total decode.
    pub fn decode(bytes: &[u8]) -> Result<DeletePayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let store = c.take_short_string("store name")?;
        let path = c.take_short_string("dewey path")?;
        c.expect_end()?;
        Ok(DeletePayload { store, path })
    }
}

/// `APPLIED` kind: an `UPDATE` replaced a vertex's text.
pub const APPLIED_UPDATED: u8 = 0;
/// `APPLIED` kind: an `INSERT` shredded a fragment; detail is the new
/// root's Dewey path.
pub const APPLIED_INSERTED: u8 = 1;
/// `APPLIED` kind: a `DELETE` removed a subtree; detail is the vertex
/// count removed.
pub const APPLIED_DELETED: u8 = 2;

/// An `APPLIED` response: acknowledgement of a write, carrying the
/// store's epoch after the mutation published. Readers pinning older
/// epochs keep their snapshots; a fresh query sees this epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedPayload {
    /// [`APPLIED_UPDATED`], [`APPLIED_INSERTED`], or [`APPLIED_DELETED`].
    pub kind: u8,
    /// The store's publication epoch after the write.
    pub epoch: u64,
    /// Kind-specific detail: inserted root's Dewey path, deleted
    /// vertex count, or empty.
    pub detail: String,
}

impl AppliedPayload {
    /// Wire encoding: `u8` kind, `u64` epoch, detail to end of payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.detail.len());
        out.push(self.kind);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(self.detail.as_bytes());
        out
    }

    /// Total decode.
    pub fn decode(bytes: &[u8]) -> Result<AppliedPayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let kind = c.take_u8("applied kind")?;
        if kind > APPLIED_DELETED {
            return Err(ProtoError::BadPayload("applied kind out of range"));
        }
        let epoch = c.take_u64("epoch")?;
        let detail = std::str::from_utf8(c.rest())
            .map_err(|_| ProtoError::BadPayload("applied detail is not UTF-8"))?
            .to_string();
        Ok(AppliedPayload {
            kind,
            epoch,
            detail,
        })
    }
}

/// A `STATS` request: just the store name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorePayload {
    /// Registered store name.
    pub store: String,
}

impl StorePayload {
    /// Wire encoding: `u16` length + name bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.store.len());
        out.extend_from_slice(&(self.store.len() as u16).to_le_bytes());
        out.extend_from_slice(self.store.as_bytes());
        out
    }

    /// Total decode.
    pub fn decode(bytes: &[u8]) -> Result<StorePayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let store = c.take_short_string("store name")?;
        c.expect_end()?;
        Ok(StorePayload { store })
    }
}

/// A `RESULT` response: the typing class and the rendered document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultPayload {
    /// Typing class code: 0 strong, 1 narrowing, 2 widening, 3 weak.
    pub typing: u8,
    /// Rendered XML.
    pub xml: String,
}

impl ResultPayload {
    /// Wire encoding: `u8` typing, then the XML to end of payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.xml.len());
        out.push(self.typing);
        out.extend_from_slice(self.xml.as_bytes());
        out
    }

    /// Total decode.
    pub fn decode(bytes: &[u8]) -> Result<ResultPayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let typing = c.take_u8("typing")?;
        if typing > 3 {
            return Err(ProtoError::BadPayload("typing code out of range"));
        }
        let xml = std::str::from_utf8(c.rest())
            .map_err(|_| ProtoError::BadPayload("result XML is not UTF-8"))?
            .to_string();
        Ok(ResultPayload { typing, xml })
    }
}

/// An `ERROR` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorPayload {
    /// What failed.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorPayload {
    /// Wire encoding: `u16` code, then the message to end of payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.message.len());
        out.extend_from_slice(&(self.code as u16).to_le_bytes());
        out.extend_from_slice(self.message.as_bytes());
        out
    }

    /// Total decode.
    pub fn decode(bytes: &[u8]) -> Result<ErrorPayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let raw = c.take_u16("error code")?;
        let code = ErrorCode::from_u16(raw).ok_or(ProtoError::BadPayload("unknown error code"))?;
        let message = std::str::from_utf8(c.rest())
            .map_err(|_| ProtoError::BadPayload("error message is not UTF-8"))?
            .to_string();
        Ok(ErrorPayload { code, message })
    }
}

/// A `STATS_REPLY` payload: fixed-width little-endian counters. For a
/// per-query reply these are the *deltas* the query caused; for a
/// store-wide `STATS` answer they are cumulative and the phase timings
/// are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Pages read from the device.
    pub blocks_read: u64,
    /// Pages written to the device.
    pub blocks_written: u64,
    /// Buffer-pool hits.
    pub cache_hits: u64,
    /// Buffer-pool misses.
    pub cache_misses: u64,
    /// Nanoseconds inside device reads.
    pub read_ns: u64,
    /// Nanoseconds inside device writes.
    pub write_ns: u64,
    /// Compile-phase nanoseconds (0 for store-wide stats).
    pub compile_ns: u64,
    /// Render-phase nanoseconds (0 for store-wide stats).
    pub render_ns: u64,
    /// Column bytes faulted in (per-query) or resident (store-wide).
    pub column_bytes: u64,
    /// Render worker threads used (0 for store-wide stats).
    pub threads: u32,
}

impl WireStats {
    /// Encoded size: nine `u64`s and one `u32`.
    pub const ENCODED_LEN: usize = 76;

    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        for v in [
            self.blocks_read,
            self.blocks_written,
            self.cache_hits,
            self.cache_misses,
            self.read_ns,
            self.write_ns,
            self.compile_ns,
            self.render_ns,
            self.column_bytes,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.threads.to_le_bytes());
        out
    }

    /// Total decode (exact length required).
    pub fn decode(bytes: &[u8]) -> Result<WireStats, ProtoError> {
        if bytes.len() != Self::ENCODED_LEN {
            return Err(ProtoError::BadPayload("stats payload has wrong length"));
        }
        let mut c = Cursor::new(bytes);
        Ok(WireStats {
            blocks_read: c.take_u64("stats counter")?,
            blocks_written: c.take_u64("stats counter")?,
            cache_hits: c.take_u64("stats counter")?,
            cache_misses: c.take_u64("stats counter")?,
            read_ns: c.take_u64("stats counter")?,
            write_ns: c.take_u64("stats counter")?,
            compile_ns: c.take_u64("stats counter")?,
            render_ns: c.take_u64("stats counter")?,
            column_bytes: c.take_u64("stats counter")?,
            threads: c.take_u32("threads")?,
        })
    }
}

/// Encode a `STORES` payload from a name list.
pub fn encode_stores(names: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(names.len() as u16).to_le_bytes());
    for name in names {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    out
}

/// Decode a `STORES` payload.
pub fn decode_stores(bytes: &[u8]) -> Result<Vec<String>, ProtoError> {
    let mut c = Cursor::new(bytes);
    let count = c.take_u16("store count")?;
    let mut names = Vec::with_capacity(usize::from(count).min(bytes.len() / 2 + 1));
    for _ in 0..count {
        names.push(c.take_short_string("store name")?);
    }
    c.expect_end()?;
    Ok(names)
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ProtoError::BadPayload(what))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }

    fn take_u16(&mut self, what: &'static str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("len"),
        ))
    }

    fn take_u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("len"),
        ))
    }

    fn take_u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("len"),
        ))
    }

    /// A `u16`-length-prefixed UTF-8 string.
    fn take_short_string(&mut self, what: &'static str) -> Result<String, ProtoError> {
        let len = self.take_u16(what)?;
        let bytes = self.take(usize::from(len), what)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| ProtoError::BadPayload(what))
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        slice
    }

    fn expect_end(&self) -> Result<(), ProtoError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtoError::BadPayload("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_every_opcode() {
        for op in [
            OpCode::Ping,
            OpCode::Query,
            OpCode::XQuery,
            OpCode::Stats,
            OpCode::ListStores,
            OpCode::Update,
            OpCode::Insert,
            OpCode::Delete,
            OpCode::Pong,
            OpCode::Result,
            OpCode::StatsReply,
            OpCode::Error,
            OpCode::Busy,
            OpCode::Stores,
            OpCode::Applied,
        ] {
            let payload = format!("payload for {op:?}").into_bytes();
            let bytes = encode_frame(op, &payload);
            let frame = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(frame.opcode, op);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn oversized_is_rejected_from_header_alone() {
        let bytes = encode_frame(OpCode::Query, &[0u8; 128]);
        match read_frame(&mut bytes.as_slice(), 64) {
            Err(ProtoError::Oversized { len: 128, max: 64 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn query_payload_roundtrip() {
        let p = QueryPayload {
            store: "xmark".into(),
            threads: 4,
            flags: FLAG_WANT_STATS,
            text: "MORPH item [ name ]".into(),
        };
        assert_eq!(QueryPayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn wire_stats_roundtrip() {
        let s = WireStats {
            blocks_read: 1,
            blocks_written: 2,
            cache_hits: 3,
            cache_misses: 4,
            read_ns: 5,
            write_ns: 6,
            compile_ns: 7,
            render_ns: 8,
            column_bytes: 9,
            threads: 10,
        };
        let enc = s.encode();
        assert_eq!(enc.len(), WireStats::ENCODED_LEN);
        assert_eq!(WireStats::decode(&enc).unwrap(), s);
    }

    #[test]
    fn stores_roundtrip() {
        let names = vec!["a".to_string(), "library".to_string()];
        assert_eq!(decode_stores(&encode_stores(&names)).unwrap(), names);
    }

    #[test]
    fn update_payload_roundtrip() {
        let p = UpdatePayload {
            store: "xmark".into(),
            path: "1.2.1".into(),
            text: "new text".into(),
        };
        assert_eq!(UpdatePayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn insert_payload_roundtrip_both_modes() {
        for mode in [INSERT_MODE_APPEND, INSERT_MODE_BEFORE] {
            let p = InsertPayload {
                store: "xmark".into(),
                mode,
                path: "1.2".into(),
                xml: "<person><name>N</name></person>".into(),
            };
            assert_eq!(InsertPayload::decode(&p.encode()).unwrap(), p);
        }
        assert!(matches!(
            InsertPayload::decode(
                &InsertPayload {
                    store: "s".into(),
                    mode: 7,
                    path: "1".into(),
                    xml: String::new(),
                }
                .encode()
            ),
            Err(ProtoError::BadPayload(_))
        ));
    }

    #[test]
    fn delete_payload_roundtrip_rejects_trailing_bytes() {
        let p = DeletePayload {
            store: "xmark".into(),
            path: "1.4".into(),
        };
        assert_eq!(DeletePayload::decode(&p.encode()).unwrap(), p);
        let mut enc = p.encode();
        enc.push(0);
        assert!(matches!(
            DeletePayload::decode(&enc),
            Err(ProtoError::BadPayload(_))
        ));
    }

    #[test]
    fn applied_payload_roundtrip() {
        for (kind, detail) in [
            (APPLIED_UPDATED, ""),
            (APPLIED_INSERTED, "1.9"),
            (APPLIED_DELETED, "12"),
        ] {
            let p = AppliedPayload {
                kind,
                epoch: 42,
                detail: detail.into(),
            };
            assert_eq!(AppliedPayload::decode(&p.encode()).unwrap(), p);
        }
    }
}

//! Serving layer: many clients, one shredded store.
//!
//! The paper's pitch is a *service*: "millions of users can each see
//! the data in the shape they individually choose" — which implies a
//! long-lived process holding the shredded document, answering guard
//! queries over a wire. This crate is that process: a std-only TCP
//! server (no async runtime, no new dependencies — the workspace stays
//! hermetic) speaking a length-prefixed framed protocol whose headers
//! carry the same magic/version/checksum discipline as the on-disk
//! `colseg` and WAL formats.
//!
//! Three layers:
//!
//! * [`proto`] — the wire format: 40-byte checksummed frame headers,
//!   opcodes, typed error codes, and total (panic-free) payload
//!   decoders.
//! * [`server`] — accept/admit/dispatch/drain: a [`Server`] registers
//!   named [`xmorph_core::Engine`]s, admits a bounded number of
//!   connections, runs each query through a per-connection
//!   [`xmorph_core::Session`] (guard parses cached per connection),
//!   answers overload with `BUSY`, and shuts down by draining in-flight
//!   work before closing every store.
//! * [`client`] — a thin blocking [`Client`] used by the CLI, the
//!   end-to-end tests, and the `fig_serve` bench driver.
//!
//! ```no_run
//! use xmorph_core::Engine;
//! use xmorph_server::{Client, QueryOpts, Reply, Server};
//!
//! let engine = Engine::from_xml("<library><book><title>W</title></book></library>")?;
//! let handle = Server::builder()
//!     .register("library", engine)
//!     .bind("127.0.0.1:0")?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! match client.query("library", "MORPH book [ title ]", QueryOpts::default())? {
//!     Reply::Result { xml, .. } => println!("{xml}"),
//!     Reply::Busy(_) => eprintln!("server at capacity, retry"),
//!     Reply::Error { code, message } => eprintln!("{code:?}: {message}"),
//!     other => unreachable!("{other:?}"),
//! }
//! // Writes go over the same wire; readers keep their snapshots.
//! if let Reply::Applied { epoch, .. } = client.update("library", "1.1.1", "W2")? {
//!     println!("published epoch {epoch}");
//! }
//! handle.shutdown()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, QueryOpts, Reply};
pub use proto::{ErrorCode, OpCode, ProtoError, WireStats};
pub use server::{Registry, Server, ServerBuilder, ServerConfig, ServerHandle, ServerMetrics};

//! The TCP server: accept, admit, dispatch, drain.
//!
//! Std-only by design (`std::net` + `std::thread`): the workspace
//! builds hermetically, so there is no async runtime — each admitted
//! connection gets a handler thread, bounded by the session permit
//! gate. The concurrency that matters for throughput lives below this
//! layer anyway: every query fans out across the parallel renderer,
//! and the sharded buffer pool keeps concurrent queries' page reads
//! from contending.
//!
//! **Admission control.** Two permit gates, both answering overload
//! with a [`OpCode::Busy`] frame instead of queueing unboundedly:
//!
//! 1. *Sessions*: an accepted connection beyond
//!    [`ServerConfig::max_sessions`] is answered `BUSY` and closed
//!    immediately — the accept queue never grows past the OS listen
//!    backlog plus the bounded handler set.
//! 2. *In-flight queries*: a `QUERY`/`XQUERY` arriving while
//!    [`ServerConfig::max_inflight`] queries are executing is answered
//!    `BUSY` on the open connection; the client keeps its session and
//!    retries.
//!
//! **Graceful shutdown.** [`ServerHandle::shutdown`] stops the
//! acceptor, lets every in-flight request finish (handlers poll the
//! shutdown flag between frames and answer further requests with
//! `ERROR/SHUTDOWN`), waits for the handler set to drain, then calls
//! `Store::close()` on every registered store — flushing WAL state so
//! the next open replays nothing.

use crate::proto::{
    self, encode_stores, parse_header, read_payload, write_frame, AppliedPayload, DeletePayload,
    ErrorCode, ErrorPayload, Frame, InsertPayload, OpCode, ProtoError, QueryPayload, ResultPayload,
    StorePayload, UpdatePayload, WireStats, APPLIED_DELETED, APPLIED_INSERTED, APPLIED_UPDATED,
    FLAG_NO_WRAPPER, FLAG_WANT_STATS, HEADER_LEN, INSERT_MODE_BEFORE,
};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use xmorph_core::{Dewey, Engine, MorphError, Mutation, MutationOutcome, QueryRequest, Session};

/// Serving knobs. The defaults suit tests and benches; the CLI maps
/// flags onto these.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections admitted; the rest get `BUSY` + close.
    pub max_sessions: usize,
    /// Concurrent executing queries; the rest get `BUSY` on their open
    /// connection.
    pub max_inflight: usize,
    /// Per-frame payload cap, bytes.
    pub max_payload: u64,
    /// Default render threads for requests that say `0`. `0` here
    /// means one per available CPU.
    pub default_threads: usize,
    /// Refuse `UPDATE`/`INSERT`/`DELETE` with [`ErrorCode::ReadOnly`].
    /// Reads are unaffected.
    pub read_only: bool,
    /// How often an idle handler wakes to poll the shutdown flag.
    pub idle_poll: Duration,
    /// Artificial hold inside each query's in-flight window. Test-only
    /// hook making overload deterministic; keep at zero in production.
    #[doc(hidden)]
    pub query_hold: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 64,
            max_inflight: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_payload: proto::DEFAULT_MAX_PAYLOAD,
            default_threads: 0,
            read_only: false,
            idle_poll: Duration::from_millis(50),
            query_hold: Duration::ZERO,
        }
    }
}

/// Counters the server accumulates over its lifetime, snapshotted via
/// [`ServerHandle::metrics`]. Protocol violations count frames that
/// failed to decode — the crash-sweep discipline applied to the wire:
/// they must all surface as typed errors, so the bench gates on this
/// staying equal to the number of malformed frames *sent*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Connections accepted and admitted.
    pub sessions_admitted: u64,
    /// Connections answered `BUSY` at accept.
    pub sessions_rejected: u64,
    /// Queries answered with a `RESULT`.
    pub queries_ok: u64,
    /// Queries answered with a typed `ERROR`.
    pub queries_failed: u64,
    /// Queries answered `BUSY` by the in-flight gate.
    pub queries_busy: u64,
    /// Writes acknowledged with an `APPLIED`.
    pub writes_ok: u64,
    /// Writes answered with a typed `ERROR` (including `READ_ONLY`).
    pub writes_failed: u64,
    /// Frames that failed protocol validation (answered `ERROR`).
    pub protocol_errors: u64,
}

#[derive(Default)]
struct MetricCells {
    sessions_admitted: AtomicU64,
    sessions_rejected: AtomicU64,
    queries_ok: AtomicU64,
    queries_failed: AtomicU64,
    queries_busy: AtomicU64,
    writes_ok: AtomicU64,
    writes_failed: AtomicU64,
    protocol_errors: AtomicU64,
}

impl MetricCells {
    fn snapshot(&self) -> ServerMetrics {
        ServerMetrics {
            sessions_admitted: self.sessions_admitted.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            queries_busy: self.queries_busy.load(Ordering::Relaxed),
            writes_ok: self.writes_ok.load(Ordering::Relaxed),
            writes_failed: self.writes_failed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// A counting permit gate (semaphore without blocking: overload is
/// answered, not queued).
struct Gate {
    max: usize,
    count: AtomicUsize,
}

impl Gate {
    fn new(max: usize) -> Gate {
        Gate {
            max: max.max(1),
            count: AtomicUsize::new(0),
        }
    }

    /// Claim a slot without constructing a guard; pair with
    /// [`Gate::release`]. Used when the permit must cross a thread
    /// boundary (session permits ride inside [`SessionPermit`]).
    fn try_claim(&self) -> bool {
        let mut current = self.count.load(Ordering::Relaxed);
        loop {
            if current >= self.max {
                return false;
            }
            match self.count.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    fn release(&self) {
        self.count.fetch_sub(1, Ordering::AcqRel);
    }

    fn try_acquire(&self) -> Option<GatePermit<'_>> {
        if self.try_claim() {
            Some(GatePermit { gate: self })
        } else {
            None
        }
    }
}

struct GatePermit<'g> {
    gate: &'g Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// An owned session permit: keeps `Shared` alive and frees the session
/// slot when the handler thread exits (any path, including panics).
struct SessionPermit {
    shared: Arc<Shared>,
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        self.shared.sessions.release();
    }
}

/// The immutable store registry: name → engine. Built before the
/// listener starts, never mutated after — lookups are lock-free.
pub struct Registry {
    engines: HashMap<String, Arc<Engine>>,
}

impl Registry {
    /// The engine registered under `name`.
    pub fn get(&self, name: &str) -> Option<&Engine> {
        self.engines.get(name).map(Arc::as_ref)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.engines.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Builder for a serving instance.
pub struct ServerBuilder {
    engines: HashMap<String, Arc<Engine>>,
    config: ServerConfig,
}

impl ServerBuilder {
    /// Register `engine` under `name`. Re-registering a name replaces
    /// the previous engine.
    pub fn register(mut self, name: impl Into<String>, engine: Engine) -> Self {
        self.engines.insert(name.into(), Arc::new(engine));
        self
    }

    /// Register an engine that something else also holds.
    pub fn register_shared(mut self, name: impl Into<String>, engine: Arc<Engine>) -> Self {
        self.engines.insert(name.into(), engine);
        self
    }

    /// Replace the whole config.
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Cap concurrent connections.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.config.max_sessions = n;
        self
    }

    /// Cap concurrent executing queries.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.config.max_inflight = n;
        self
    }

    /// Cap frame payload size.
    pub fn max_payload(mut self, bytes: u64) -> Self {
        self.config.max_payload = bytes;
        self
    }

    /// Refuse write opcodes with `READ_ONLY`.
    pub fn read_only(mut self, yes: bool) -> Self {
        self.config.read_only = yes;
        self
    }

    /// Bind `addr` and start serving. Returns once the listener is
    /// live; `addr` may use port 0 for an ephemeral port (read it back
    /// from [`ServerHandle::addr`]).
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let max_sessions = self.config.max_sessions;
        let max_inflight = self.config.max_inflight;
        let shared = Arc::new(Shared {
            registry: Registry {
                engines: self.engines,
            },
            config: self.config,
            shutdown: AtomicBool::new(false),
            sessions: Gate::new(max_sessions),
            inflight: Gate::new(max_inflight),
            active: Mutex::new(0usize),
            drained: Condvar::new(),
            metrics: MetricCells::default(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("xmorph-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

/// Everything the acceptor and handlers share.
struct Shared {
    registry: Registry,
    config: ServerConfig,
    shutdown: AtomicBool,
    sessions: Gate,
    inflight: Gate,
    active: Mutex<usize>,
    drained: Condvar,
    metrics: MetricCells,
}

/// A running server. Dropping the handle *without* calling
/// [`ServerHandle::shutdown`] aborts the acceptor but skips the drain
/// and the store close — always shut down explicitly outside tests.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

/// Entry point: `Server::builder()` → register stores → `bind`.
pub struct Server;

impl Server {
    /// Start building a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder {
            engines: HashMap::new(),
            config: ServerConfig::default(),
        }
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime counters.
    pub fn metrics(&self) -> ServerMetrics {
        self.shared.metrics.snapshot()
    }

    /// Stop accepting, drain in-flight work, close every registered
    /// store. Returns the final metrics. Store close errors are
    /// collected, not panicked — the first one is returned after all
    /// stores were attempted.
    pub fn shutdown(mut self) -> Result<ServerMetrics, MorphError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Drain: handlers decrement `active` on exit; they notice the
        // flag within one idle poll, finish their current request, and
        // leave.
        {
            let mut active = self.shared.active.lock().unwrap();
            while *active > 0 {
                let (guard, _timeout) = self
                    .shared
                    .drained
                    .wait_timeout(active, Duration::from_millis(200))
                    .unwrap();
                active = guard;
            }
        }
        let mut first_err = None;
        for name in self.shared.registry.names() {
            if let Some(engine) = self.shared.registry.get(&name) {
                if let Err(e) = engine.close() {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(self.shared.metrics.snapshot()),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if !shared.sessions.try_claim() {
                    // Overload: typed BUSY, never an unbounded queue.
                    shared
                        .metrics
                        .sessions_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = write_frame(
                        &mut stream,
                        OpCode::Busy,
                        &(shared.config.max_sessions as u32).to_le_bytes(),
                    );
                    continue;
                }
                let permit = SessionPermit {
                    shared: Arc::clone(&shared),
                };
                shared
                    .metrics
                    .sessions_admitted
                    .fetch_add(1, Ordering::Relaxed);
                *shared.active.lock().unwrap() += 1;
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("xmorph-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &shared, permit);
                        let mut active = shared.active.lock().unwrap();
                        *active -= 1;
                        if *active == 0 {
                            shared.drained.notify_all();
                        }
                    })
                    .expect("spawn connection handler");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.idle_poll.min(Duration::from_millis(20)));
            }
            Err(_) => break,
        }
    }
}

/// What one blocking read attempt produced.
enum ReadOutcome {
    Frame(Frame),
    /// No bytes arrived within the idle poll window.
    Idle,
    /// Peer closed cleanly at a frame boundary.
    Eof,
    Malformed(ProtoError),
    /// The stream died mid-frame.
    Dead,
}

/// Read one frame with idle-aware timeouts: waiting for a *new* frame
/// times out quickly (so the handler can poll the shutdown flag), but
/// once the first byte of a frame arrives the rest may take up to
/// `FRAME_TIMEOUT` — a slow client mid-frame is not an idle client.
fn read_frame_idle(stream: &mut TcpStream, max_payload: u64, idle_poll: Duration) -> ReadOutcome {
    const FRAME_TIMEOUT: Duration = Duration::from_secs(10);
    if stream.set_read_timeout(Some(idle_poll)).is_err() {
        return ReadOutcome::Dead;
    }
    let mut header = [0u8; HEADER_LEN];
    let first = match stream.read(&mut header) {
        Ok(0) => return ReadOutcome::Eof,
        Ok(n) => n,
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            return ReadOutcome::Idle
        }
        Err(_) => return ReadOutcome::Dead,
    };
    if stream.set_read_timeout(Some(FRAME_TIMEOUT)).is_err() {
        return ReadOutcome::Dead;
    }
    if let Err(e) = read_exact_into(stream, &mut header[first..]) {
        return match e {
            ProtoError::Truncated => ReadOutcome::Malformed(ProtoError::Truncated),
            _ => ReadOutcome::Dead,
        };
    }
    let (opcode, len) = match parse_header(&header, max_payload) {
        Ok(parsed) => parsed,
        Err(e) => return ReadOutcome::Malformed(e),
    };
    match read_payload(stream, &header, opcode, len) {
        Ok(frame) => ReadOutcome::Frame(frame),
        Err(e @ (ProtoError::Truncated | ProtoError::PayloadChecksum)) => ReadOutcome::Malformed(e),
        Err(ProtoError::Io(_)) => ReadOutcome::Dead,
        Err(e) => ReadOutcome::Malformed(e),
    }
}

fn read_exact_into(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => filled += n,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

fn send_error(stream: &mut TcpStream, code: ErrorCode, message: String) -> bool {
    let payload = ErrorPayload { code, message }.encode();
    write_frame(stream, OpCode::Error, &payload).is_ok()
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, _permit: SessionPermit) {
    let _ = stream.set_nodelay(true);
    // Per-connection sessions, one per store actually queried — the
    // guard cache lives here, so a client replaying its guard parses
    // it once per connection, not once per request.
    let mut sessions: HashMap<String, Session<'_>> = HashMap::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = send_error(
                &mut stream,
                ErrorCode::Shutdown,
                "server is shutting down".to_string(),
            );
            return;
        }
        match read_frame_idle(
            &mut stream,
            shared.config.max_payload,
            shared.config.idle_poll,
        ) {
            ReadOutcome::Idle => continue,
            ReadOutcome::Eof | ReadOutcome::Dead => return,
            ReadOutcome::Malformed(e) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let code = match e {
                    ProtoError::Oversized { .. } => ErrorCode::Oversized,
                    ProtoError::BadOpcode(_) => ErrorCode::BadOpcode,
                    _ => ErrorCode::BadFrame,
                };
                // The stream may be desynchronized past this frame;
                // answer typed and close.
                let _ = send_error(&mut stream, code, e.to_string());
                return;
            }
            ReadOutcome::Frame(frame) => {
                if !dispatch(&mut stream, shared, &mut sessions, frame) {
                    return;
                }
            }
        }
    }
}

/// Handle one well-formed frame; returns `false` when the connection
/// should close.
fn dispatch<'a>(
    stream: &mut TcpStream,
    shared: &'a Shared,
    sessions: &mut HashMap<String, Session<'a>>,
    frame: Frame,
) -> bool {
    match frame.opcode {
        OpCode::Ping => write_frame(stream, OpCode::Pong, &[]).is_ok(),
        OpCode::ListStores => {
            let payload = encode_stores(&shared.registry.names());
            write_frame(stream, OpCode::Stores, &payload).is_ok()
        }
        OpCode::Stats => {
            let store = match StorePayload::decode(&frame.payload) {
                Ok(p) => p.store,
                Err(e) => {
                    shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    return send_error(stream, ErrorCode::BadPayload, e.to_string());
                }
            };
            let Some(engine) = shared.registry.get(&store) else {
                return send_error(
                    stream,
                    ErrorCode::UnknownStore,
                    format!("no store named {store:?}"),
                );
            };
            let io = engine.store().io_stats_snapshot();
            let stats = WireStats {
                blocks_read: io.blocks_read,
                blocks_written: io.blocks_written,
                cache_hits: io.cache_hits,
                cache_misses: io.cache_misses,
                read_ns: io.read_time.as_nanos() as u64,
                write_ns: io.write_time.as_nanos() as u64,
                compile_ns: 0,
                render_ns: 0,
                column_bytes: engine.doc().column_bytes().total() as u64,
                threads: 0,
            };
            write_frame(stream, OpCode::StatsReply, &stats.encode()).is_ok()
        }
        OpCode::Query | OpCode::XQuery => {
            handle_query(stream, shared, sessions, frame.opcode, &frame.payload)
        }
        OpCode::Update | OpCode::Insert | OpCode::Delete => {
            handle_write(stream, shared, frame.opcode, &frame.payload)
        }
        // A response opcode arriving at the server is a client bug;
        // answer typed and keep the connection.
        OpCode::Pong
        | OpCode::Result
        | OpCode::StatsReply
        | OpCode::Error
        | OpCode::Busy
        | OpCode::Stores
        | OpCode::Applied => {
            shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            send_error(
                stream,
                ErrorCode::BadOpcode,
                format!("{:?} is a response opcode", frame.opcode),
            )
        }
    }
}

fn typing_code(t: xmorph_core::GuardTyping) -> u8 {
    match t {
        xmorph_core::GuardTyping::Strong => 0,
        xmorph_core::GuardTyping::Narrowing => 1,
        xmorph_core::GuardTyping::Widening => 2,
        xmorph_core::GuardTyping::Weak => 3,
    }
}

fn error_code(e: &MorphError) -> ErrorCode {
    match e {
        MorphError::Parse { .. } => ErrorCode::GuardParse,
        MorphError::Rejected { .. } => ErrorCode::Rejected,
        _ => ErrorCode::Query,
    }
}

fn handle_query<'a>(
    stream: &mut TcpStream,
    shared: &'a Shared,
    sessions: &mut HashMap<String, Session<'a>>,
    opcode: OpCode,
    payload: &[u8],
) -> bool {
    let req = match QueryPayload::decode(payload) {
        Ok(p) => p,
        Err(e) => {
            shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return send_error(stream, ErrorCode::BadPayload, e.to_string());
        }
    };
    // Admission: never queue — overload answers BUSY on the open
    // connection and the client decides when to retry.
    let Some(_permit) = shared.inflight.try_acquire() else {
        shared.metrics.queries_busy.fetch_add(1, Ordering::Relaxed);
        return write_frame(
            stream,
            OpCode::Busy,
            &(shared.config.max_inflight as u32).to_le_bytes(),
        )
        .is_ok();
    };
    if !shared.config.query_hold.is_zero() {
        std::thread::sleep(shared.config.query_hold);
    }
    let guard_text = match opcode {
        OpCode::Query => req.text.clone(),
        _ => match infer_guard(&req.text) {
            Ok(text) => text,
            Err(message) => {
                shared
                    .metrics
                    .queries_failed
                    .fetch_add(1, Ordering::Relaxed);
                return send_error(stream, ErrorCode::Query, message);
            }
        },
    };
    let threads = if req.threads > 0 {
        req.threads as usize
    } else {
        shared.config.default_threads
    };
    let mut builder = QueryRequest::builder(guard_text)
        .threads(threads)
        .stats(req.flags & FLAG_WANT_STATS != 0);
    if req.flags & FLAG_NO_WRAPPER != 0 {
        builder = builder.no_wrapper();
    }
    let query = builder.build();

    // Lazily bind this connection's session for the store. The
    // registry cannot be queried while a session for the same store is
    // borrowed mutably, so resolve the engine reference first.
    if !sessions.contains_key(&req.store) {
        let Some(engine) = shared.registry.get(&req.store) else {
            shared
                .metrics
                .queries_failed
                .fetch_add(1, Ordering::Relaxed);
            return send_error(
                stream,
                ErrorCode::UnknownStore,
                format!("no store named {:?}", req.store),
            );
        };
        sessions.insert(req.store.clone(), engine.session());
    }
    let session = sessions.get_mut(&req.store).expect("session just inserted");

    match session.query(&query) {
        Ok(resp) => {
            shared.metrics.queries_ok.fetch_add(1, Ordering::Relaxed);
            let result = ResultPayload {
                typing: typing_code(resp.typing),
                xml: resp.xml,
            };
            if write_frame(stream, OpCode::Result, &result.encode()).is_err() {
                return false;
            }
            if let Some(stats) = resp.stats {
                let wire = WireStats {
                    blocks_read: stats.io.blocks_read,
                    blocks_written: stats.io.blocks_written,
                    cache_hits: stats.io.cache_hits,
                    cache_misses: stats.io.cache_misses,
                    read_ns: stats.io.read_time.as_nanos() as u64,
                    write_ns: stats.io.write_time.as_nanos() as u64,
                    compile_ns: stats.compile.as_nanos() as u64,
                    render_ns: stats.render.as_nanos() as u64,
                    column_bytes: stats.column_bytes_delta,
                    threads: stats.threads as u32,
                };
                return write_frame(stream, OpCode::StatsReply, &wire.encode()).is_ok();
            }
            true
        }
        Err(e) => {
            shared
                .metrics
                .queries_failed
                .fetch_add(1, Ordering::Relaxed);
            send_error(stream, error_code(&e), e.to_string())
        }
    }
}

/// Handle one write frame: decode, admit, mutate under the engine's
/// writer lock, answer `APPLIED` with the new epoch. Readers holding
/// pinned snapshots are untouched — the engine's copy-on-write
/// publication means a write never blocks an in-flight render, only
/// other writes.
fn handle_write(stream: &mut TcpStream, shared: &Shared, opcode: OpCode, payload: &[u8]) -> bool {
    let decoded: Result<(String, Mutation), ProtoError> = match opcode {
        OpCode::Update => UpdatePayload::decode(payload).and_then(|p| {
            let target = parse_path(&p.path)?;
            Ok((
                p.store,
                Mutation::UpdateText {
                    target,
                    text: p.text,
                },
            ))
        }),
        OpCode::Insert => InsertPayload::decode(payload).and_then(|p| {
            let path = parse_path(&p.path)?;
            let m = if p.mode == INSERT_MODE_BEFORE {
                Mutation::InsertBefore {
                    sibling: path,
                    xml: p.xml,
                }
            } else {
                Mutation::InsertSubtree {
                    parent: path,
                    xml: p.xml,
                }
            };
            Ok((p.store, m))
        }),
        _ => DeletePayload::decode(payload).and_then(|p| {
            let target = parse_path(&p.path)?;
            Ok((p.store, Mutation::DeleteSubtree { target }))
        }),
    };
    let (store, mutation) = match decoded {
        Ok(pair) => pair,
        Err(e) => {
            shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return send_error(stream, ErrorCode::BadPayload, e.to_string());
        }
    };
    if shared.config.read_only {
        shared.metrics.writes_failed.fetch_add(1, Ordering::Relaxed);
        return send_error(
            stream,
            ErrorCode::ReadOnly,
            "server is read-only".to_string(),
        );
    }
    // Writes share the in-flight gate with queries: overload answers
    // BUSY, it never queues.
    let Some(_permit) = shared.inflight.try_acquire() else {
        shared.metrics.queries_busy.fetch_add(1, Ordering::Relaxed);
        return write_frame(
            stream,
            OpCode::Busy,
            &(shared.config.max_inflight as u32).to_le_bytes(),
        )
        .is_ok();
    };
    let Some(engine) = shared.registry.get(&store) else {
        shared.metrics.writes_failed.fetch_add(1, Ordering::Relaxed);
        return send_error(
            stream,
            ErrorCode::UnknownStore,
            format!("no store named {store:?}"),
        );
    };
    match engine.mutate(&mutation) {
        Ok(outcome) => {
            shared.metrics.writes_ok.fetch_add(1, Ordering::Relaxed);
            let (kind, detail) = match outcome {
                MutationOutcome::Updated => (APPLIED_UPDATED, String::new()),
                MutationOutcome::Inserted(dewey) => (APPLIED_INSERTED, dewey.to_string()),
                MutationOutcome::Deleted(count) => (APPLIED_DELETED, count.to_string()),
            };
            let applied = AppliedPayload {
                kind,
                epoch: engine.epoch(),
                detail,
            };
            write_frame(stream, OpCode::Applied, &applied.encode()).is_ok()
        }
        Err(e) => {
            shared.metrics.writes_failed.fetch_add(1, Ordering::Relaxed);
            send_error(stream, ErrorCode::Mutate, e.to_string())
        }
    }
}

/// Parse a dotted Dewey path from the wire.
fn parse_path(path: &str) -> Result<Dewey, ProtoError> {
    Dewey::from_str(path).map_err(|_| ProtoError::BadPayload("malformed dewey path"))
}

/// Translate an XQuery into a guard the engine can run: extract the
/// query's navigation paths and infer the narrowest guard covering
/// them (the CLI's `infer` subcommand, server-side).
fn infer_guard(query: &str) -> Result<String, String> {
    let paths = xmorph_xqlite::query_shape_paths(query).map_err(|e| e.to_string())?;
    let below_root: Vec<Vec<String>> = paths
        .iter()
        .map(|p| p.iter().skip(1).cloned().collect::<Vec<_>>())
        .filter(|p: &Vec<String>| !p.is_empty())
        .collect();
    xmorph_core::infer::guard_from_paths(&below_root)
        .ok_or_else(|| "query navigates no shape below the document element".to_string())
}

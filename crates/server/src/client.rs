//! A minimal blocking client for the framed protocol.
//!
//! One [`Client`] owns one TCP connection (one server-side session —
//! the server caches guard parses per connection, so reusing a client
//! for a repeated guard skips the parse). The client is deliberately
//! thin: requests block until the reply frame arrives, and overload
//! surfaces as [`Reply::Busy`] for the caller to back off on.

use crate::proto::{
    read_frame, write_frame, AppliedPayload, DeletePayload, ErrorCode, ErrorPayload, InsertPayload,
    OpCode, ProtoError, QueryPayload, ResultPayload, StorePayload, UpdatePayload, WireStats,
    DEFAULT_MAX_PAYLOAD, FLAG_NO_WRAPPER, FLAG_WANT_STATS, INSERT_MODE_APPEND, INSERT_MODE_BEFORE,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: the transport died or the peer broke protocol.
/// Application-level failures (bad guard, unknown store, overload) are
/// *not* errors — they arrive as [`Reply::Error`] / [`Reply::Busy`].
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The server sent something that doesn't decode.
    Protocol(ProtoError),
    /// The server answered with an opcode this request can't accept.
    UnexpectedReply(OpCode),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::UnexpectedReply(op) => write!(f, "unexpected reply opcode {op:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other),
        }
    }
}

/// What the server said to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The query ran; rendered XML plus the typing class code and, when
    /// requested, the per-query stats frame.
    Result {
        /// Typing class: 0 strong, 1 narrowing, 2 widening, 3 weak.
        typing: u8,
        /// Rendered XML.
        xml: String,
        /// Per-query counters (present iff stats were requested).
        stats: Option<WireStats>,
    },
    /// A write was applied. `kind` is `APPLIED_UPDATED` /
    /// `APPLIED_INSERTED` / `APPLIED_DELETED`; `epoch` is the store's
    /// publication epoch after the write (a fresh query sees it);
    /// `detail` is the inserted root's Dewey path or the deleted
    /// vertex count.
    Applied {
        /// What the write did.
        kind: u8,
        /// Store epoch after publication.
        epoch: u64,
        /// Kind-specific detail.
        detail: String,
    },
    /// Admission control: the server is at capacity, retry later. The
    /// value is the limit that was full.
    Busy(u32),
    /// Typed failure.
    Error {
        /// What failed.
        code: ErrorCode,
        /// Server-side detail.
        message: String,
    },
}

/// Options for one query request.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOpts {
    /// Render worker threads (`0` = server default).
    pub threads: u32,
    /// Ask for the per-query stats frame.
    pub want_stats: bool,
    /// Emit the bare instance stream, no wrapper element.
    pub no_wrapper: bool,
}

impl QueryOpts {
    fn flags(&self) -> u8 {
        let mut flags = 0;
        if self.no_wrapper {
            flags |= FLAG_NO_WRAPPER;
        }
        if self.want_stats {
            flags |= FLAG_WANT_STATS;
        }
        flags
    }
}

/// A blocking connection to an XMorph server.
pub struct Client {
    stream: TcpStream,
    max_payload: u64,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Cap how large a reply this client will accept.
    pub fn set_max_payload(&mut self, bytes: u64) {
        self.max_payload = bytes;
    }

    /// Bound how long any single reply read may block.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Liveness probe. Also surfaces `BUSY`-at-accept: a server at its
    /// session limit answers the *connection* with `BUSY`, which this
    /// returns as `Ok(Reply::Busy)`.
    pub fn ping(&mut self) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, OpCode::Ping, &[])?;
        let frame = read_frame(&mut self.stream, self.max_payload)?;
        match frame.opcode {
            OpCode::Pong => Ok(Reply::Result {
                typing: 0,
                xml: String::new(),
                stats: None,
            }),
            _ => self.non_result_reply(frame.opcode, &frame.payload),
        }
    }

    /// Evaluate an XMorph guard against `store`.
    pub fn query(
        &mut self,
        store: &str,
        guard: &str,
        opts: QueryOpts,
    ) -> Result<Reply, ClientError> {
        self.submit(OpCode::Query, store, guard, opts)
    }

    /// Evaluate an XQuery against `store` (served by guard inference).
    pub fn xquery(
        &mut self,
        store: &str,
        query: &str,
        opts: QueryOpts,
    ) -> Result<Reply, ClientError> {
        self.submit(OpCode::XQuery, store, query, opts)
    }

    fn submit(
        &mut self,
        opcode: OpCode,
        store: &str,
        text: &str,
        opts: QueryOpts,
    ) -> Result<Reply, ClientError> {
        let payload = QueryPayload {
            store: store.to_string(),
            threads: opts.threads,
            flags: opts.flags(),
            text: text.to_string(),
        }
        .encode();
        write_frame(&mut self.stream, opcode, &payload)?;
        let frame = read_frame(&mut self.stream, self.max_payload)?;
        match frame.opcode {
            OpCode::Result => {
                let result = ResultPayload::decode(&frame.payload)?;
                let stats = if opts.want_stats {
                    let stats_frame = read_frame(&mut self.stream, self.max_payload)?;
                    if stats_frame.opcode != OpCode::StatsReply {
                        return Err(ClientError::UnexpectedReply(stats_frame.opcode));
                    }
                    Some(WireStats::decode(&stats_frame.payload)?)
                } else {
                    None
                };
                Ok(Reply::Result {
                    typing: result.typing,
                    xml: result.xml,
                    stats,
                })
            }
            _ => self.non_result_reply(frame.opcode, &frame.payload),
        }
    }

    /// Replace the text of the vertex at dotted Dewey `path`.
    pub fn update(&mut self, store: &str, path: &str, text: &str) -> Result<Reply, ClientError> {
        let payload = UpdatePayload {
            store: store.to_string(),
            path: path.to_string(),
            text: text.to_string(),
        }
        .encode();
        self.write_op(OpCode::Update, &payload)
    }

    /// Shred `xml` and append it under the parent at dotted Dewey
    /// `path`.
    pub fn insert(&mut self, store: &str, path: &str, xml: &str) -> Result<Reply, ClientError> {
        self.insert_mode(store, INSERT_MODE_APPEND, path, xml)
    }

    /// Shred `xml` and place it before the sibling at dotted Dewey
    /// `path`.
    pub fn insert_before(
        &mut self,
        store: &str,
        path: &str,
        xml: &str,
    ) -> Result<Reply, ClientError> {
        self.insert_mode(store, INSERT_MODE_BEFORE, path, xml)
    }

    fn insert_mode(
        &mut self,
        store: &str,
        mode: u8,
        path: &str,
        xml: &str,
    ) -> Result<Reply, ClientError> {
        let payload = InsertPayload {
            store: store.to_string(),
            mode,
            path: path.to_string(),
            xml: xml.to_string(),
        }
        .encode();
        self.write_op(OpCode::Insert, &payload)
    }

    /// Delete the subtree rooted at dotted Dewey `path`.
    pub fn delete(&mut self, store: &str, path: &str) -> Result<Reply, ClientError> {
        let payload = DeletePayload {
            store: store.to_string(),
            path: path.to_string(),
        }
        .encode();
        self.write_op(OpCode::Delete, &payload)
    }

    fn write_op(&mut self, opcode: OpCode, payload: &[u8]) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, opcode, payload)?;
        let frame = read_frame(&mut self.stream, self.max_payload)?;
        match frame.opcode {
            OpCode::Applied => {
                let applied = AppliedPayload::decode(&frame.payload)?;
                Ok(Reply::Applied {
                    kind: applied.kind,
                    epoch: applied.epoch,
                    detail: applied.detail,
                })
            }
            _ => self.non_result_reply(frame.opcode, &frame.payload),
        }
    }

    /// Store-wide cumulative counters for `store`.
    pub fn stats(&mut self, store: &str) -> Result<Result<WireStats, Reply>, ClientError> {
        let payload = StorePayload {
            store: store.to_string(),
        }
        .encode();
        write_frame(&mut self.stream, OpCode::Stats, &payload)?;
        let frame = read_frame(&mut self.stream, self.max_payload)?;
        match frame.opcode {
            OpCode::StatsReply => Ok(Ok(WireStats::decode(&frame.payload)?)),
            op => Ok(Err(self.non_result_reply(op, &frame.payload)?)),
        }
    }

    /// Names of the stores the server is serving.
    pub fn list_stores(&mut self) -> Result<Result<Vec<String>, Reply>, ClientError> {
        write_frame(&mut self.stream, OpCode::ListStores, &[])?;
        let frame = read_frame(&mut self.stream, self.max_payload)?;
        match frame.opcode {
            OpCode::Stores => Ok(Ok(crate::proto::decode_stores(&frame.payload)?)),
            op => Ok(Err(self.non_result_reply(op, &frame.payload)?)),
        }
    }

    /// Raw frame access, for protocol tests: send arbitrary bytes.
    #[doc(hidden)]
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)
    }

    /// Raw frame access, for protocol tests: read one reply frame.
    #[doc(hidden)]
    pub fn recv_frame(&mut self) -> Result<crate::proto::Frame, ClientError> {
        Ok(read_frame(&mut self.stream, self.max_payload)?)
    }

    fn non_result_reply(&self, opcode: OpCode, payload: &[u8]) -> Result<Reply, ClientError> {
        match opcode {
            OpCode::Busy => {
                let limit = payload
                    .get(..4)
                    .and_then(|b| b.try_into().ok())
                    .map(u32::from_le_bytes)
                    .unwrap_or(0);
                Ok(Reply::Busy(limit))
            }
            OpCode::Error => {
                let err = ErrorPayload::decode(payload)?;
                Ok(Reply::Error {
                    code: err.code,
                    message: err.message,
                })
            }
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }
}

//! Wire-protocol conformance: every malformed frame must surface as a
//! typed [`ProtoError`] — never a panic, never a hang, never a
//! misparse. This is the crash-sweep discipline applied to the wire:
//! the decoder is *total* over arbitrary bytes.

use proptest::prelude::*;
use xmorph_server::proto::{
    decode_stores, encode_frame, encode_stores, fnv1a64, read_frame, ErrorCode, ErrorPayload,
    OpCode, ProtoError, QueryPayload, ResultPayload, StorePayload, WireStats, DEFAULT_MAX_PAYLOAD,
    FLAG_NO_WRAPPER, FLAG_WANT_STATS, HEADER_LEN, PROTO_VERSION,
};

// ---- round trips ----

#[test]
fn payload_roundtrips() {
    let q = QueryPayload {
        store: "xmark".into(),
        threads: 8,
        flags: FLAG_NO_WRAPPER | FLAG_WANT_STATS,
        text: "MORPH author [ !title name ]".into(),
    };
    assert_eq!(QueryPayload::decode(&q.encode()).unwrap(), q);

    let s = StorePayload {
        store: "library".into(),
    };
    assert_eq!(StorePayload::decode(&s.encode()).unwrap(), s);

    let r = ResultPayload {
        typing: 2,
        xml: "<result><a/></result>".into(),
    };
    assert_eq!(ResultPayload::decode(&r.encode()).unwrap(), r);

    let e = ErrorPayload {
        code: ErrorCode::Rejected,
        message: "widening requires a CAST".into(),
    };
    assert_eq!(ErrorPayload::decode(&e.encode()).unwrap(), e);

    let names = vec!["a".to_string(), "b".to_string(), "xmark-1g".to_string()];
    assert_eq!(decode_stores(&encode_stores(&names)).unwrap(), names);
}

#[test]
fn empty_payloads_roundtrip() {
    let q = QueryPayload {
        store: String::new(),
        threads: 0,
        flags: 0,
        text: String::new(),
    };
    assert_eq!(QueryPayload::decode(&q.encode()).unwrap(), q);
    assert_eq!(
        decode_stores(&encode_stores(&[])).unwrap(),
        Vec::<String>::new()
    );
}

#[test]
fn unicode_survives_the_wire() {
    let q = QueryPayload {
        store: "bücher".into(),
        threads: 1,
        flags: 0,
        text: "MORPH livre [ titre ] — ∀shapes".into(),
    };
    let frame_bytes = encode_frame(OpCode::Query, &q.encode());
    let frame = read_frame(&mut frame_bytes.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(QueryPayload::decode(&frame.payload).unwrap(), q);
}

// ---- targeted malformations ----

fn valid_frame() -> Vec<u8> {
    encode_frame(
        OpCode::Query,
        &QueryPayload {
            store: "s".into(),
            threads: 0,
            flags: 0,
            text: "MORPH a [ b ]".into(),
        }
        .encode(),
    )
}

#[test]
fn truncation_at_every_boundary_is_typed() {
    let frame = valid_frame();
    for cut in 0..frame.len() {
        let result = read_frame(&mut &frame[..cut], DEFAULT_MAX_PAYLOAD);
        match result {
            Err(ProtoError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut frame = valid_frame();
    frame[0] ^= 0xff;
    match read_frame(&mut frame.as_slice(), DEFAULT_MAX_PAYLOAD) {
        Err(ProtoError::BadMagic(_)) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn bad_version_is_typed() {
    // Rebuild the header with a wrong version and a *correct* header
    // checksum — version checking must not hide behind the checksum.
    let payload = b"x".to_vec();
    let mut frame = encode_frame(OpCode::Ping, &payload);
    frame[8..12].copy_from_slice(&(PROTO_VERSION + 9).to_le_bytes());
    let sum = fnv1a64(&frame[..32]);
    frame[32..40].copy_from_slice(&sum.to_le_bytes());
    match read_frame(&mut frame.as_slice(), DEFAULT_MAX_PAYLOAD) {
        Err(ProtoError::BadVersion(v)) => assert_eq!(v, PROTO_VERSION + 9),
        other => panic!("{other:?}"),
    }
}

#[test]
fn bad_opcode_is_typed() {
    let mut frame = valid_frame();
    frame[12..16].copy_from_slice(&77u32.to_le_bytes());
    let sum = fnv1a64(&frame[..32]);
    frame[32..40].copy_from_slice(&sum.to_le_bytes());
    match read_frame(&mut frame.as_slice(), DEFAULT_MAX_PAYLOAD) {
        Err(ProtoError::BadOpcode(77)) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn oversized_is_rejected_before_allocation() {
    // Declare a 1 TiB payload: the reader must reject from the header
    // alone, not try to allocate.
    let mut frame = encode_frame(OpCode::Query, &[]);
    frame[16..24].copy_from_slice(&(1u64 << 40).to_le_bytes());
    let sum = fnv1a64(&frame[..32]);
    frame[32..40].copy_from_slice(&sum.to_le_bytes());
    match read_frame(&mut frame.as_slice(), DEFAULT_MAX_PAYLOAD) {
        Err(ProtoError::Oversized { len, max }) => {
            assert_eq!(len, 1 << 40);
            assert_eq!(max, DEFAULT_MAX_PAYLOAD);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn corrupt_header_is_typed() {
    let frame = valid_frame();
    // Any single-bit flip in bytes 8..32 (version/opcode/len/payload
    // checksum) must trip the header checksum (or a later typed check);
    // flips in 32..40 corrupt the checksum itself.
    for byte in 8..40 {
        let mut corrupted = frame.clone();
        corrupted[byte] ^= 0x01;
        match read_frame(&mut corrupted.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(ProtoError::HeaderChecksum) => {}
            other => panic!("flip at {byte}: expected HeaderChecksum, got {other:?}"),
        }
    }
}

#[test]
fn corrupt_payload_is_typed() {
    let frame = valid_frame();
    for byte in HEADER_LEN..frame.len() {
        let mut corrupted = frame.clone();
        corrupted[byte] ^= 0x01;
        match read_frame(&mut corrupted.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(ProtoError::PayloadChecksum) => {}
            other => panic!("flip at {byte}: expected PayloadChecksum, got {other:?}"),
        }
    }
}

// ---- the property: decoding is total ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Arbitrary bytes through the frame reader: always a typed error
    // or a valid frame, never a panic. (A hang is impossible against
    // an in-memory reader — EOF is immediate.)
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_PAYLOAD);
    }

    // Arbitrary bytes through every payload decoder: typed errors
    // only, and any successful decode re-encodes losslessly where the
    // layout is canonical.
    #[test]
    fn payload_decoders_are_total(bytes in prop::collection::vec(any::<u8>(), 0..192)) {
        if let Ok(q) = QueryPayload::decode(&bytes) {
            prop_assert_eq!(QueryPayload::decode(&q.encode()).unwrap(), q);
        }
        if let Ok(s) = StorePayload::decode(&bytes) {
            prop_assert_eq!(&s.encode(), &bytes);
        }
        if let Ok(r) = ResultPayload::decode(&bytes) {
            prop_assert_eq!(&r.encode(), &bytes);
        }
        if let Ok(e) = ErrorPayload::decode(&bytes) {
            prop_assert_eq!(&e.encode(), &bytes);
        }
        if let Ok(w) = WireStats::decode(&bytes) {
            prop_assert_eq!(&w.encode(), &bytes);
        }
        let _ = decode_stores(&bytes);
    }

    // A valid frame with any prefix of corruption: the reader reports
    // a typed error or (when the corruption misses the checked bytes)
    // the original frame — it never misparses into a *different*
    // frame.
    #[test]
    fn corrupted_frames_never_misparse(
        flip_at in 0usize..128,
        flip_mask in 1u8..=255,
    ) {
        let original = valid_frame();
        let mut corrupted = original.clone();
        let idx = flip_at % corrupted.len();
        corrupted[idx] ^= flip_mask;
        match read_frame(&mut corrupted.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(_) => {}
            Ok(frame) => {
                // Only reachable if the flip cancelled out, which a
                // single XOR with a nonzero mask cannot do — so any
                // Ok must be the original frame.
                let reference = read_frame(&mut original.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
                prop_assert_eq!(frame, reference);
            }
        }
    }
}

//! End-to-end serving tests: a real listener on an ephemeral port,
//! real sockets, concurrent clients mixing well-formed queries, parse
//! errors, protocol violations, and overload — and byte-identity
//! between what the wire returns and what a direct [`Engine`] query
//! produces.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use xmorph_core::{Engine, QueryRequest};
use xmorph_server::proto::{encode_frame, fnv1a64, OpCode};
use xmorph_server::{Client, ErrorCode, QueryOpts, Reply, Server, ServerConfig};

/// Fig. 1(c)'s shape: two books under one author, so the book-major
/// reshaping below is a *widening* the typing discipline rejects
/// without a CAST.
const LIBRARY: &str = "<library>\
    <author><name>Moriarty</name>\
        <book><title>Crime</title><publisher><name>Reichenbach</name></publisher></book>\
        <book><title>Maths</title><publisher><name>Baker</name></publisher></book>\
    </author>\
    <author><name>Adler</name>\
        <book><title>Opera</title><publisher><name>Scandal</name></publisher></book>\
    </author>\
</library>";

const GOOD_GUARD: &str = "MORPH author [ name book [ title ] ]";
const REJECTED_GUARD: &str = "MORPH author [ !title name publisher [ name ] ]";

fn serve(config: ServerConfig) -> (xmorph_server::ServerHandle, Engine) {
    let engine = Engine::from_xml(LIBRARY).expect("shred");
    let reference = Engine::from_xml(LIBRARY).expect("shred reference");
    let handle = Server::builder()
        .register("library", engine)
        .config(config)
        .bind("127.0.0.1:0")
        .expect("bind");
    (handle, reference)
}

#[test]
fn query_matches_direct_engine_byte_for_byte() {
    let (handle, reference) = serve(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let expected = reference
        .query(&QueryRequest::builder(GOOD_GUARD).build())
        .unwrap();
    match client
        .query("library", GOOD_GUARD, QueryOpts::default())
        .unwrap()
    {
        Reply::Result { typing, xml, stats } => {
            assert_eq!(xml, expected.xml, "wire result must be byte-identical");
            assert_eq!(
                typing, expected.typing as u8,
                "typing class crosses the wire"
            );
            assert!(stats.is_none(), "stats not requested");
        }
        other => panic!("{other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn want_stats_returns_a_stats_frame() {
    let (handle, _reference) = serve(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let opts = QueryOpts {
        want_stats: true,
        threads: 2,
        ..Default::default()
    };
    match client.query("library", GOOD_GUARD, opts).unwrap() {
        Reply::Result { stats, .. } => {
            let stats = stats.expect("stats frame follows the result");
            assert_eq!(stats.threads, 2);
            assert!(stats.render_ns > 0, "render phase was timed");
        }
        other => panic!("{other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn xquery_is_served_via_guard_inference() {
    let (handle, reference) = serve(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    // The inferred guard for this navigation is `MORPH author [ name ]`
    // (paths below the document element).
    let xquery = r#"doc("d")/library/author/name"#;
    let expected = reference
        .query(&QueryRequest::builder("MORPH author [ name ]").build())
        .unwrap();
    match client
        .xquery("library", xquery, QueryOpts::default())
        .unwrap()
    {
        Reply::Result { xml, .. } => assert_eq!(xml, expected.xml),
        other => panic!("{other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn typed_errors_for_bad_requests() {
    let (handle, _reference) = serve(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    // Parse error.
    match client
        .query("library", "MORPH [ [", QueryOpts::default())
        .unwrap()
    {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::GuardParse),
        other => panic!("{other:?}"),
    }
    // Typing rejection (widening without a CAST).
    match client
        .query("library", REJECTED_GUARD, QueryOpts::default())
        .unwrap()
    {
        Reply::Error { code, message } => {
            assert_eq!(code, ErrorCode::Rejected);
            assert!(!message.is_empty());
        }
        other => panic!("{other:?}"),
    }
    // Unknown store.
    match client
        .query("nope", GOOD_GUARD, QueryOpts::default())
        .unwrap()
    {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownStore),
        other => panic!("{other:?}"),
    }
    // The connection survived all three failures.
    match client
        .query("library", GOOD_GUARD, QueryOpts::default())
        .unwrap()
    {
        Reply::Result { .. } => {}
        other => panic!("{other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn ping_stats_and_list_stores() {
    let (handle, _reference) = serve(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    assert_eq!(
        client.list_stores().unwrap().unwrap(),
        vec!["library".to_string()]
    );
    let stats = client.stats("library").unwrap().unwrap();
    assert_eq!(stats.threads, 0, "store-wide stats carry no thread count");
    match client.stats("nope").unwrap() {
        Err(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::UnknownStore),
        other => panic!("{other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn oversized_request_gets_typed_error_then_close() {
    let (handle, _reference) = serve(ServerConfig {
        max_payload: 1024,
        ..Default::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    let big = "x".repeat(4096);
    let frame = encode_frame(
        OpCode::Query,
        &xmorph_server::proto::QueryPayload {
            store: "library".into(),
            threads: 0,
            flags: 0,
            text: big,
        }
        .encode(),
    );
    client.send_raw(&frame).unwrap();
    let reply = client.recv_frame().unwrap();
    assert_eq!(reply.opcode, OpCode::Error);
    let err = xmorph_server::proto::ErrorPayload::decode(&reply.payload).unwrap();
    assert_eq!(err.code, ErrorCode::Oversized);
    // The server closed the (desynchronized) connection.
    assert!(client.recv_frame().is_err());
    handle.shutdown().unwrap();
}

#[test]
fn malformed_frames_get_typed_errors_never_hangs() {
    for mutation in ["magic", "header-checksum", "payload-checksum", "garbage"] {
        let (handle, _reference) = serve(ServerConfig::default());
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut frame = encode_frame(OpCode::Ping, &[]);
        match mutation {
            "magic" => frame[0] ^= 0xff,
            "header-checksum" => frame[33] ^= 0xff,
            "payload-checksum" => {
                // Declare a payload but corrupt its checksum field (then
                // re-sum the header so only the payload check fires).
                frame = encode_frame(OpCode::Ping, b"abc");
                frame[24] ^= 0xff;
                let sum = fnv1a64(&frame[..32]);
                frame[32..40].copy_from_slice(&sum.to_le_bytes());
            }
            _ => frame = [0xde, 0xad, 0xbe, 0xef].repeat(10),
        }
        client.send_raw(&frame).unwrap();
        let reply = client.recv_frame().unwrap_or_else(|e| {
            panic!("mutation {mutation}: expected a typed error frame, got {e:?}")
        });
        assert_eq!(reply.opcode, OpCode::Error, "mutation {mutation}");
        handle.shutdown().unwrap();
    }
}

#[test]
fn busy_when_inflight_limit_is_full() {
    let (handle, _reference) = serve(ServerConfig {
        max_inflight: 1,
        query_hold: Duration::from_millis(300),
        ..Default::default()
    });
    let addr = handle.addr();
    let busy_seen = AtomicUsize::new(0);
    let ok_seen = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut client = Client::connect(addr).unwrap();
                match client
                    .query("library", GOOD_GUARD, QueryOpts::default())
                    .unwrap()
                {
                    Reply::Result { .. } => ok_seen.fetch_add(1, Ordering::Relaxed),
                    Reply::Busy(limit) => {
                        assert_eq!(limit, 1);
                        busy_seen.fetch_add(1, Ordering::Relaxed)
                    }
                    Reply::Error { code, message } => panic!("{code:?}: {message}"),
                    other => panic!("{other:?}"),
                };
            });
        }
    });
    assert!(ok_seen.load(Ordering::Relaxed) >= 1, "someone got through");
    assert!(
        busy_seen.load(Ordering::Relaxed) >= 1,
        "with a 300ms hold and one slot, overload must answer BUSY"
    );
    let metrics = handle.shutdown().unwrap();
    assert_eq!(
        metrics.queries_busy as usize,
        busy_seen.load(Ordering::Relaxed)
    );
    assert_eq!(metrics.queries_ok as usize, ok_seen.load(Ordering::Relaxed));
}

#[test]
fn busy_at_accept_when_session_limit_is_full() {
    let (handle, _reference) = serve(ServerConfig {
        max_sessions: 1,
        ..Default::default()
    });
    let mut first = Client::connect(handle.addr()).unwrap();
    first.ping().unwrap(); // session established
    let mut second = Client::connect(handle.addr()).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The BUSY frame arrives unprompted, before any request.
    let frame = second.recv_frame().unwrap();
    assert_eq!(frame.opcode, OpCode::Busy);
    drop(second);
    // Releasing the first session frees the slot.
    drop(first);
    std::thread::sleep(Duration::from_millis(200));
    let mut third = Client::connect(handle.addr()).unwrap();
    match third.ping().unwrap() {
        Reply::Result { .. } => {}
        other => panic!("{other:?}"),
    }
    let metrics = handle.shutdown().unwrap();
    assert!(metrics.sessions_rejected >= 1);
    assert!(metrics.sessions_admitted >= 2);
}

#[test]
fn concurrent_clients_all_get_identical_results() {
    let (handle, reference) = serve(ServerConfig::default());
    let addr = handle.addr();
    let expected = reference
        .query(&QueryRequest::builder(GOOD_GUARD).build())
        .unwrap()
        .xml;
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let expected = expected.clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..5 {
                    match client
                        .query("library", GOOD_GUARD, QueryOpts::default())
                        .unwrap()
                    {
                        Reply::Result { xml, .. } => {
                            assert_eq!(xml, expected, "worker {worker} round {round}")
                        }
                        Reply::Busy(_) => { /* admission is allowed to push back */ }
                        Reply::Error { code, message } => panic!("{code:?}: {message}"),
                        other => panic!("{other:?}"),
                    }
                }
            });
        }
    });
    let metrics = handle.shutdown().unwrap();
    assert!(metrics.queries_ok >= 1);
    assert_eq!(metrics.protocol_errors, 0);
}

#[test]
fn writes_over_the_wire_publish_new_epochs() {
    let (handle, reference) = serve(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    // Find the first author name's Dewey on the twin: same document,
    // same shredder, so the paths coincide.
    let name_dewey = {
        let doc = reference.doc();
        let t = doc
            .types()
            .lookup(&[
                "library".to_string(),
                "author".to_string(),
                "name".to_string(),
            ])
            .expect("author name type");
        doc.scan_type(t).remove(0).0.to_string()
    };

    // UPDATE: new text visible to the next query, epoch advanced.
    match client.update("library", &name_dewey, "Milverton").unwrap() {
        Reply::Applied { kind, epoch, .. } => {
            assert_eq!(kind, xmorph_server::proto::APPLIED_UPDATED);
            assert!(epoch >= 1);
        }
        other => panic!("{other:?}"),
    }
    match client
        .query("library", GOOD_GUARD, QueryOpts::default())
        .unwrap()
    {
        Reply::Result { xml, .. } => assert!(
            xml.contains("<name>Milverton</name>"),
            "update must be visible to a post-write query: {xml}"
        ),
        other => panic!("{other:?}"),
    }

    // INSERT: a new author appended under the library root.
    match client
        .insert(
            "library",
            "1",
            "<author><name>Hudson</name><book><title>Rent</title>\
             <publisher><name>Baker</name></publisher></book></author>",
        )
        .unwrap()
    {
        Reply::Applied { kind, detail, .. } => {
            assert_eq!(kind, xmorph_server::proto::APPLIED_INSERTED);
            assert!(!detail.is_empty(), "detail carries the new root's path");
        }
        other => panic!("{other:?}"),
    }
    match client
        .query("library", GOOD_GUARD, QueryOpts::default())
        .unwrap()
    {
        Reply::Result { xml, .. } => assert!(xml.contains("<name>Hudson</name>")),
        other => panic!("{other:?}"),
    }

    // DELETE: drop the inserted subtree again; detail is the count.
    let inserted = match client
        .insert("library", "1", "<author><name>Doomed</name></author>")
        .unwrap()
    {
        Reply::Applied { detail, .. } => detail,
        other => panic!("{other:?}"),
    };
    match client.delete("library", &inserted).unwrap() {
        Reply::Applied { kind, detail, .. } => {
            assert_eq!(kind, xmorph_server::proto::APPLIED_DELETED);
            assert_eq!(detail, "2", "author + name vertices removed");
        }
        other => panic!("{other:?}"),
    }

    // A mutation failure is a typed error and the connection survives.
    match client.update("library", "9.9.9", "nope").unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Mutate),
        other => panic!("{other:?}"),
    }
    match client.delete("library", "not-a-path").unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::BadPayload),
        other => panic!("{other:?}"),
    }
    match client.update("nope", "1.1", "x").unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownStore),
        other => panic!("{other:?}"),
    }

    let metrics = handle.shutdown().unwrap();
    assert_eq!(metrics.writes_ok, 4);
    assert_eq!(metrics.writes_failed, 2, "bad path + unknown store");
}

#[test]
fn read_only_server_refuses_writes_but_serves_reads() {
    let (handle, _reference) = serve(ServerConfig {
        read_only: true,
        ..Default::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.update("library", "1.1.1", "x").unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::ReadOnly),
        other => panic!("{other:?}"),
    }
    match client.insert("library", "1", "<author/>").unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::ReadOnly),
        other => panic!("{other:?}"),
    }
    match client.delete("library", "1.1").unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::ReadOnly),
        other => panic!("{other:?}"),
    }
    match client
        .query("library", GOOD_GUARD, QueryOpts::default())
        .unwrap()
    {
        Reply::Result { .. } => {}
        other => panic!("{other:?}"),
    }
    let metrics = handle.shutdown().unwrap();
    assert_eq!(metrics.writes_failed, 3);
    assert_eq!(metrics.writes_ok, 0);
}

#[test]
fn reader_connections_see_consistent_states_during_writes() {
    let (handle, reference) = serve(ServerConfig::default());
    let addr = handle.addr();
    let name_dewey = {
        let doc = reference.doc();
        let t = doc
            .types()
            .lookup(&[
                "library".to_string(),
                "author".to_string(),
                "name".to_string(),
            ])
            .expect("author name type");
        doc.scan_type(t).remove(0).0.to_string()
    };
    // Every reachable state's render: prefix k has the name "W{k}"
    // (k = 0 is the unmutated document).
    let mut expected = std::collections::HashSet::new();
    expected.insert(
        reference
            .query(&QueryRequest::builder(GOOD_GUARD).build())
            .unwrap()
            .xml,
    );
    let dewey: xmorph_core::Dewey = name_dewey.parse().unwrap();
    for k in 1..=8 {
        reference
            .mutate(&xmorph_core::Mutation::UpdateText {
                target: dewey.clone(),
                text: format!("W{k}"),
            })
            .unwrap();
        expected.insert(
            reference
                .query(&QueryRequest::builder(GOOD_GUARD).build())
                .unwrap()
                .xml,
        );
    }
    std::thread::scope(|scope| {
        let expected = &expected;
        for _ in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..20 {
                    match client
                        .query("library", GOOD_GUARD, QueryOpts::default())
                        .unwrap()
                    {
                        Reply::Result { xml, .. } => assert!(
                            expected.contains(&xml),
                            "reader observed a state matching no write prefix: {xml}"
                        ),
                        Reply::Busy(_) => {}
                        other => panic!("{other:?}"),
                    }
                }
            });
        }
        scope.spawn(move || {
            let mut writer = Client::connect(addr).unwrap();
            for k in 1..=8 {
                match writer
                    .update("library", &name_dewey, &format!("W{k}"))
                    .unwrap()
                {
                    Reply::Applied { .. } => {}
                    Reply::Busy(_) => {}
                    other => panic!("{other:?}"),
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
    });
    handle.shutdown().unwrap();
}

#[test]
fn shutdown_drains_and_reports_metrics() {
    let (handle, _reference) = serve(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    match client
        .query("library", GOOD_GUARD, QueryOpts::default())
        .unwrap()
    {
        Reply::Result { .. } => {}
        other => panic!("{other:?}"),
    }
    let metrics = handle.shutdown().unwrap();
    assert_eq!(metrics.queries_ok, 1);
    assert_eq!(metrics.sessions_admitted, 1);
}

//! # xmorph-datagen
//!
//! Deterministic synthetic workload generators for the XMorph 2.0
//! benchmark harness. The paper's experiments (§IX) use three datasets we
//! cannot redistribute; each generator reproduces the *structural
//! profile* the corresponding experiment depends on (see DESIGN.md §4):
//!
//! * [`xmark`] — an auction `site` document in the mold of the XMark
//!   benchmark: six region subtrees, categories with recursive
//!   `parlist`/`listitem` markup, people with nested profiles, open and
//!   closed auctions. Scaled by a *factor*, sizes growing linearly,
//!   hundreds of distinct root-path types (Figs. 10–13, 15, 16).
//! * [`dblp`] — a flat-and-wide bibliography like DBLP.xml: millions of
//!   shallow publication records (Figs. 14, 15).
//! * [`nasa`] — astronomy `dataset` records with the deep
//!   reference/history nesting of the NASA XML corpus (Fig. 15).
//!
//! All generators are seeded and deterministic: the same config yields
//! byte-identical documents on every platform.

pub mod dblp;
pub mod nasa;
pub mod text;
pub mod xmark;

pub use dblp::DblpConfig;
pub use nasa::NasaConfig;
pub use xmark::XmarkConfig;

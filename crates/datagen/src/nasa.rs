//! A NASA-astronomy-flavoured dataset generator.
//!
//! The public NASA XML corpus (astronomical datasets converted from
//! legacy flat files) is the third dataset of the paper's Fig. 15
//! "effect of target shape" experiment. Its signature is deep,
//! reference-heavy nesting with long text fields — quite different text
//! density from both XMark and DBLP, which is exactly what that
//! experiment varies.

use crate::text;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmorph_xml::writer::StreamWriter;

/// Configuration for the NASA-like generator.
#[derive(Debug, Clone)]
pub struct NasaConfig {
    /// Number of `dataset` records.
    pub datasets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NasaConfig {
    fn default() -> Self {
        NasaConfig {
            datasets: 100,
            seed: 23,
        }
    }
}

impl NasaConfig {
    /// A config sized to approximately `bytes` (datasets average
    /// ≈ 1.5 KB).
    pub fn with_approx_bytes(bytes: usize) -> Self {
        NasaConfig {
            datasets: (bytes / 1500).max(1),
            ..Default::default()
        }
    }

    /// Generate the document.
    pub fn generate(&self) -> String {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut w = StreamWriter::with_capacity(self.datasets * 1600);
        w.start("datasets");
        for i in 0..self.datasets {
            dataset(&mut w, &mut rng, i);
        }
        w.end();
        w.finish()
    }
}

fn simple(w: &mut StreamWriter, name: &str, value: &str) {
    w.start(name);
    w.text(value);
    w.end();
}

fn author(w: &mut StreamWriter, rng: &mut SmallRng) {
    w.start("author");
    w.start("lastName");
    w.text(text::LAST_NAMES[rng.random_range(0..text::LAST_NAMES.len())]);
    w.end();
    w.start("initial");
    w.text(&text::FIRST_NAMES[rng.random_range(0..text::FIRST_NAMES.len())][..1]);
    w.end();
    w.end();
}

fn date(w: &mut StreamWriter, rng: &mut SmallRng, name: &str) {
    w.start(name);
    simple(w, "year", &rng.random_range(1950..2000u32).to_string());
    simple(w, "month", &rng.random_range(1..13u32).to_string());
    simple(w, "day", &rng.random_range(1..29u32).to_string());
    w.end();
}

fn dataset(w: &mut StreamWriter, rng: &mut SmallRng, i: usize) {
    w.start("dataset");
    w.attr("subject", "astronomy");
    w.attr("xmlns:xlink", "http://www.w3.org/XML/XLink/0.9");
    simple(
        w,
        "identifier",
        &format!("J_AZh_{}_{}", rng.random_range(40..80u32), i),
    );
    for _ in 0..rng.random_range(0..3u32) {
        simple(
            w,
            "altname",
            &format!("{} {}", text::word(rng).to_uppercase(), i),
        );
    }
    simple(w, "title", &text::sentence(rng, 6, 14));
    // Reference: the deep chain dataset/reference/source/other/...
    w.start("reference");
    w.start("source");
    w.start("other");
    simple(w, "title", &text::sentence(rng, 4, 9));
    for _ in 0..rng.random_range(1..4u32) {
        author(w, rng);
    }
    simple(
        w,
        "name",
        &format!("Astron. Zh. {}", rng.random_range(30..70u32)),
    );
    simple(w, "publisher", "NASA Astronomical Data Center");
    simple(w, "city", "Greenbelt");
    date(w, rng, "date");
    w.end();
    w.end();
    w.end();
    w.start("keywords");
    w.attr("parentListURL", "http://heasarc.gsfc.nasa.gov");
    for _ in 0..rng.random_range(2..6u32) {
        simple(w, "keyword", text::word(rng));
    }
    w.end();
    w.start("descriptions");
    w.start("description");
    for _ in 0..rng.random_range(1..4u32) {
        simple(w, "para", &text::sentence(rng, 20, 45));
    }
    w.end();
    w.end();
    w.start("history");
    date(w, rng, "creationDate");
    w.start("revisions");
    for _ in 0..rng.random_range(1..3u32) {
        w.start("revision");
        date(w, rng, "revisionDate");
        author(w, rng);
        simple(w, "description", &text::sentence(rng, 8, 18));
        w.end();
    }
    w.end();
    w.end();
    w.start("tableHead");
    w.start("fields");
    for _ in 0..rng.random_range(3..9u32) {
        w.start("field");
        simple(w, "name", text::word(rng));
        if rng.random_range(0..2u32) == 0 {
            simple(w, "definition", &text::sentence(rng, 5, 12));
        }
        w.end();
    }
    w.end();
    w.end();
    w.end(); // dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmorph_xml::dom::Document;

    #[test]
    fn well_formed() {
        let xml = NasaConfig {
            datasets: 20,
            ..Default::default()
        }
        .generate();
        let doc = Document::parse_str(&xml).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), "datasets");
        assert_eq!(doc.children(root).count(), 20);
    }

    #[test]
    fn deterministic() {
        let a = NasaConfig {
            datasets: 10,
            ..Default::default()
        }
        .generate();
        let b = NasaConfig {
            datasets: 10,
            ..Default::default()
        }
        .generate();
        assert_eq!(a, b);
    }

    #[test]
    fn deep_reference_chain_exists() {
        let xml = NasaConfig {
            datasets: 5,
            ..Default::default()
        }
        .generate();
        let doc = Document::parse_str(&xml).unwrap();
        let root = doc.root_element().unwrap();
        let ds = doc.children(root).next().unwrap();
        let reference = doc.child_named(ds, "reference").unwrap();
        let source = doc.child_named(reference, "source").unwrap();
        let other = doc.child_named(source, "other").unwrap();
        assert!(doc.child_named(other, "author").is_some());
        let date = doc.child_named(other, "date").unwrap();
        assert!(doc.child_named(date, "year").is_some());
    }

    #[test]
    fn text_heavier_than_dblp() {
        // Fig. 15 relies on differing text density across datasets.
        let nasa = NasaConfig {
            datasets: 50,
            ..Default::default()
        }
        .generate();
        let nasa_doc = Document::parse_str(&nasa).unwrap();
        let per_elem = nasa.len() as f64 / nasa_doc.element_count() as f64;
        assert!(per_elem > 25.0, "bytes/element {per_elem}");
    }

    #[test]
    fn approx_sizing() {
        let cfg = NasaConfig::with_approx_bytes(150_000);
        let len = cfg.generate().len();
        assert!(len > 75_000 && len < 320_000, "{len}");
    }
}

//! Deterministic filler-text generation shared by the generators.

use rand::rngs::SmallRng;
use rand::Rng;

/// The word pool (a Shakespeare-flavoured list in XMark tradition).
pub const WORDS: &[&str] = &[
    "against", "ancient", "battle", "beneath", "castle", "crown", "daggers", "dawn", "dream",
    "empire", "falcon", "fortune", "gilded", "glory", "harbor", "honest", "island", "journey",
    "kingdom", "lantern", "marble", "midnight", "noble", "ocean", "palace", "quarrel", "raven",
    "river", "shadow", "silver", "sword", "tempest", "throne", "thunder", "valley", "whisper",
    "winter", "wonder", "ambition", "banner", "citadel", "destiny", "ember", "frontier", "garland",
    "horizon", "ivory", "jubilee", "keystone", "legacy",
];

/// First names for people/authors.
pub const FIRST_NAMES: &[&str] = &[
    "Ada",
    "Alan",
    "Barbara",
    "Claude",
    "Donald",
    "Edgar",
    "Frances",
    "Grace",
    "Hedy",
    "Ivan",
    "John",
    "Katherine",
    "Leslie",
    "Margaret",
    "Niklaus",
    "Ole",
    "Peter",
    "Radia",
    "Stephen",
    "Tim",
];

/// Last names for people/authors.
pub const LAST_NAMES: &[&str] = &[
    "Allen",
    "Backus",
    "Codd",
    "Dijkstra",
    "Engelbart",
    "Floyd",
    "Gray",
    "Hamilton",
    "Hopper",
    "Iverson",
    "Johnson",
    "Knuth",
    "Lamport",
    "Liskov",
    "McCarthy",
    "Naur",
    "Perlis",
    "Ritchie",
    "Stonebraker",
    "Turing",
];

/// Country names for addresses.
pub const COUNTRIES: &[&str] = &[
    "United States",
    "Singapore",
    "Germany",
    "Japan",
    "Brazil",
    "Kenya",
    "Australia",
    "Norway",
    "India",
    "Canada",
];

/// Cities.
pub const CITIES: &[&str] = &[
    "Logan",
    "Singapore",
    "Berlin",
    "Kyoto",
    "Recife",
    "Nairobi",
    "Perth",
    "Bergen",
    "Chennai",
    "Halifax",
];

/// A random word.
pub fn word(rng: &mut SmallRng) -> &'static str {
    WORDS[rng.random_range(0..WORDS.len())]
}

/// `n` random words joined by spaces.
pub fn words(rng: &mut SmallRng, n: usize) -> String {
    let mut out = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(word(rng));
    }
    out
}

/// A sentence of `lo..hi` words with a capital and a period.
pub fn sentence(rng: &mut SmallRng, lo: usize, hi: usize) -> String {
    let n = rng.random_range(lo..=hi);
    let mut s = words(rng, n);
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    s.push('.');
    s
}

/// A full person name.
pub fn person_name(rng: &mut SmallRng) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.random_range(0..LAST_NAMES.len())]
    )
}

/// A Zipf-flavoured index into `0..n`: low indices are much more likely,
/// giving the author-reuse skew of real bibliographies.
pub fn zipf_index(rng: &mut SmallRng, n: usize) -> usize {
    debug_assert!(n > 0);
    let u: f64 = rng.random_range(0.0001..1.0f64);
    // Inverse-power transform (exponent ~1.2).
    let x = (u.powf(-0.45) - 1.0) / (0.0001f64.powf(-0.45) - 1.0);
    ((x * n as f64) as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn deterministic_words() {
        let a = words(&mut rng(), 10);
        let b = words(&mut rng(), 10);
        assert_eq!(a, b);
        assert_eq!(a.split(' ').count(), 10);
    }

    #[test]
    fn sentence_shape() {
        let s = sentence(&mut rng(), 3, 6);
        assert!(s.ends_with('.'));
        assert!(s.chars().next().unwrap().is_uppercase());
        let n = s.split(' ').count();
        assert!((3..=6).contains(&n), "{s}");
    }

    #[test]
    fn person_names_come_from_pools() {
        let name = person_name(&mut rng());
        let (first, last) = name.split_once(' ').unwrap();
        assert!(FIRST_NAMES.contains(&first));
        assert!(LAST_NAMES.contains(&last));
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = rng();
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            let i = zipf_index(&mut r, 100);
            counts[i] += 1;
        }
        // Head indices dominate the tail.
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[90..].iter().sum();
        assert!(head > tail * 3, "head {head} tail {tail}");
    }
}

//! An XMark-flavoured auction-site document generator.
//!
//! Reproduces the structural profile the §IX experiments lean on: a
//! `site` root with `regions` (six continents of items), `categories`
//! (with recursive `parlist`/`listitem` description markup), `catgraph`,
//! `people` (nested profiles, watches, addresses), `open_auctions`
//! (bidder lists, annotations) and `closed_auctions`. Document size
//! scales linearly with the `factor`, matching how the paper varies XMark
//! factors 0.1–0.5 (11–55 MB).

use crate::text::{self};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmorph_xml::writer::StreamWriter;

/// Configuration for the XMark-like generator.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Scale factor: sizes grow linearly. Factor 1.0 ≈ 11 MB by default
    /// (one tenth of real XMark's 110 MB, so the paper's 0.1–0.5 sweep
    /// stays laptop-friendly; multiply by 10 for full-size documents).
    pub factor: f64,
    /// RNG seed — same seed, same document.
    pub seed: u64,
    /// Bytes per unit factor (default ≈ 11 MB per 1.0, i.e. the paper's
    /// factor 0.1 document at `factor = 0.1` is ≈ 1.1 MB).
    pub bytes_per_factor: usize,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            factor: 0.1,
            seed: 7,
            bytes_per_factor: 11_000_000,
        }
    }
}

impl XmarkConfig {
    /// A config with the given factor and default seed/scaling.
    pub fn with_factor(factor: f64) -> Self {
        XmarkConfig {
            factor,
            ..Default::default()
        }
    }

    fn units(&self) -> usize {
        // Empirically ~750 bytes per item-unit across all sections.
        let target = (self.factor * self.bytes_per_factor as f64) as usize;
        (target / 750).max(6)
    }

    /// Generate the document.
    pub fn generate(&self) -> String {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let target = (self.factor * self.bytes_per_factor as f64) as usize;
        let mut w = StreamWriter::with_capacity(target + target / 8);
        site(&mut w, &mut rng, self.units(), &mut |_| Ok(())).expect("no-op sink cannot fail");
        w.finish()
    }

    /// Stream the document to a writer in bounded memory: completed
    /// fragments drain to `out` as the generator passes safe points
    /// (never mid-tag), so peak buffering is one fragment, not the
    /// document. Byte-identical to [`XmarkConfig::generate`] for the
    /// same config. Returns the number of bytes written.
    pub fn generate_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<u64> {
        const FLUSH_AT: usize = 64 * 1024;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut w = StreamWriter::with_capacity(2 * FLUSH_AT);
        let mut written = 0u64;
        site(
            &mut w,
            &mut rng,
            self.units(),
            &mut |w: &mut StreamWriter| {
                if w.len() >= FLUSH_AT {
                    let chunk = w.drain();
                    written += chunk.len() as u64;
                    out.write_all(chunk.as_bytes())?;
                }
                Ok(())
            },
        )?;
        let tail = w.finish();
        written += tail.len() as u64;
        out.write_all(tail.as_bytes())?;
        Ok(written)
    }
}

const REGIONS: &[&str] = &[
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Emit the whole document. `sink` is called at safe points — right
/// after a completed item/category/person/auction, never while an open
/// tag is pending — so a draining sink observes exactly the bytes a
/// non-draining run would produce.
fn site<S: FnMut(&mut StreamWriter) -> std::io::Result<()>>(
    w: &mut StreamWriter,
    rng: &mut SmallRng,
    units: usize,
    sink: &mut S,
) -> std::io::Result<()> {
    // Section weights roughly follow XMark's document composition.
    let items = units / 2;
    let categories = (units / 20).max(1);
    let people = units / 4;
    let open = units / 5;
    let closed = units / 8;

    w.start("site");
    w.start("regions");
    for (i, region) in REGIONS.iter().enumerate() {
        w.start(region);
        let share = items / REGIONS.len() + usize::from(i < items % REGIONS.len());
        for n in 0..share {
            item(w, rng, region, i * 1000 + n);
            sink(w)?;
        }
        w.end();
    }
    w.end(); // regions

    w.start("categories");
    for c in 0..categories {
        w.start("category");
        w.attr("id", &format!("category{c}"));
        simple(w, "name", &text::words(rng, 2));
        w.start("description");
        parlist(w, rng, 2);
        w.end();
        w.end();
        sink(w)?;
    }
    w.end();

    w.start("catgraph");
    for c in 1..categories {
        w.start("edge");
        w.attr("from", &format!("category{}", c - 1));
        w.attr("to", &format!("category{c}"));
        w.end();
        sink(w)?;
    }
    w.end();

    w.start("people");
    for p in 0..people {
        person(w, rng, p);
        sink(w)?;
    }
    w.end();

    w.start("open_auctions");
    for a in 0..open {
        open_auction(w, rng, a, people.max(1), items.max(1));
        sink(w)?;
    }
    w.end();

    w.start("closed_auctions");
    for a in 0..closed {
        closed_auction(w, rng, a, people.max(1), items.max(1));
        sink(w)?;
    }
    w.end();

    w.end(); // site
    Ok(())
}

fn simple(w: &mut StreamWriter, name: &str, value: &str) {
    w.start(name);
    w.text(value);
    w.end();
}

fn item(w: &mut StreamWriter, rng: &mut SmallRng, region: &str, id: usize) {
    w.start("item");
    w.attr("id", &format!("item{region}{id}"));
    simple(
        w,
        "location",
        text::COUNTRIES[rng.random_range(0..text::COUNTRIES.len())],
    );
    simple(w, "quantity", &rng.random_range(1..9u32).to_string());
    simple(w, "name", &text::words(rng, 3));
    w.start("payment");
    w.text("Creditcard");
    w.end();
    w.start("description");
    let depth = rng.random_range(1..3);
    parlist(w, rng, depth);
    w.end();
    w.start("shipping");
    w.text("Will ship internationally");
    w.end();
    w.start("incategory");
    w.attr(
        "category",
        &format!("category{}", rng.random_range(0..8u32)),
    );
    w.end();
    w.start("mailbox");
    for _ in 0..rng.random_range(0..3u32) {
        w.start("mail");
        simple(w, "from", &text::person_name(rng));
        simple(w, "to", &text::person_name(rng));
        simple(w, "date", &date(rng));
        w.start("text");
        w.text(&text::sentence(rng, 8, 20));
        w.end();
        w.end();
    }
    w.end();
    w.end();
}

/// Mixed text with XMark's inline markup: `emph`, `keyword`, `bold`
/// fragments interleaved with plain words, nesting up to `depth` — the
/// source of much of real XMark's type richness.
fn rich_text(w: &mut StreamWriter, rng: &mut SmallRng, words: usize, depth: usize) {
    let mut remaining = words;
    while remaining > 0 {
        let chunk = rng.random_range(1..=remaining.min(6));
        remaining -= chunk;
        if depth > 0 && rng.random_range(0..3u32) == 0 {
            let tag = ["emph", "keyword", "bold"][rng.random_range(0..3usize)];
            w.start(tag);
            rich_text(w, rng, chunk, depth - 1);
            w.end();
        } else {
            w.text(&text::words(rng, chunk));
        }
        if remaining > 0 {
            w.text(" ");
        }
    }
}

/// Recursive `parlist`/`listitem` markup — the source of XMark's deep,
/// type-rich description structure.
fn parlist(w: &mut StreamWriter, rng: &mut SmallRng, depth: usize) {
    w.start("parlist");
    let n = rng.random_range(1..4usize);
    for _ in 0..n {
        w.start("listitem");
        if depth > 0 && rng.random_range(0..4u32) == 0 {
            parlist(w, rng, depth - 1);
        } else {
            w.start("text");
            let n = rng.random_range(10..25usize);
            rich_text(w, rng, n, 2);
            w.end();
        }
        w.end();
    }
    w.end();
}

fn person(w: &mut StreamWriter, rng: &mut SmallRng, id: usize) {
    w.start("person");
    w.attr("id", &format!("person{id}"));
    simple(w, "name", &text::person_name(rng));
    simple(w, "emailaddress", &format!("mailto:u{id}@example.org"));
    if rng.random_range(0..2u32) == 0 {
        simple(
            w,
            "phone",
            &format!(
                "+1 ({}) {}",
                rng.random_range(100..999u32),
                rng.random_range(1000000..9999999u32)
            ),
        );
    }
    if rng.random_range(0..2u32) == 0 {
        w.start("address");
        simple(
            w,
            "street",
            &format!("{} {} St", rng.random_range(1..99u32), text::word(rng)),
        );
        simple(
            w,
            "city",
            text::CITIES[rng.random_range(0..text::CITIES.len())],
        );
        simple(
            w,
            "country",
            text::COUNTRIES[rng.random_range(0..text::COUNTRIES.len())],
        );
        simple(w, "zipcode", &rng.random_range(10000..99999u32).to_string());
        w.end();
    }
    w.start("profile");
    w.attr(
        "income",
        &format!("{:.2}", rng.random_range(20000..120000u32) as f64 / 1.0),
    );
    for _ in 0..rng.random_range(0..4u32) {
        w.start("interest");
        w.attr(
            "category",
            &format!("category{}", rng.random_range(0..8u32)),
        );
        w.end();
    }
    if rng.random_range(0..2u32) == 0 {
        simple(w, "education", "Graduate School");
    }
    if rng.random_range(0..3u32) == 0 {
        simple(w, "business", "Yes");
    }
    if rng.random_range(0..3u32) == 0 {
        simple(w, "age", &rng.random_range(18..80u32).to_string());
    }
    w.end();
    if rng.random_range(0..3u32) == 0 {
        simple(
            w,
            "creditcard",
            &format!(
                "{} {} {} {}",
                rng.random_range(1000..9999u32),
                rng.random_range(1000..9999u32),
                rng.random_range(1000..9999u32),
                rng.random_range(1000..9999u32)
            ),
        );
    }
    if rng.random_range(0..3u32) == 0 {
        simple(w, "homepage", &format!("http://www.example.org/~u{id}"));
    }
    if rng.random_range(0..2u32) == 0 {
        w.start("watches");
        for _ in 0..rng.random_range(1..3u32) {
            w.start("watch");
            w.attr(
                "open_auction",
                &format!("open_auction{}", rng.random_range(0..50u32)),
            );
            w.end();
        }
        w.end();
    }
    w.end();
}

fn date(rng: &mut SmallRng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.random_range(1..13u32),
        rng.random_range(1..29u32),
        rng.random_range(1998..2003u32)
    )
}

fn open_auction(w: &mut StreamWriter, rng: &mut SmallRng, id: usize, people: usize, items: usize) {
    w.start("open_auction");
    w.attr("id", &format!("open_auction{id}"));
    simple(
        w,
        "initial",
        &format!("{:.2}", rng.random_range(100..10000u32) as f64 / 100.0),
    );
    for _ in 0..rng.random_range(0..4u32) {
        w.start("bidder");
        simple(w, "date", &date(rng));
        simple(
            w,
            "time",
            &format!(
                "{:02}:{:02}:{:02}",
                rng.random_range(0..24u32),
                rng.random_range(0..60u32),
                rng.random_range(0..60u32)
            ),
        );
        w.start("personref");
        w.attr(
            "person",
            &format!("person{}", rng.random_range(0..people as u32)),
        );
        w.end();
        simple(
            w,
            "increase",
            &format!("{:.2}", rng.random_range(150..5000u32) as f64 / 100.0),
        );
        w.end();
    }
    simple(
        w,
        "current",
        &format!("{:.2}", rng.random_range(100..20000u32) as f64 / 100.0),
    );
    w.start("itemref");
    w.attr(
        "item",
        &format!("itemafrica{}", rng.random_range(0..items as u32)),
    );
    w.end();
    w.start("seller");
    w.attr(
        "person",
        &format!("person{}", rng.random_range(0..people as u32)),
    );
    w.end();
    w.start("annotation");
    simple(w, "author", &text::person_name(rng));
    w.start("description");
    if rng.random_range(0..3u32) == 0 {
        parlist(w, rng, 1);
    } else {
        w.start("text");
        let n = rng.random_range(12..30usize);
        rich_text(w, rng, n, 2);
        w.end();
    }
    w.end();
    w.end();
    simple(w, "quantity", &rng.random_range(1..5u32).to_string());
    simple(w, "type", "Regular");
    w.start("interval");
    simple(w, "start", &date(rng));
    simple(w, "end", &date(rng));
    w.end();
    w.end();
}

fn closed_auction(
    w: &mut StreamWriter,
    rng: &mut SmallRng,
    _id: usize,
    people: usize,
    items: usize,
) {
    w.start("closed_auction");
    w.start("seller");
    w.attr(
        "person",
        &format!("person{}", rng.random_range(0..people as u32)),
    );
    w.end();
    w.start("buyer");
    w.attr(
        "person",
        &format!("person{}", rng.random_range(0..people as u32)),
    );
    w.end();
    w.start("itemref");
    w.attr(
        "item",
        &format!("itemasia{}", rng.random_range(0..items as u32)),
    );
    w.end();
    simple(
        w,
        "price",
        &format!("{:.2}", rng.random_range(100..20000u32) as f64 / 100.0),
    );
    simple(w, "date", &date(rng));
    simple(w, "quantity", &rng.random_range(1..5u32).to_string());
    simple(w, "type", "Regular");
    w.start("annotation");
    simple(w, "author", &text::person_name(rng));
    w.start("description");
    w.start("text");
    w.text(&text::sentence(rng, 12, 30));
    w.end();
    w.end();
    w.end();
    w.end();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmorph_xml::dom::Document;

    #[test]
    fn generates_well_formed_xml() {
        let xml = XmarkConfig {
            factor: 0.01,
            ..Default::default()
        }
        .generate();
        let doc = Document::parse_str(&xml).unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), "site");
    }

    #[test]
    fn generate_to_is_byte_identical() {
        let cfg = XmarkConfig {
            factor: 0.02,
            ..Default::default()
        };
        let whole = cfg.generate();
        let mut streamed: Vec<u8> = Vec::new();
        let written = cfg.generate_to(&mut streamed).unwrap();
        assert_eq!(written as usize, streamed.len());
        assert_eq!(streamed, whole.as_bytes());
    }

    #[test]
    fn deterministic() {
        let a = XmarkConfig {
            factor: 0.01,
            ..Default::default()
        }
        .generate();
        let b = XmarkConfig {
            factor: 0.01,
            ..Default::default()
        }
        .generate();
        assert_eq!(a, b);
    }

    #[test]
    fn scales_roughly_linearly() {
        let small = XmarkConfig {
            factor: 0.01,
            ..Default::default()
        }
        .generate()
        .len();
        let large = XmarkConfig {
            factor: 0.04,
            ..Default::default()
        }
        .generate()
        .len();
        let ratio = large as f64 / small as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "ratio {ratio} ({small} -> {large})"
        );
    }

    #[test]
    fn size_targets_factor() {
        let cfg = XmarkConfig {
            factor: 0.02,
            ..Default::default()
        };
        let len = cfg.generate().len();
        let target = (0.02 * cfg.bytes_per_factor as f64) as usize;
        assert!(
            len > target / 2 && len < target * 2,
            "len {len} vs target {target}"
        );
    }

    #[test]
    fn has_the_site_sections() {
        let xml = XmarkConfig {
            factor: 0.01,
            ..Default::default()
        }
        .generate();
        for section in [
            "<regions>",
            "<categories>",
            "<people>",
            "<open_auctions>",
            "<closed_auctions>",
        ] {
            assert!(xml.contains(section), "missing {section}");
        }
        assert!(xml.contains("<parlist>"));
    }

    #[test]
    fn many_distinct_types() {
        use std::collections::BTreeSet;
        let xml = XmarkConfig {
            factor: 0.02,
            ..Default::default()
        }
        .generate();
        let doc = Document::parse_str(&xml).unwrap();
        let root = doc.root_element().unwrap();
        let mut paths: BTreeSet<String> = BTreeSet::new();
        for el in doc.descendant_elements(root) {
            paths.insert(doc.root_path(el).join("/"));
            for (a, _) in doc.attrs(el) {
                paths.insert(format!("{}/@{}", doc.root_path(el).join("/"), a));
            }
        }
        // The paper's XMark documents have 471 distinct types; the
        // structural profile here yields a comparable order.
        assert!(
            paths.len() >= 80,
            "only {} distinct root-path types",
            paths.len()
        );
    }
}

//! A DBLP-flavoured bibliography generator.
//!
//! DBLP.xml is flat and wide: a `dblp` root with millions of shallow
//! publication records, each carrying `author+`, `title`, `year`, and a
//! handful of optional fields. The paper slices DBLP at 134–518 MB for
//! Fig. 14 and uses its author/title/year paths for the three
//! transformation sizes; this generator reproduces exactly that profile
//! with Zipf-skewed author reuse.

use crate::text;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmorph_xml::writer::StreamWriter;

/// Configuration for the DBLP-like generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of publication records.
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            records: 1000,
            seed: 11,
        }
    }
}

/// Record kinds with DBLP-ish proportions.
const KINDS: &[(&str, u32)] = &[
    ("inproceedings", 50),
    ("article", 35),
    ("proceedings", 5),
    ("book", 5),
    ("phdthesis", 5),
];

/// Venue name fragments.
const VENUES: &[&str] = &[
    "ICDE",
    "VLDB",
    "SIGMOD",
    "EDBT",
    "CIKM",
    "WWW",
    "TODS",
    "TKDE",
    "Inf. Syst.",
    "DKE",
];

impl DblpConfig {
    /// A config sized to approximately `bytes` of output (records
    /// average ≈ 330 bytes, mirroring DBLP's density).
    pub fn with_approx_bytes(bytes: usize) -> Self {
        DblpConfig {
            records: (bytes / 330).max(1),
            ..Default::default()
        }
    }

    /// Generate the document.
    pub fn generate(&self) -> String {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Author pool scales sub-linearly like real DBLP.
        let pool: Vec<String> = (0..(self.records / 3).clamp(8, 40_000))
            .map(|_| text::person_name(&mut rng))
            .collect();
        let mut w = StreamWriter::with_capacity(self.records * 340);
        w.start("dblp");
        for i in 0..self.records {
            record(&mut w, &mut rng, &pool, i);
        }
        w.end();
        w.finish()
    }
}

fn pick_kind(rng: &mut SmallRng) -> &'static str {
    let total: u32 = KINDS.iter().map(|(_, w)| w).sum();
    let mut roll = rng.random_range(0..total);
    for (kind, weight) in KINDS {
        if roll < *weight {
            return kind;
        }
        roll -= weight;
    }
    KINDS[0].0
}

fn simple(w: &mut StreamWriter, name: &str, value: &str) {
    w.start(name);
    w.text(value);
    w.end();
}

fn record(w: &mut StreamWriter, rng: &mut SmallRng, pool: &[String], i: usize) {
    let kind = pick_kind(rng);
    w.start(kind);
    w.attr("key", &format!("{kind}/x/{i}"));
    w.attr("mdate", "2011-01-11");
    let nauthors = match kind {
        "phdthesis" => 1,
        "proceedings" => rng.random_range(1..3usize),
        _ => rng.random_range(1..5usize),
    };
    for _ in 0..nauthors {
        simple(w, "author", &pool[text::zipf_index(rng, pool.len())]);
    }
    simple(w, "title", &text::sentence(rng, 4, 12));
    let year = rng.random_range(1970..2012u32);
    match kind {
        "article" => {
            simple(w, "journal", VENUES[rng.random_range(5..VENUES.len())]);
            simple(w, "volume", &rng.random_range(1..40u32).to_string());
            if rng.random_range(0..2u32) == 0 {
                simple(w, "number", &rng.random_range(1..12u32).to_string());
            }
        }
        "inproceedings" => {
            simple(
                w,
                "booktitle",
                &format!("{} {}", VENUES[rng.random_range(0..5)], year),
            );
        }
        "book" | "proceedings" => {
            simple(w, "publisher", "Springer");
            if rng.random_range(0..2u32) == 0 {
                simple(
                    w,
                    "isbn",
                    &format!(
                        "3-540-{:05}-{}",
                        rng.random_range(0..99999u32),
                        rng.random_range(0..10u32)
                    ),
                );
            }
        }
        "phdthesis" => simple(w, "school", "Utah State University"),
        _ => {}
    }
    let lo = rng.random_range(1..400u32);
    simple(
        w,
        "pages",
        &format!("{lo}-{}", lo + rng.random_range(5..25u32)),
    );
    simple(w, "year", &year.to_string());
    if rng.random_range(0..3u32) > 0 {
        simple(w, "url", &format!("db/{kind}/{i}.html"));
    }
    if rng.random_range(0..3u32) == 0 {
        simple(w, "ee", &format!("https://doi.org/10.0/{i}"));
    }
    w.end();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmorph_xml::dom::Document;

    #[test]
    fn well_formed_and_rooted_at_dblp() {
        let xml = DblpConfig {
            records: 200,
            ..Default::default()
        }
        .generate();
        let doc = Document::parse_str(&xml).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), "dblp");
        assert_eq!(doc.children(root).count(), 200);
    }

    #[test]
    fn deterministic() {
        let a = DblpConfig {
            records: 50,
            ..Default::default()
        }
        .generate();
        let b = DblpConfig {
            records: 50,
            ..Default::default()
        }
        .generate();
        assert_eq!(a, b);
    }

    #[test]
    fn every_record_has_core_fields() {
        let xml = DblpConfig {
            records: 100,
            ..Default::default()
        }
        .generate();
        let doc = Document::parse_str(&xml).unwrap();
        let root = doc.root_element().unwrap();
        for rec in doc.children(root) {
            assert!(
                doc.child_named(rec, "author").is_some(),
                "{}",
                doc.name(rec)
            );
            assert!(doc.child_named(rec, "title").is_some());
            assert!(doc.child_named(rec, "year").is_some());
            assert!(doc.child_named(rec, "pages").is_some());
        }
    }

    #[test]
    fn approx_bytes_sizing() {
        let cfg = DblpConfig::with_approx_bytes(200_000);
        let len = cfg.generate().len();
        assert!(len > 100_000 && len < 400_000, "{len}");
    }

    #[test]
    fn author_reuse_is_skewed() {
        use std::collections::HashMap;
        let xml = DblpConfig {
            records: 500,
            ..Default::default()
        }
        .generate();
        let doc = Document::parse_str(&xml).unwrap();
        let root = doc.root_element().unwrap();
        let mut counts: HashMap<String, usize> = HashMap::new();
        for rec in doc.children(root) {
            for a in doc.children_named(rec, "author") {
                *counts.entry(doc.deep_text(a)).or_insert(0) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max >= 10, "top author only {max} papers — no skew?");
    }

    #[test]
    fn mixed_record_kinds() {
        let xml = DblpConfig {
            records: 300,
            ..Default::default()
        }
        .generate();
        assert!(xml.contains("<article "));
        assert!(xml.contains("<inproceedings "));
        assert!(xml.contains("<journal>"));
        assert!(xml.contains("<booktitle>"));
    }
}

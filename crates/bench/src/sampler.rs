//! Background sampling of I/O counters and memory while an experiment
//! runs — the harness's `vmstat` (Figs. 11–13).

use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xmorph_pagestore::{IoSnapshot, IoStats};

/// One metric sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Time since the sampler started.
    pub elapsed: Duration,
    /// Cumulative I/O counters at this instant.
    pub io: IoSnapshot,
    /// Live allocated bytes (0 unless the counting allocator is
    /// installed).
    pub allocated: usize,
}

/// A running sampler thread.
pub struct Sampler {
    stop: SyncSender<()>,
    handle: JoinHandle<Vec<Sample>>,
}

impl Sampler {
    /// Start sampling `stats` every `interval`.
    pub fn start(stats: IoStats, interval: Duration) -> Sampler {
        let (stop, stop_rx) = sync_channel::<()>(1);
        let handle = std::thread::spawn(move || {
            let begin = Instant::now();
            let mut samples = Vec::new();
            loop {
                samples.push(Sample {
                    elapsed: begin.elapsed(),
                    io: stats.snapshot(),
                    allocated: crate::alloc::allocated_bytes(),
                });
                match stop_rx.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => {}
                    // Stop requested, or the `Sampler` handle was
                    // dropped without `finish` — either way, wrap up.
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                        // Final sample on stop.
                        samples.push(Sample {
                            elapsed: begin.elapsed(),
                            io: stats.snapshot(),
                            allocated: crate::alloc::allocated_bytes(),
                        });
                        return samples;
                    }
                }
            }
        });
        Sampler { stop, handle }
    }

    /// Stop and collect the samples.
    pub fn finish(self) -> Vec<Sample> {
        let _ = self.stop.send(());
        self.handle.join().expect("sampler thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_collects_and_stops() {
        let stats = IoStats::new();
        let sampler = Sampler::start(stats.clone(), Duration::from_millis(5));
        stats.record_read(3, Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(25));
        stats.record_write(2, Duration::from_millis(1));
        let samples = sampler.finish();
        assert!(samples.len() >= 3, "{}", samples.len());
        let last = samples.last().unwrap();
        assert_eq!(last.io.blocks_read, 3);
        assert_eq!(last.io.blocks_written, 2);
        // Elapsed is monotone.
        assert!(samples.windows(2).all(|w| w[0].elapsed <= w[1].elapsed));
    }
}

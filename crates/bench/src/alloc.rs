//! A counting global allocator.
//!
//! The paper's Fig. 13 charts available memory (via `vmstat`) while a
//! transformation runs. We instrument the process directly: binaries that
//! want the chart install [`CountingAlloc`] as their global allocator and
//! sample [`allocated_bytes`] — *more* precise than host-level vmstat for
//! the claim being made (the JVM grabbing memory early vs our streaming
//! pipeline's flat usage).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A `System`-backed allocator that tracks live and peak bytes.
pub struct CountingAlloc;

// SAFETY: delegates to `System`, only adding relaxed counter updates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let now = ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        ALLOCATED.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let now = ALLOCATED.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                    + new_size
                    - layout.size();
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                ALLOCATED.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Bytes currently allocated (0 unless [`CountingAlloc`] is installed).
pub fn allocated_bytes() -> usize {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Peak bytes ever allocated.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live allocation, so the next
/// [`peak_bytes`] reading isolates whatever phase runs after this call.
pub fn reset_peak() {
    PEAK.store(ALLOCATED.load(Ordering::Relaxed), Ordering::Relaxed);
}

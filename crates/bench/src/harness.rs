//! Shared experiment drivers: each §IX experiment as a reusable function
//! so the figure binaries and the criterion benches measure the same code
//! paths.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::semantics::shape::Shape;
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_pagestore::{IoStats, Store};
use xmorph_xqlite::XqliteDb;

/// Where an experiment's store lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// In memory — pure CPU cost, used by criterion micro runs.
    Memory,
    /// A temp file — real device I/O, used by the figure binaries.
    TempFile,
}

/// A disposable store with shared I/O stats.
pub struct BenchStore {
    /// The store.
    pub store: Store,
    /// Its I/O counters.
    pub stats: IoStats,
    path: Option<PathBuf>,
}

impl BenchStore {
    /// Create a store of the given kind with a modest buffer pool (so
    /// larger-than-memory behaviour shows at laptop scale).
    pub fn create(kind: StoreKind, capacity: usize) -> BenchStore {
        let stats = IoStats::new();
        let options = Store::options().stats(stats.clone()).capacity(capacity);
        match kind {
            StoreKind::Memory => BenchStore {
                store: options.open_memory(),
                stats,
                path: None,
            },
            StoreKind::TempFile => {
                let dir = std::env::temp_dir().join("xmorph-bench");
                std::fs::create_dir_all(&dir).expect("create temp dir");
                let path = dir.join(format!(
                    "bench-{}-{:x}.db",
                    std::process::id(),
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .unwrap()
                        .as_nanos()
                ));
                let store = options.create(&path).expect("create temp store");
                BenchStore {
                    store,
                    stats,
                    path: Some(path),
                }
            }
        }
    }

    /// Path of the backing file, when file-backed.
    pub fn path(&self) -> Option<&PathBuf> {
        self.path.as_ref()
    }
}

impl Drop for BenchStore {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Timings of one XMorph transformation run (the Fig. 10/14 measurement
/// decomposition).
#[derive(Debug, Clone)]
pub struct MorphRun {
    /// Input document size in bytes.
    pub input_bytes: usize,
    /// Time to shred the document into the store (reported separately in
    /// the paper — "the shredding is done once").
    pub shred: Duration,
    /// The XMorph *compile* phase: parse + ξ + loss analysis.
    pub compile: Duration,
    /// The render phase.
    pub render: Duration,
    /// Output size in bytes.
    pub output_bytes: usize,
    /// Output element count (for throughput plots).
    pub output_elements: usize,
    /// Distinct types in the source shape.
    pub types: usize,
}

/// Shred `xml` and run `guard` against it, timing each phase.
pub fn run_morph(xml: &str, guard_text: &str, kind: StoreKind) -> MorphRun {
    let bench_store = BenchStore::create(kind, 1024);
    let t0 = Instant::now();
    let doc = ShreddedDoc::shred_str(&bench_store.store, xml).expect("shred");
    bench_store.store.flush().expect("flush");
    let shred = t0.elapsed();

    let t1 = Instant::now();
    let guard = Guard::parse(guard_text).expect("parse guard");
    let analysis = guard.analyze(&doc).expect("analyze");
    let compile = t1.elapsed();

    let t2 = Instant::now();
    let output = render(&doc, &analysis.target, &RenderOptions::default()).expect("render");
    let render_time = t2.elapsed();

    let output_elements = count_open_tags(&output);

    MorphRun {
        input_bytes: xml.len(),
        shred,
        compile,
        render: render_time,
        output_bytes: output.len(),
        output_elements,
        types: doc.types().len(),
    }
}

/// Count opening tags (elements) in serialized XML: `<name` or `<name/>`,
/// excluding close tags.
fn count_open_tags(xml: &str) -> usize {
    let bytes = xml.as_bytes();
    let mut count = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'<' && i + 1 < bytes.len() && bytes[i + 1] != b'/' {
            count += 1;
        }
        i += 1;
    }
    count
}

/// A pre-shredded document for repeated transformations (Figs. 15/16 run
/// many guards over one shred).
pub struct PreparedDoc {
    /// Keeps the store (and temp file) alive.
    pub bench_store: BenchStore,
    /// The shredded document.
    pub doc: ShreddedDoc,
    /// Shred time.
    pub shred: Duration,
    /// Input size.
    pub input_bytes: usize,
}

/// Shred once for reuse.
pub fn prepare(xml: &str, kind: StoreKind) -> PreparedDoc {
    let bench_store = BenchStore::create(kind, 1024);
    let t0 = Instant::now();
    let doc = ShreddedDoc::shred_str(&bench_store.store, xml).expect("shred");
    bench_store.store.flush().expect("flush");
    PreparedDoc {
        bench_store,
        doc,
        shred: t0.elapsed(),
        input_bytes: xml.len(),
    }
}

/// One guard evaluation over a prepared doc: (compile, render, output
/// bytes, output elements).
pub fn run_guard_on(prep: &PreparedDoc, guard_text: &str) -> (Duration, Duration, usize, usize) {
    let t1 = Instant::now();
    let guard = Guard::parse(guard_text).expect("parse guard");
    let analysis = guard.analyze(&prep.doc).expect("analyze");
    let compile = t1.elapsed();
    let t2 = Instant::now();
    let output = render(&prep.doc, &analysis.target, &RenderOptions::default()).expect("render");
    let render_time = t2.elapsed();
    let elements = count_open_tags(&output);
    (compile, render_time, output.len(), elements)
}

/// The evaluated target shape of a guard over a prepared doc (for
/// inspecting predicted shapes in the binaries).
pub fn target_shape(prep: &PreparedDoc, guard_text: &str) -> Shape {
    let guard = Guard::parse(guard_text).expect("parse guard");
    guard.analyze(&prep.doc).expect("analyze").target
}

/// The baseline: store a document in the eXist-like DBMS and time the
/// paper's dump query `for $b in doc(..)/root return <data>{$b}</data>`.
/// eXist stores documents pre-parsed in document order, so this query is
/// its *best case* — "the timing is essentially that of reading the
/// document from disk to a String object" — which for our store is a
/// sequential chunk scan plus the wrapper, not a query-engine pass.
pub fn exist_dump(xml: &str, _root: &str, kind: StoreKind) -> (Duration, Duration, usize) {
    let bench_store = BenchStore::create(kind, 1024);
    let db = XqliteDb::new(bench_store.store.clone());
    let t0 = Instant::now();
    db.store_document("doc.xml", xml).expect("store");
    bench_store.store.flush().expect("flush");
    let load = t0.elapsed();
    let t1 = Instant::now();
    let body = db.load_document("doc.xml").expect("read").expect("present");
    let out = format!("<data>{body}</data>");
    let query = t1.elapsed();
    (load, query, out.len())
}

/// Run an arbitrary baseline query over a stored document.
pub fn exist_query(xml: &str, query: &str, kind: StoreKind) -> (Duration, usize) {
    let bench_store = BenchStore::create(kind, 1024);
    let db = XqliteDb::new(bench_store.store.clone());
    db.store_document("doc.xml", xml).expect("store");
    bench_store.store.flush().expect("flush");
    let t = Instant::now();
    let out = db.query(query).expect("query");
    (t.elapsed(), out.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmorph_datagen::XmarkConfig;

    #[test]
    fn run_morph_mutate_site() {
        let xml = XmarkConfig {
            factor: 0.002,
            ..Default::default()
        }
        .generate();
        let run = run_morph(&xml, "MUTATE site", StoreKind::Memory);
        assert!(run.output_bytes > 0);
        assert!(run.types > 50);
        assert!(run.output_elements > 10);
        // MUTATE site is the identity rearrangement: output carries the
        // same element structure (plus the <result> wrapper).
    }

    #[test]
    fn exist_dump_round_trips() {
        let xml = "<site><a>x</a></site>";
        let (_, _, out_len) = exist_dump(xml, "site", StoreKind::Memory);
        assert_eq!(out_len, "<data><site><a>x</a></site></data>".len());
    }

    #[test]
    fn prepared_doc_reuse() {
        let xml = XmarkConfig {
            factor: 0.002,
            ..Default::default()
        }
        .generate();
        let prep = prepare(&xml, StoreKind::Memory);
        let (c1, r1, b1, e1) = run_guard_on(&prep, "MORPH person [ name emailaddress ]");
        let (_, _, b2, _) = run_guard_on(&prep, "MORPH person [ name emailaddress ]");
        assert_eq!(b1, b2);
        assert!(e1 > 0);
        assert!(c1 > Duration::ZERO);
        assert!(r1 > Duration::ZERO);
    }

    #[test]
    fn temp_file_store_works_and_cleans_up() {
        let xml = "<r><a>1</a></r>";
        let path;
        {
            let prep = prepare(xml, StoreKind::TempFile);
            path = prep.bench_store.path().cloned().unwrap();
            assert!(path.exists());
            let (_, _, bytes, _) = run_guard_on(&prep, "MORPH a");
            assert!(bytes > 0);
        }
        assert!(!path.exists(), "temp store not removed");
    }

    #[test]
    fn count_open_tags_counts_elements() {
        assert_eq!(count_open_tags("<a><b/>text</a>"), 2);
        assert_eq!(count_open_tags("<a>1 &lt; 2</a>"), 1);
    }
}

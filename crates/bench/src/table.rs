//! Plain-text table printing for the figure binaries.

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a row (must match the header length).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a byte count as MB with 2 decimals.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["x".to_string(), "1".to_string()]);
        t.row(&["longer-name".to_string(), "22".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(mb(11_000_000), "11.00");
    }
}

//! Closest-join microbenchmark (repository extension, not a paper
//! figure): before/after numbers for the PR-2 hot-path work.
//!
//! Two measurements on one XMark document:
//!
//! 1. **Shredding** — the streaming shredder with incremental B+tree
//!    inserts (one root-to-leaf descent per entry, the seed behaviour)
//!    vs sort-once + bottom-up bulk loading.
//! 2. **Closest-join probes** — `closest_children` resolved through a
//!    B+tree prefix probe per parent (`closest_children_btree`, the
//!    seed hot path) vs the columnar path (two binary searches on the
//!    decoded type column), plus the `has_closest_child` existence
//!    probe. Both sides are verified to return identical groups before
//!    timing.
//!
//! Flags: `--scale <f>` scales the document, `--smoke` runs a tiny
//! document with few iterations (the CI invocation), `--json` writes
//! the measurements to `BENCH_PR2.json` in the current directory.

use std::time::Instant;
use xmorph_bench::harness::{BenchStore, StoreKind};
use xmorph_bench::table::Table;
use xmorph_core::{ShredOptions, ShreddedDoc, TypeId};
use xmorph_datagen::XmarkConfig;
use xmorph_xml::dewey::Dewey;

/// Parent/child root paths joined in the microbench: a parent-child
/// edge, a deeper descendant edge, and a cousin pair (joins through an
/// ancestor).
const JOIN_PAIRS: &[(&str, &str)] = &[
    ("site.people.person", "site.people.person.name"),
    ("site.people.person", "site.people.person.address.city"),
    ("site.people.person.name", "site.people.person.address.city"),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let scale = xmorph_bench::parse_scale();

    let factor = if smoke { 0.004 } else { 0.05 * scale };
    let iters = if smoke { 3 } else { 40 };
    let xml = XmarkConfig::with_factor(factor).generate();
    println!(
        "Closest-join hot path (XMark factor {factor}, {} bytes, {iters} passes)\n",
        xml.len()
    );

    let (shred_inc_s, shred_bulk_s) = bench_shred(&xml);
    let mut table = Table::new(&["shred path", "seconds", "MB/s"]);
    let mb = xml.len() as f64 / 1e6;
    table.row(&[
        "incremental inserts".into(),
        format!("{shred_inc_s:.3}"),
        format!("{:.1}", mb / shred_inc_s),
    ]);
    table.row(&[
        "sorted bulk load".into(),
        format!("{shred_bulk_s:.3}"),
        format!("{:.1}", mb / shred_bulk_s),
    ]);
    table.print();
    println!(
        "shred speed-up: {:.2}x\n",
        shred_inc_s / shred_bulk_s.max(1e-9)
    );

    let bench_store = BenchStore::create(StoreKind::Memory, 4096);
    let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
    let joins = bench_joins(&doc, iters);

    let mut table = Table::new(&[
        "join pair",
        "parents",
        "btree probes/s",
        "columnar probes/s",
        "speed-up",
        "exists probes/s",
    ]);
    for j in &joins {
        table.row(&[
            j.label.clone(),
            j.parents.to_string(),
            format!("{:.0}", j.btree_probes_per_s),
            format!("{:.0}", j.columnar_probes_per_s),
            format!("{:.2}x", j.speedup()),
            format!("{:.0}", j.exists_probes_per_s),
        ]);
    }
    table.print();
    let total_speedup = joins.iter().map(JoinBench::speedup).sum::<f64>() / joins.len() as f64;
    println!("\nmean closest-join speed-up: {total_speedup:.2}x");

    if json {
        let path = "BENCH_PR2.json";
        std::fs::write(
            path,
            render_json(&xml, factor, shred_inc_s, shred_bulk_s, &joins),
        )
        .expect("write BENCH_PR2.json");
        println!("wrote {path}");
    }
}

/// Time one shred of `xml` for each load path, seconds.
fn bench_shred(xml: &str) -> (f64, f64) {
    let incremental = {
        let bs = BenchStore::create(StoreKind::Memory, 4096);
        let t = Instant::now();
        ShreddedDoc::shred_str_with(
            &bs.store,
            xml,
            &ShredOptions {
                bulk_load: false,
                ..Default::default()
            },
        )
        .expect("shred incremental");
        t.elapsed().as_secs_f64()
    };
    let bulk = {
        let bs = BenchStore::create(StoreKind::Memory, 4096);
        let t = Instant::now();
        ShreddedDoc::shred_str(&bs.store, xml).expect("shred bulk");
        t.elapsed().as_secs_f64()
    };
    (incremental, bulk)
}

struct JoinBench {
    label: String,
    parents: usize,
    btree_probes_per_s: f64,
    columnar_probes_per_s: f64,
    exists_probes_per_s: f64,
}

impl JoinBench {
    fn speedup(&self) -> f64 {
        self.columnar_probes_per_s / self.btree_probes_per_s.max(1e-9)
    }
}

fn lookup(doc: &ShreddedDoc, dotted: &str) -> Option<TypeId> {
    let path: Vec<String> = dotted.split('.').map(|s| s.to_string()).collect();
    doc.types().lookup(&path)
}

fn bench_joins(doc: &ShreddedDoc, iters: usize) -> Vec<JoinBench> {
    let mut out = Vec::new();
    for &(ppath, cpath) in JOIN_PAIRS {
        let (Some(pt), Some(ct)) = (lookup(doc, ppath), lookup(doc, cpath)) else {
            println!("skipping {ppath} -> {cpath}: type missing at this scale");
            continue;
        };
        let parents: Vec<(Dewey, String)> = doc.scan_type(pt);
        if parents.is_empty() {
            println!("skipping {ppath} -> {cpath}: no parent instances");
            continue;
        }
        // Correctness gate: both paths must return identical groups.
        for (p, _) in &parents {
            assert_eq!(
                doc.closest_children(p, pt, ct),
                doc.closest_children_btree(p, pt, ct),
                "columnar/btree divergence at {p}"
            );
        }
        let probes = parents.len() * iters;

        // The columnar side includes its own column build (first probe).
        doc.evict_columns();
        let t = Instant::now();
        let mut touched = 0usize;
        for _ in 0..iters {
            for (p, _) in &parents {
                if let Some((_, range)) = doc.closest_group(p, pt, ct) {
                    touched += range.len();
                }
            }
        }
        let columnar = probes as f64 / t.elapsed().as_secs_f64().max(1e-9);

        let t = Instant::now();
        let mut touched_bt = 0usize;
        for _ in 0..iters {
            for (p, _) in &parents {
                touched_bt += doc.closest_children_btree(p, pt, ct).len();
            }
        }
        let btree = probes as f64 / t.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(touched, touched_bt, "probe passes visited different rows");

        let t = Instant::now();
        let mut hits = 0usize;
        for _ in 0..iters {
            for (p, _) in &parents {
                hits += usize::from(doc.has_closest_child(p, pt, ct));
            }
        }
        let exists = probes as f64 / t.elapsed().as_secs_f64().max(1e-9);
        assert!(hits <= probes);

        out.push(JoinBench {
            label: format!("{ppath} -> {cpath}"),
            parents: parents.len(),
            btree_probes_per_s: btree,
            columnar_probes_per_s: columnar,
            exists_probes_per_s: exists,
        });
    }
    out
}

fn render_json(
    xml: &str,
    factor: f64,
    shred_inc_s: f64,
    shred_bulk_s: f64,
    joins: &[JoinBench],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"xmark_factor\": {factor},\n"));
    s.push_str(&format!("  \"input_bytes\": {},\n", xml.len()));
    s.push_str("  \"shred\": {\n");
    s.push_str(&format!(
        "    \"incremental_s\": {shred_inc_s:.4},\n    \"bulk_load_s\": {shred_bulk_s:.4},\n"
    ));
    s.push_str(&format!(
        "    \"speedup\": {:.2}\n  }},\n",
        shred_inc_s / shred_bulk_s.max(1e-9)
    ));
    s.push_str("  \"closest_join\": [\n");
    for (i, j) in joins.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"pair\": \"{}\",\n", j.label));
        s.push_str(&format!("      \"parents\": {},\n", j.parents));
        s.push_str(&format!(
            "      \"btree_probes_per_s\": {:.0},\n",
            j.btree_probes_per_s
        ));
        s.push_str(&format!(
            "      \"columnar_probes_per_s\": {:.0},\n",
            j.columnar_probes_per_s
        ));
        s.push_str(&format!(
            "      \"exists_probes_per_s\": {:.0},\n",
            j.exists_probes_per_s
        ));
        s.push_str(&format!("      \"speedup\": {:.2}\n", j.speedup()));
        s.push_str(if i + 1 == joins.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    let mean = joins.iter().map(JoinBench::speedup).sum::<f64>() / joins.len().max(1) as f64;
    s.push_str(&format!("  \"mean_join_speedup\": {mean:.2}\n"));
    s.push_str("}\n");
    s
}

//! Closest-join microbenchmark (repository extension, not a paper
//! figure): before/after numbers for the PR-2 and PR-3 hot-path work.
//!
//! Three measurements on one XMark document:
//!
//! 1. **Shredding** — the streaming shredder with incremental B+tree
//!    inserts (one root-to-leaf descent per entry, the seed behaviour)
//!    vs sort-once + bottom-up bulk loading.
//! 2. **Closest-join probes** — `closest_children` resolved through a
//!    B+tree prefix probe per parent (`closest_children_btree`, the
//!    seed hot path) vs the columnar path (two binary searches on the
//!    decoded type column), vs the batched kernel
//!    (`closest_children_batch`: one forward gallop pass resolving the
//!    whole document-ordered parent set), plus the `has_closest_child`
//!    existence probe. All sides are verified to return identical
//!    groups before timing.
//! 3. **Cold open** — reopen a file-backed store and touch every type
//!    column once: persisted column segments (delta/varint-compressed
//!    v2 records, mmap-backed where the platform allows) vs the lazy
//!    rebuild that decodes the `typeseq` B+tree, plus a third pass over
//!    the same document rewritten in the uncompressed v1 wire format so
//!    the compression ratio is measured, not estimated. This is the
//!    PR-3 persistence win plus the PR-7 compression win.
//! 4. **Update workload** — mutate ~1% of the document's nodes in
//!    place (`update_text` concentrated on the highest-count types),
//!    re-run the closest-join probes against the merged columns, then
//!    vacuum the store and reopen cold. The interesting numbers are
//!    the *maintenance scope* (how many columns re-decode after the
//!    mutation — per-type generations keep this to the touched types)
//!    and the *vacuum recovery* (dead segment pages reclaimed). This
//!    is the PR-4 mutation work.
//!
//! Flags: `--scale <f>` scales the document, `--smoke` runs a tiny
//! document with few iterations, `--json` writes the measurements to
//! `BENCH_PR7.json` in the current directory, and `--floors` exits
//! non-zero when a headline ratio regresses below the floors CI
//! enforces (mean join speed-up ≥ 110x, shred ≥ 1.6x, compressed
//! segments smaller than v1; at the CI scale, mapped bytes must stay
//! ≤ 70% of the v1 baseline recorded in `BENCH_PR6.json`).

use std::time::Instant;
use xmorph_bench::harness::{BenchStore, StoreKind};
use xmorph_bench::table::Table;
use xmorph_core::{OpenOptions, ShredOptions, ShreddedDoc, TypeId};
use xmorph_datagen::XmarkConfig;
use xmorph_pagestore::Store;
use xmorph_xml::dewey::Dewey;

/// Parent/child root paths joined in the microbench: a parent-child
/// edge, a deeper descendant edge, and a cousin pair (joins through an
/// ancestor).
const JOIN_PAIRS: &[(&str, &str)] = &[
    ("site.people.person", "site.people.person.name"),
    ("site.people.person", "site.people.person.address.city"),
    ("site.people.person.name", "site.people.person.address.city"),
];

/// `cold_open.mapped_bytes` from the committed `BENCH_PR6.json`: the
/// uncompressed v1 segment footprint at XMark factor 0.05 that the v2
/// delta/varint format is gated against (CI runs this binary at that
/// exact scale).
const V1_MAPPED_BYTES_BASELINE: usize = 973_774;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let floors = args.iter().any(|a| a == "--floors");
    let scale = xmorph_bench::parse_scale();

    let factor = if smoke { 0.004 } else { 0.05 * scale };
    let iters = if smoke { 3 } else { 40 };
    let xml = XmarkConfig::with_factor(factor).generate();
    println!(
        "Closest-join hot path (XMark factor {factor}, {} bytes, {iters} passes)\n",
        xml.len()
    );

    let (shred_inc_s, shred_bulk_s) = bench_shred(&xml);
    let mut table = Table::new(&["shred path", "seconds", "MB/s"]);
    let mb = xml.len() as f64 / 1e6;
    table.row(&[
        "incremental inserts".into(),
        format!("{shred_inc_s:.3}"),
        format!("{:.1}", mb / shred_inc_s),
    ]);
    table.row(&[
        "sorted bulk load".into(),
        format!("{shred_bulk_s:.3}"),
        format!("{:.1}", mb / shred_bulk_s),
    ]);
    table.print();
    println!(
        "shred speed-up: {:.2}x\n",
        shred_inc_s / shred_bulk_s.max(1e-9)
    );

    let bench_store = BenchStore::create(StoreKind::Memory, 4096);
    let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
    let joins = bench_joins(&doc, iters);

    let mut table = Table::new(&[
        "join pair",
        "parents",
        "btree probes/s",
        "columnar probes/s",
        "batched probes/s",
        "speed-up",
        "exists probes/s",
    ]);
    for j in &joins {
        table.row(&[
            j.label.clone(),
            j.parents.to_string(),
            format!("{:.0}", j.btree_probes_per_s),
            format!("{:.0}", j.columnar_probes_per_s),
            format!("{:.0}", j.batched_probes_per_s),
            format!("{:.2}x", j.speedup()),
            format!("{:.0}", j.exists_probes_per_s),
        ]);
    }
    table.print();
    // The headline gates the shipped path: the batched kernel (what
    // the renderer routes joins through) against the seed B+tree path.
    // The per-parent columnar ratio stays reported as the ablation.
    let total_speedup = joins
        .iter()
        .map(JoinBench::batch_speedup_vs_btree)
        .sum::<f64>()
        / joins.len() as f64;
    let scalar_speedup = joins.iter().map(JoinBench::speedup).sum::<f64>() / joins.len() as f64;
    let batch_speedup =
        joins.iter().map(JoinBench::batch_speedup).sum::<f64>() / joins.len() as f64;
    println!(
        "\nmean closest-join speed-up: {total_speedup:.2}x batched vs btree (per-parent \
         columnar {scalar_speedup:.2}x, batch amortization {batch_speedup:.2}x)"
    );

    let cold = bench_cold_open(&xml);
    let mut table = Table::new(&["cold-open first touch", "seconds", "col bytes"]);
    table.row(&[
        "persisted segments".into(),
        format!("{:.4}", cold.persisted_s),
        format!(
            "{} mapped / {} heap",
            cold.mapped_bytes, cold.persisted_heap_bytes
        ),
    ]);
    table.row(&[
        "lazy rebuild".into(),
        format!("{:.4}", cold.rebuild_s),
        format!("{} heap", cold.rebuild_heap_bytes),
    ]);
    table.row(&[
        "v1 (uncompressed) segments".into(),
        "-".into(),
        format!("{} mapped", cold.mapped_bytes_v1),
    ]);
    table.print();
    println!(
        "\ncold-open first-touch speed-up: {:.2}x ({} types, {} rows)",
        cold.speedup(),
        cold.types,
        cold.rows
    );
    println!(
        "v2 segment footprint: {} bytes vs {} uncompressed v1 ({:.1}% smaller)\n",
        cold.mapped_bytes,
        cold.mapped_bytes_v1,
        (1.0 - cold.mapped_bytes as f64 / cold.mapped_bytes_v1.max(1) as f64) * 100.0
    );

    let upd = bench_update(&xml, iters);
    let mut table = Table::new(&["update workload", "value"]);
    table.row(&[
        "nodes updated (~1%)".into(),
        format!("{} of {}", upd.nodes_updated, upd.nodes_total),
    ]);
    table.row(&["updates/s".into(), format!("{:.0}", upd.updates_per_s())]);
    table.row(&[
        "deferred column merges".into(),
        upd.merged_columns.to_string(),
    ]);
    table.row(&[
        "post-update probes/s".into(),
        format!("{:.0}", upd.post_probes_per_s),
    ]);
    table.row(&[
        "cold re-decoded columns".into(),
        format!(
            "{} of {} ({:.1}%)",
            upd.cold_redecodes,
            upd.types_total,
            upd.redecode_frac() * 100.0
        ),
    ]);
    table.row(&[
        "segments live / dead pages".into(),
        format!("{} / {}", upd.segments_live, upd.dead_pages_before_vacuum),
    ]);
    table.row(&[
        "vacuum reclaimed pages".into(),
        format!(
            "{} ({:.0}% of dead)",
            upd.vacuum_reclaimed_pages,
            upd.recovered_frac() * 100.0
        ),
    ]);
    table.print();
    println!(
        "\nmaintenance scope after 1% mutation: {:.1}% of columns re-decode; vacuum recovered {:.0}% of dead segment pages\n",
        upd.redecode_frac() * 100.0,
        upd.recovered_frac() * 100.0
    );

    if json {
        let path = "BENCH_PR7.json";
        std::fs::write(
            path,
            render_json(&xml, factor, shred_inc_s, shred_bulk_s, &joins, &cold, &upd),
        )
        .expect("write BENCH_PR7.json");
        println!("wrote {path}");
    }

    if floors {
        // The regression wall CI enforces: the headline ratios from the
        // committed benchmark results, with slack for machine noise.
        // Probe correctness is gated separately by the assert_eq checks
        // above — reaching this point means all probe paths agreed.
        let shred_speedup = shred_inc_s / shred_bulk_s.max(1e-9);
        let mut failed = false;
        if total_speedup < 110.0 {
            eprintln!("FLOOR VIOLATED: mean_join_speedup {total_speedup:.2} < 110");
            failed = true;
        }
        if shred_speedup < 1.6 {
            eprintln!("FLOOR VIOLATED: shred speedup {shred_speedup:.2} < 1.6");
            failed = true;
        }
        // The compressed format must beat uncompressed v1 at any scale;
        // at the CI scale (non-smoke, scale 1) the absolute footprint
        // is additionally held to <= 70% of the committed v1 baseline.
        if cold.mapped_bytes >= cold.mapped_bytes_v1 {
            eprintln!(
                "FLOOR VIOLATED: v2 mapped_bytes {} >= v1 mapped_bytes {}",
                cold.mapped_bytes, cold.mapped_bytes_v1
            );
            failed = true;
        }
        if !smoke && (scale - 1.0).abs() < 1e-9 {
            let limit = V1_MAPPED_BYTES_BASELINE * 7 / 10;
            if cold.mapped_bytes > limit {
                eprintln!(
                    "FLOOR VIOLATED: mapped_bytes {} > {limit} (70% of v1 baseline {})",
                    cold.mapped_bytes, V1_MAPPED_BYTES_BASELINE
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "floors held: mean join {total_speedup:.2}x >= 110, shred {shred_speedup:.2}x >= \
             1.6, v2 segments {} bytes < v1 {}",
            cold.mapped_bytes, cold.mapped_bytes_v1
        );
    }
}

/// Update-workload measurement: mutate ~1% of the nodes of a
/// file-backed document through `update_text`, concentrated on the
/// highest-count types (the update-locality premise), with every
/// column warm so maintenance takes the in-place merge path. Then
/// probe the joins again (correctness-gated against the B+tree),
/// vacuum the store, and reopen cold to count how many columns
/// actually re-decode — per-type generations keep that to the types
/// the mutation touched.
struct UpdateBench {
    nodes_updated: usize,
    nodes_total: u64,
    types_touched: usize,
    types_total: usize,
    update_s: f64,
    post_probes_per_s: f64,
    merged_columns: u64,
    invalidated_columns: u64,
    cold_redecodes: u64,
    segments_live: u64,
    dead_pages_before_vacuum: u64,
    vacuum_reclaimed_pages: u64,
}

impl UpdateBench {
    fn updates_per_s(&self) -> f64 {
        self.nodes_updated as f64 / self.update_s.max(1e-9)
    }
    fn redecode_frac(&self) -> f64 {
        self.cold_redecodes as f64 / self.types_total.max(1) as f64
    }
    /// Fraction of the *dead* pages (allocated but unreachable from any
    /// tree or live segment — free-listed, WAL-quarantined, or leaked
    /// by a dropped stale segment) that vacuum handed back. The old
    /// free-list-only denominator undercounted the dead set and pushed
    /// this past 1.0.
    fn recovered_frac(&self) -> f64 {
        let f = self.vacuum_reclaimed_pages as f64 / self.dead_pages_before_vacuum.max(1) as f64;
        assert!(
            (0.0..=1.0).contains(&f),
            "vacuum_recovered_frac {f} out of [0, 1]: reclaimed {} of {} dead pages",
            self.vacuum_reclaimed_pages,
            self.dead_pages_before_vacuum
        );
        f
    }
}

fn bench_update(xml: &str, iters: usize) -> UpdateBench {
    let dir = std::env::temp_dir().join("xmorph-bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("update-{}.db", std::process::id()));
    {
        let store = Store::options()
            .capacity(4096)
            .create(&path)
            .expect("create store");
        ShreddedDoc::shred_str(&store, xml).expect("shred");
        store.close().expect("close");
    }
    let store = Store::options()
        .capacity(4096)
        .open(&path)
        .expect("reopen store");
    let mut doc = ShreddedDoc::open(&store).expect("open doc");
    let types: Vec<TypeId> = doc.types().ids().collect();
    for &t in &types {
        doc.column(t); // warm every column from its persisted segment
    }
    let types_total = types.len();
    let nodes_total = doc.shape().total_instances();
    let target = (nodes_total / 100).max(1) as usize;

    let mut by_count = types.clone();
    by_count.sort_by_key(|&t| std::cmp::Reverse(doc.instance_count(t)));
    // Plan the whole update set (and its replacement texts) before the
    // clock starts; the timed region is update_text alone. Re-applying
    // the same plan is byte-identical steady-state work (same keys,
    // same values, same column merges), so like every other rate in
    // this file the loop runs several passes and reports the best —
    // a scheduler stall doesn't masquerade as a regression.
    let mut plan: Vec<(Dewey, String)> = Vec::with_capacity(target);
    let mut touched = 0usize;
    'outer: for &t in &by_count {
        let rows = doc.scan_type(t);
        if rows.is_empty() {
            break;
        }
        touched += 1;
        for (i, (dewey, _)) in rows.iter().enumerate() {
            plan.push((dewey.clone(), format!("upd{i}")));
            if plan.len() >= target {
                break 'outer;
            }
        }
    }
    let updated = plan.len();
    let passes = iters.clamp(2, 8);
    let mut best_rate_upd = 0f64;
    for _ in 0..passes {
        let t0 = Instant::now();
        for (dewey, text) in &plan {
            doc.update_text(dewey, text).expect("update");
        }
        let rate = updated as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        best_rate_upd = best_rate_upd.max(rate);
    }
    let update_s = updated as f64 / best_rate_upd.max(1e-9);

    // One read settles a whole burst's deferred merge; the merged
    // column must agree with the B+tree row for row.
    for &t in &by_count[..touched] {
        assert_eq!(
            doc.scan_type(t),
            doc.scan_type_btree(t),
            "post-update merge divergence for {t:?}"
        );
    }
    // Post-mutation joins: the merged columns must agree with the
    // B+tree everywhere before timing.
    let mut probe_targets = Vec::new();
    for &(ppath, cpath) in JOIN_PAIRS {
        let (Some(pt), Some(ct)) = (lookup(&doc, ppath), lookup(&doc, cpath)) else {
            continue;
        };
        let parents = doc.scan_type(pt);
        for (p, _) in &parents {
            assert_eq!(
                doc.closest_children(p, pt, ct),
                doc.closest_children_btree(p, pt, ct),
                "post-update columnar/btree divergence at {p}"
            );
        }
        probe_targets.push((pt, ct, parents));
    }
    let post_probes_per_s = best_rate(iters, || {
        let mut probes = 0usize;
        for (pt, ct, parents) in &probe_targets {
            for (p, _) in parents {
                doc.closest_group(p, *pt, *ct);
                probes += 1;
            }
        }
        probes
    });
    // Read after the probes: merges are deferred to the first read, so
    // the counter only moves once the post-update scans settle them.
    let maint = doc.maintenance_stats();

    // The mutation dropped the touched types' stale segments, so their
    // extents are dead — free-listed or held in the WAL quarantine
    // until the next checkpoint. Vacuum must hand those pages back;
    // the dead count is measured against liveness, not the free list,
    // which sees none of the quarantined extents.
    let stats = store.stats().expect("stats");
    let dead_pages = store.page_count() - store.live_page_count().expect("live page count");
    drop(doc);
    let reclaimed = store.vacuum().expect("vacuum");
    store.close().expect("close");

    // Cold reopen: only the mutated types lost their segments, so only
    // they re-decode from the B+tree.
    let store = Store::options()
        .capacity(4096)
        .open(&path)
        .expect("reopen after vacuum");
    let doc = ShreddedDoc::open(&store).expect("open doc");
    for t in doc.types().ids().collect::<Vec<_>>() {
        doc.column(t);
    }
    assert!(
        doc.segment_fallbacks().is_empty(),
        "segments failed validation after vacuum: {:?}",
        doc.segment_fallbacks()
    );
    let cold_redecodes = doc.maintenance_stats().column_rebuilds;
    if let (Some(pt), Some(ct)) = (lookup(&doc, JOIN_PAIRS[0].0), lookup(&doc, JOIN_PAIRS[0].1)) {
        for (p, _) in doc.scan_type(pt) {
            assert_eq!(
                doc.closest_children(&p, pt, ct),
                doc.closest_children_btree(&p, pt, ct),
                "post-vacuum columnar/btree divergence at {p}"
            );
        }
    }
    drop(doc);
    drop(store);
    std::fs::remove_file(&path).ok();

    UpdateBench {
        nodes_updated: updated,
        nodes_total,
        types_touched: touched,
        types_total,
        update_s,
        post_probes_per_s,
        merged_columns: maint.merged_columns,
        invalidated_columns: maint.invalidated_columns,
        cold_redecodes,
        segments_live: stats.segments_live,
        dead_pages_before_vacuum: dead_pages,
        vacuum_reclaimed_pages: reclaimed,
    }
}

/// Cold-open measurement: shred with column persistence into a temp
/// file store, close it, then time "reopen + touch every column" twice
/// — once served from persisted segments, once forced to rebuild from
/// the `typeseq` tree. The persisted path skips the B+tree walk and
/// per-key Dewey decode entirely.
struct ColdOpen {
    persisted_s: f64,
    rebuild_s: f64,
    /// Mapped bytes served from the current (v2, compressed) segments.
    mapped_bytes: usize,
    /// Mapped bytes after rewriting the same columns in the v1
    /// uncompressed wire format — the measured compression baseline.
    mapped_bytes_v1: usize,
    persisted_heap_bytes: usize,
    rebuild_heap_bytes: usize,
    types: usize,
    rows: usize,
}

impl ColdOpen {
    fn speedup(&self) -> f64 {
        self.rebuild_s / self.persisted_s.max(1e-9)
    }
}

fn bench_cold_open(xml: &str) -> ColdOpen {
    let dir = std::env::temp_dir().join("xmorph-bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("coldopen-{}.db", std::process::id()));
    {
        let store = Store::options()
            .capacity(4096)
            .create(&path)
            .expect("create store");
        ShreddedDoc::shred_str(&store, xml).expect("shred");
        store.close().expect("close");
    }
    let touch_all = |doc: &ShreddedDoc| -> usize {
        let mut rows = 0usize;
        for t in doc.types().ids().collect::<Vec<_>>() {
            rows += doc.column(t).len();
        }
        rows
    };
    // Persisted-segment side.
    let store = Store::options()
        .capacity(4096)
        .open(&path)
        .expect("reopen store");
    let t = Instant::now();
    let doc = ShreddedDoc::open(&store).expect("open doc");
    let rows = touch_all(&doc);
    let persisted_s = t.elapsed().as_secs_f64();
    assert!(
        doc.segment_fallbacks().is_empty(),
        "persisted segments failed validation: {:?}",
        doc.segment_fallbacks()
    );
    let persisted_bytes = doc.column_bytes();
    let types = doc.types().len();
    drop(doc);
    drop(store);
    // Rebuild side: same file, persisted columns ignored.
    let store = Store::options()
        .capacity(4096)
        .open(&path)
        .expect("reopen store");
    let t = Instant::now();
    let doc = ShreddedDoc::open_with(&store, &OpenOptions::builder().persisted_columns(false))
        .expect("open doc");
    let rows_rebuilt = touch_all(&doc);
    let rebuild_s = t.elapsed().as_secs_f64();
    assert_eq!(rows, rows_rebuilt, "cold-open paths disagree on row count");
    let rebuild_bytes = doc.column_bytes();
    drop(doc);
    drop(store);
    // v1-format side: rewrite the same columns in the uncompressed v1
    // wire format, reopen, and measure the mapped footprint so the
    // compression ratio is reported against the same document.
    let store = Store::options()
        .capacity(4096)
        .open(&path)
        .expect("reopen store");
    let doc = ShreddedDoc::open(&store).expect("open doc");
    doc.persist_all_columns_v1().expect("persist v1 segments");
    drop(doc);
    store.close().expect("close");
    let store = Store::options()
        .capacity(4096)
        .open(&path)
        .expect("reopen store");
    let doc = ShreddedDoc::open(&store).expect("open doc");
    let rows_v1 = touch_all(&doc);
    assert_eq!(rows, rows_v1, "v1 cold open disagrees on row count");
    assert!(
        doc.segment_fallbacks().is_empty(),
        "v1 segments failed validation: {:?}",
        doc.segment_fallbacks()
    );
    let v1_bytes = doc.column_bytes();
    drop(doc);
    drop(store);
    std::fs::remove_file(&path).ok();

    ColdOpen {
        persisted_s,
        rebuild_s,
        mapped_bytes: persisted_bytes.mapped,
        mapped_bytes_v1: v1_bytes.mapped,
        persisted_heap_bytes: persisted_bytes.heap,
        rebuild_heap_bytes: rebuild_bytes.heap,
        types,
        rows,
    }
}

/// Best observed rate over `chunks` repeats of `work` (which returns
/// the number of operations it performed). Reporting the best chunk
/// instead of one long timed block suppresses scheduler interference —
/// both sides of every speed-up ratio get the same treatment.
fn best_rate(chunks: usize, mut work: impl FnMut() -> usize) -> f64 {
    let mut best = 0f64;
    for _ in 0..chunks.max(1) {
        let t = Instant::now();
        let n = work();
        best = best.max(n as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

/// Time one shred of `xml` for each load path, seconds (best of 7).
fn bench_shred(xml: &str) -> (f64, f64) {
    let one = |bulk: bool| {
        let bs = BenchStore::create(StoreKind::Memory, 4096);
        let t = Instant::now();
        ShreddedDoc::shred_str_with(&bs.store, xml, &ShredOptions::builder().bulk_load(bulk))
            .expect("shred");
        t.elapsed().as_secs_f64()
    };
    // Interleave the two load paths so a noisy scheduling window penalises
    // both sides equally rather than biasing whichever ran during it.
    let (mut incr, mut bulk) = (f64::MAX, f64::MAX);
    for _ in 0..7 {
        incr = incr.min(one(false));
        bulk = bulk.min(one(true));
    }
    (incr, bulk)
}

struct JoinBench {
    label: String,
    parents: usize,
    btree_probes_per_s: f64,
    columnar_probes_per_s: f64,
    batched_probes_per_s: f64,
    exists_probes_per_s: f64,
}

impl JoinBench {
    /// Per-parent columnar vs the seed B+tree path — the PR-2 ablation.
    fn speedup(&self) -> f64 {
        self.columnar_probes_per_s / self.btree_probes_per_s.max(1e-9)
    }
    /// Batch amortization: the batched kernel vs per-parent columnar.
    fn batch_speedup(&self) -> f64 {
        self.batched_probes_per_s / self.columnar_probes_per_s.max(1e-9)
    }
    /// The headline ratio: the shipped execution path (batched kernel,
    /// what the renderer routes joins through) vs the seed B+tree path.
    fn batch_speedup_vs_btree(&self) -> f64 {
        self.batched_probes_per_s / self.btree_probes_per_s.max(1e-9)
    }
}

fn lookup(doc: &ShreddedDoc, dotted: &str) -> Option<TypeId> {
    let path: Vec<String> = dotted.split('.').map(|s| s.to_string()).collect();
    doc.types().lookup(&path)
}

fn bench_joins(doc: &ShreddedDoc, iters: usize) -> Vec<JoinBench> {
    let mut out = Vec::new();
    for &(ppath, cpath) in JOIN_PAIRS {
        let (Some(pt), Some(ct)) = (lookup(doc, ppath), lookup(doc, cpath)) else {
            println!("skipping {ppath} -> {cpath}: type missing at this scale");
            continue;
        };
        let parents: Vec<(Dewey, String)> = doc.scan_type(pt);
        if parents.is_empty() {
            println!("skipping {ppath} -> {cpath}: no parent instances");
            continue;
        }
        // Correctness gate: all probe paths must return identical
        // groups — per-parent columnar vs B+tree, and the batched
        // kernel's ranges vs the per-parent groups.
        for (p, _) in &parents {
            assert_eq!(
                doc.closest_children(p, pt, ct),
                doc.closest_children_btree(p, pt, ct),
                "columnar/btree divergence at {p}"
            );
        }
        let parent_deweys: Vec<Dewey> = parents.iter().map(|(d, _)| d.clone()).collect();
        let (batch_col, batch_ranges) = doc
            .closest_children_batch(&parent_deweys, pt, ct)
            .expect("join pair types are related");
        assert_eq!(batch_ranges.len(), parent_deweys.len());
        for (p, r) in parent_deweys.iter().zip(&batch_ranges) {
            let (scol, want) = doc.closest_group(p, pt, ct).expect("related types");
            assert_eq!(*r, want, "batched/per-parent divergence at {p}");
            assert!(
                std::sync::Arc::ptr_eq(&batch_col, &scol),
                "batched kernel resolved a different column"
            );
        }
        drop((batch_col, batch_ranges));
        let probes = parents.len() * iters;

        // The columnar side rebuilds its own columns (first pass);
        // best-of-passes reports the hot path on both sides.
        doc.evict_columns();
        let mut touched = 0usize;
        let columnar = best_rate(iters, || {
            let mut n = 0;
            for (p, _) in &parents {
                if let Some((_, range)) = doc.closest_group(p, pt, ct) {
                    n += range.len();
                }
            }
            touched += n;
            parents.len()
        });

        // Batched side: one forward gallop pass per call resolves the
        // whole parent set, so a single call counts parents.len()
        // probes.
        let mut touched_batch = 0usize;
        let batched = best_rate(iters, || {
            let (_col, ranges) = doc
                .closest_children_batch(&parent_deweys, pt, ct)
                .expect("related types");
            touched_batch += ranges.iter().map(|r| r.len()).sum::<usize>();
            parent_deweys.len()
        });

        let mut touched_bt = 0usize;
        let btree = best_rate(iters, || {
            for (p, _) in &parents {
                touched_bt += doc.closest_children_btree(p, pt, ct).len();
            }
            parents.len()
        });
        assert_eq!(touched, touched_bt, "probe passes visited different rows");
        assert_eq!(
            touched, touched_batch,
            "batched pass visited different rows"
        );

        let mut hits = 0usize;
        let exists = best_rate(iters, || {
            for (p, _) in &parents {
                hits += usize::from(doc.has_closest_child(p, pt, ct));
            }
            parents.len()
        });
        assert!(hits <= probes);

        out.push(JoinBench {
            label: format!("{ppath} -> {cpath}"),
            parents: parents.len(),
            btree_probes_per_s: btree,
            columnar_probes_per_s: columnar,
            batched_probes_per_s: batched,
            exists_probes_per_s: exists,
        });
    }
    out
}

fn render_json(
    xml: &str,
    factor: f64,
    shred_inc_s: f64,
    shred_bulk_s: f64,
    joins: &[JoinBench],
    cold: &ColdOpen,
    upd: &UpdateBench,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"xmark_factor\": {factor},\n"));
    s.push_str(&format!("  \"input_bytes\": {},\n", xml.len()));
    s.push_str("  \"shred\": {\n");
    s.push_str(&format!(
        "    \"incremental_s\": {shred_inc_s:.4},\n    \"bulk_load_s\": {shred_bulk_s:.4},\n"
    ));
    s.push_str(&format!(
        "    \"speedup\": {:.2}\n  }},\n",
        shred_inc_s / shred_bulk_s.max(1e-9)
    ));
    s.push_str("  \"closest_join\": [\n");
    for (i, j) in joins.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"pair\": \"{}\",\n", j.label));
        s.push_str(&format!("      \"parents\": {},\n", j.parents));
        s.push_str(&format!(
            "      \"btree_probes_per_s\": {:.0},\n",
            j.btree_probes_per_s
        ));
        s.push_str(&format!(
            "      \"columnar_probes_per_s\": {:.0},\n",
            j.columnar_probes_per_s
        ));
        s.push_str(&format!(
            "      \"batched_probes_per_s\": {:.0},\n",
            j.batched_probes_per_s
        ));
        s.push_str(&format!(
            "      \"exists_probes_per_s\": {:.0},\n",
            j.exists_probes_per_s
        ));
        s.push_str(&format!("      \"speedup\": {:.2},\n", j.speedup()));
        s.push_str(&format!(
            "      \"batch_speedup\": {:.2},\n",
            j.batch_speedup()
        ));
        s.push_str(&format!(
            "      \"batch_speedup_vs_btree\": {:.2}\n",
            j.batch_speedup_vs_btree()
        ));
        s.push_str(if i + 1 == joins.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    // mean_join_speedup gates the shipped (batched) path; the scalar
    // per-parent mean stays alongside for continuity with BENCH_PR6.
    let mean = joins
        .iter()
        .map(JoinBench::batch_speedup_vs_btree)
        .sum::<f64>()
        / joins.len().max(1) as f64;
    let mean_scalar = joins.iter().map(JoinBench::speedup).sum::<f64>() / joins.len().max(1) as f64;
    s.push_str(&format!("  \"mean_join_speedup\": {mean:.2},\n"));
    s.push_str(&format!(
        "  \"mean_scalar_join_speedup\": {mean_scalar:.2},\n"
    ));
    s.push_str("  \"cold_open\": {\n");
    s.push_str(&format!(
        "    \"persisted_first_touch_s\": {:.4},\n",
        cold.persisted_s
    ));
    s.push_str(&format!(
        "    \"rebuild_first_touch_s\": {:.4},\n",
        cold.rebuild_s
    ));
    s.push_str(&format!("    \"speedup\": {:.2},\n", cold.speedup()));
    s.push_str(&format!("    \"mapped_bytes\": {},\n", cold.mapped_bytes));
    s.push_str(&format!(
        "    \"mapped_bytes_v2\": {},\n",
        cold.mapped_bytes
    ));
    s.push_str(&format!(
        "    \"mapped_bytes_v1\": {},\n",
        cold.mapped_bytes_v1
    ));
    s.push_str(&format!(
        "    \"rebuild_heap_bytes\": {},\n",
        cold.rebuild_heap_bytes
    ));
    s.push_str(&format!(
        "    \"types\": {},\n    \"rows\": {}\n  }},\n",
        cold.types, cold.rows
    ));
    s.push_str("  \"update\": {\n");
    s.push_str(&format!("    \"nodes_updated\": {},\n", upd.nodes_updated));
    s.push_str(&format!("    \"nodes_total\": {},\n", upd.nodes_total));
    s.push_str(&format!("    \"types_touched\": {},\n", upd.types_touched));
    s.push_str(&format!("    \"types_total\": {},\n", upd.types_total));
    s.push_str(&format!("    \"update_s\": {:.4},\n", upd.update_s));
    s.push_str(&format!(
        "    \"updates_per_s\": {:.0},\n",
        upd.updates_per_s()
    ));
    s.push_str(&format!(
        "    \"post_update_probes_per_s\": {:.0},\n",
        upd.post_probes_per_s
    ));
    s.push_str(&format!(
        "    \"merged_columns\": {},\n",
        upd.merged_columns
    ));
    s.push_str(&format!(
        "    \"invalidated_columns\": {},\n",
        upd.invalidated_columns
    ));
    s.push_str(&format!(
        "    \"cold_redecoded_columns\": {},\n",
        upd.cold_redecodes
    ));
    s.push_str(&format!(
        "    \"redecode_frac\": {:.4},\n",
        upd.redecode_frac()
    ));
    s.push_str(&format!(
        "    \"vacuum_recovered_frac\": {:.4}\n  }},\n",
        upd.recovered_frac()
    ));
    s.push_str("  \"store_stats\": {\n");
    s.push_str(&format!("    \"segments_live\": {},\n", upd.segments_live));
    s.push_str(&format!(
        "    \"dead_pages_before_vacuum\": {},\n",
        upd.dead_pages_before_vacuum
    ));
    s.push_str(&format!(
        "    \"vacuum_reclaimed_pages\": {}\n  }}\n",
        upd.vacuum_reclaimed_pages
    ));
    s.push_str("}\n");
    s
}

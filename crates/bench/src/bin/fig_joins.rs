//! Closest-join microbenchmark (repository extension, not a paper
//! figure): before/after numbers for the PR-2 and PR-3 hot-path work.
//!
//! Three measurements on one XMark document:
//!
//! 1. **Shredding** — the streaming shredder with incremental B+tree
//!    inserts (one root-to-leaf descent per entry, the seed behaviour)
//!    vs sort-once + bottom-up bulk loading.
//! 2. **Closest-join probes** — `closest_children` resolved through a
//!    B+tree prefix probe per parent (`closest_children_btree`, the
//!    seed hot path) vs the columnar path (two binary searches on the
//!    decoded type column), plus the `has_closest_child` existence
//!    probe. Both sides are verified to return identical groups before
//!    timing.
//! 3. **Cold open** — reopen a file-backed store and touch every type
//!    column once: persisted column segments (mmap-served where the
//!    platform allows) vs the lazy rebuild that decodes the `typeseq`
//!    B+tree. This is the PR-3 persistence win.
//!
//! Flags: `--scale <f>` scales the document, `--smoke` runs a tiny
//! document with few iterations (the CI invocation), `--json` writes
//! the measurements to `BENCH_PR3.json` in the current directory.

use std::time::Instant;
use xmorph_bench::harness::{BenchStore, StoreKind};
use xmorph_bench::table::Table;
use xmorph_core::{OpenOptions, ShredOptions, ShreddedDoc, TypeId};
use xmorph_datagen::XmarkConfig;
use xmorph_pagestore::Store;
use xmorph_xml::dewey::Dewey;

/// Parent/child root paths joined in the microbench: a parent-child
/// edge, a deeper descendant edge, and a cousin pair (joins through an
/// ancestor).
const JOIN_PAIRS: &[(&str, &str)] = &[
    ("site.people.person", "site.people.person.name"),
    ("site.people.person", "site.people.person.address.city"),
    ("site.people.person.name", "site.people.person.address.city"),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let scale = xmorph_bench::parse_scale();

    let factor = if smoke { 0.004 } else { 0.05 * scale };
    let iters = if smoke { 3 } else { 40 };
    let xml = XmarkConfig::with_factor(factor).generate();
    println!(
        "Closest-join hot path (XMark factor {factor}, {} bytes, {iters} passes)\n",
        xml.len()
    );

    let (shred_inc_s, shred_bulk_s) = bench_shred(&xml);
    let mut table = Table::new(&["shred path", "seconds", "MB/s"]);
    let mb = xml.len() as f64 / 1e6;
    table.row(&[
        "incremental inserts".into(),
        format!("{shred_inc_s:.3}"),
        format!("{:.1}", mb / shred_inc_s),
    ]);
    table.row(&[
        "sorted bulk load".into(),
        format!("{shred_bulk_s:.3}"),
        format!("{:.1}", mb / shred_bulk_s),
    ]);
    table.print();
    println!(
        "shred speed-up: {:.2}x\n",
        shred_inc_s / shred_bulk_s.max(1e-9)
    );

    let bench_store = BenchStore::create(StoreKind::Memory, 4096);
    let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
    let joins = bench_joins(&doc, iters);

    let mut table = Table::new(&[
        "join pair",
        "parents",
        "btree probes/s",
        "columnar probes/s",
        "speed-up",
        "exists probes/s",
    ]);
    for j in &joins {
        table.row(&[
            j.label.clone(),
            j.parents.to_string(),
            format!("{:.0}", j.btree_probes_per_s),
            format!("{:.0}", j.columnar_probes_per_s),
            format!("{:.2}x", j.speedup()),
            format!("{:.0}", j.exists_probes_per_s),
        ]);
    }
    table.print();
    let total_speedup = joins.iter().map(JoinBench::speedup).sum::<f64>() / joins.len() as f64;
    println!("\nmean closest-join speed-up: {total_speedup:.2}x");

    let cold = bench_cold_open(&xml);
    let mut table = Table::new(&["cold-open first touch", "seconds", "col bytes"]);
    table.row(&[
        "persisted segments".into(),
        format!("{:.4}", cold.persisted_s),
        format!(
            "{} mapped / {} heap",
            cold.mapped_bytes, cold.persisted_heap_bytes
        ),
    ]);
    table.row(&[
        "lazy rebuild".into(),
        format!("{:.4}", cold.rebuild_s),
        format!("{} heap", cold.rebuild_heap_bytes),
    ]);
    table.print();
    println!(
        "\ncold-open first-touch speed-up: {:.2}x ({} types, {} rows)\n",
        cold.speedup(),
        cold.types,
        cold.rows
    );

    if json {
        let path = "BENCH_PR3.json";
        std::fs::write(
            path,
            render_json(&xml, factor, shred_inc_s, shred_bulk_s, &joins, &cold),
        )
        .expect("write BENCH_PR3.json");
        println!("wrote {path}");
    }
}

/// Cold-open measurement: shred with column persistence into a temp
/// file store, close it, then time "reopen + touch every column" twice
/// — once served from persisted segments, once forced to rebuild from
/// the `typeseq` tree. The persisted path skips the B+tree walk and
/// per-key Dewey decode entirely.
struct ColdOpen {
    persisted_s: f64,
    rebuild_s: f64,
    mapped_bytes: usize,
    persisted_heap_bytes: usize,
    rebuild_heap_bytes: usize,
    types: usize,
    rows: usize,
}

impl ColdOpen {
    fn speedup(&self) -> f64 {
        self.rebuild_s / self.persisted_s.max(1e-9)
    }
}

fn bench_cold_open(xml: &str) -> ColdOpen {
    let dir = std::env::temp_dir().join("xmorph-bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("coldopen-{}.db", std::process::id()));
    {
        let store = Store::options()
            .capacity(4096)
            .create(&path)
            .expect("create store");
        ShreddedDoc::shred_str(&store, xml).expect("shred");
        store.close().expect("close");
    }
    let touch_all = |doc: &ShreddedDoc| -> usize {
        let mut rows = 0usize;
        for t in doc.types().ids().collect::<Vec<_>>() {
            rows += doc.column(t).len();
        }
        rows
    };
    // Persisted-segment side.
    let store = Store::options()
        .capacity(4096)
        .open(&path)
        .expect("reopen store");
    let t = Instant::now();
    let doc = ShreddedDoc::open(&store).expect("open doc");
    let rows = touch_all(&doc);
    let persisted_s = t.elapsed().as_secs_f64();
    assert!(
        doc.segment_fallbacks().is_empty(),
        "persisted segments failed validation: {:?}",
        doc.segment_fallbacks()
    );
    let persisted_bytes = doc.column_bytes();
    let types = doc.types().len();
    drop(doc);
    drop(store);
    // Rebuild side: same file, persisted columns ignored.
    let store = Store::options()
        .capacity(4096)
        .open(&path)
        .expect("reopen store");
    let t = Instant::now();
    let doc = ShreddedDoc::open_with(&store, &OpenOptions::builder().persisted_columns(false))
        .expect("open doc");
    let rows_rebuilt = touch_all(&doc);
    let rebuild_s = t.elapsed().as_secs_f64();
    assert_eq!(rows, rows_rebuilt, "cold-open paths disagree on row count");
    let rebuild_bytes = doc.column_bytes();
    drop(doc);
    drop(store);
    std::fs::remove_file(&path).ok();

    ColdOpen {
        persisted_s,
        rebuild_s,
        mapped_bytes: persisted_bytes.mapped,
        persisted_heap_bytes: persisted_bytes.heap,
        rebuild_heap_bytes: rebuild_bytes.heap,
        types,
        rows,
    }
}

/// Time one shred of `xml` for each load path, seconds.
fn bench_shred(xml: &str) -> (f64, f64) {
    let incremental = {
        let bs = BenchStore::create(StoreKind::Memory, 4096);
        let t = Instant::now();
        ShreddedDoc::shred_str_with(&bs.store, xml, &ShredOptions::builder().bulk_load(false))
            .expect("shred incremental");
        t.elapsed().as_secs_f64()
    };
    let bulk = {
        let bs = BenchStore::create(StoreKind::Memory, 4096);
        let t = Instant::now();
        ShreddedDoc::shred_str(&bs.store, xml).expect("shred bulk");
        t.elapsed().as_secs_f64()
    };
    (incremental, bulk)
}

struct JoinBench {
    label: String,
    parents: usize,
    btree_probes_per_s: f64,
    columnar_probes_per_s: f64,
    exists_probes_per_s: f64,
}

impl JoinBench {
    fn speedup(&self) -> f64 {
        self.columnar_probes_per_s / self.btree_probes_per_s.max(1e-9)
    }
}

fn lookup(doc: &ShreddedDoc, dotted: &str) -> Option<TypeId> {
    let path: Vec<String> = dotted.split('.').map(|s| s.to_string()).collect();
    doc.types().lookup(&path)
}

fn bench_joins(doc: &ShreddedDoc, iters: usize) -> Vec<JoinBench> {
    let mut out = Vec::new();
    for &(ppath, cpath) in JOIN_PAIRS {
        let (Some(pt), Some(ct)) = (lookup(doc, ppath), lookup(doc, cpath)) else {
            println!("skipping {ppath} -> {cpath}: type missing at this scale");
            continue;
        };
        let parents: Vec<(Dewey, String)> = doc.scan_type(pt);
        if parents.is_empty() {
            println!("skipping {ppath} -> {cpath}: no parent instances");
            continue;
        }
        // Correctness gate: both paths must return identical groups.
        for (p, _) in &parents {
            assert_eq!(
                doc.closest_children(p, pt, ct),
                doc.closest_children_btree(p, pt, ct),
                "columnar/btree divergence at {p}"
            );
        }
        let probes = parents.len() * iters;

        // The columnar side includes its own column build (first probe).
        doc.evict_columns();
        let t = Instant::now();
        let mut touched = 0usize;
        for _ in 0..iters {
            for (p, _) in &parents {
                if let Some((_, range)) = doc.closest_group(p, pt, ct) {
                    touched += range.len();
                }
            }
        }
        let columnar = probes as f64 / t.elapsed().as_secs_f64().max(1e-9);

        let t = Instant::now();
        let mut touched_bt = 0usize;
        for _ in 0..iters {
            for (p, _) in &parents {
                touched_bt += doc.closest_children_btree(p, pt, ct).len();
            }
        }
        let btree = probes as f64 / t.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(touched, touched_bt, "probe passes visited different rows");

        let t = Instant::now();
        let mut hits = 0usize;
        for _ in 0..iters {
            for (p, _) in &parents {
                hits += usize::from(doc.has_closest_child(p, pt, ct));
            }
        }
        let exists = probes as f64 / t.elapsed().as_secs_f64().max(1e-9);
        assert!(hits <= probes);

        out.push(JoinBench {
            label: format!("{ppath} -> {cpath}"),
            parents: parents.len(),
            btree_probes_per_s: btree,
            columnar_probes_per_s: columnar,
            exists_probes_per_s: exists,
        });
    }
    out
}

fn render_json(
    xml: &str,
    factor: f64,
    shred_inc_s: f64,
    shred_bulk_s: f64,
    joins: &[JoinBench],
    cold: &ColdOpen,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"xmark_factor\": {factor},\n"));
    s.push_str(&format!("  \"input_bytes\": {},\n", xml.len()));
    s.push_str("  \"shred\": {\n");
    s.push_str(&format!(
        "    \"incremental_s\": {shred_inc_s:.4},\n    \"bulk_load_s\": {shred_bulk_s:.4},\n"
    ));
    s.push_str(&format!(
        "    \"speedup\": {:.2}\n  }},\n",
        shred_inc_s / shred_bulk_s.max(1e-9)
    ));
    s.push_str("  \"closest_join\": [\n");
    for (i, j) in joins.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"pair\": \"{}\",\n", j.label));
        s.push_str(&format!("      \"parents\": {},\n", j.parents));
        s.push_str(&format!(
            "      \"btree_probes_per_s\": {:.0},\n",
            j.btree_probes_per_s
        ));
        s.push_str(&format!(
            "      \"columnar_probes_per_s\": {:.0},\n",
            j.columnar_probes_per_s
        ));
        s.push_str(&format!(
            "      \"exists_probes_per_s\": {:.0},\n",
            j.exists_probes_per_s
        ));
        s.push_str(&format!("      \"speedup\": {:.2}\n", j.speedup()));
        s.push_str(if i + 1 == joins.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    let mean = joins.iter().map(JoinBench::speedup).sum::<f64>() / joins.len().max(1) as f64;
    s.push_str(&format!("  \"mean_join_speedup\": {mean:.2},\n"));
    s.push_str("  \"cold_open\": {\n");
    s.push_str(&format!(
        "    \"persisted_first_touch_s\": {:.4},\n",
        cold.persisted_s
    ));
    s.push_str(&format!(
        "    \"rebuild_first_touch_s\": {:.4},\n",
        cold.rebuild_s
    ));
    s.push_str(&format!("    \"speedup\": {:.2},\n", cold.speedup()));
    s.push_str(&format!("    \"mapped_bytes\": {},\n", cold.mapped_bytes));
    s.push_str(&format!(
        "    \"rebuild_heap_bytes\": {},\n",
        cold.rebuild_heap_bytes
    ));
    s.push_str(&format!(
        "    \"types\": {},\n    \"rows\": {}\n  }}\n",
        cold.types, cold.rows
    ));
    s.push_str("}\n");
    s
}

//! Scaling experiment (repository extension, not a paper figure): how the
//! sharded buffer pool and the parallel guard-evaluation driver behave as
//! the thread count grows.
//!
//! Two tables:
//!
//! 1. **Buffer-pool read throughput** — T threads hammer point reads on a
//!    cache-resident tree. With the pool sharded by page id, hits on
//!    distinct shards never contend on a common lock, so aggregate
//!    throughput should climb monotonically from 1 to 4 threads. The same
//!    workload on a single-shard pool shows the serialized baseline.
//! 2. **Parallel guard evaluation** — the `MUTATE site` / benchmark
//!    MORPHs of §IX run through the [`Engine`] facade at growing thread
//!    counts, with speed-up over the sequential renderer and a
//!    byte-identity check against it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use xmorph_bench::harness::{prepare, StoreKind};
use xmorph_bench::table::Table;
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::{Engine, Guard, QueryRequest};
use xmorph_datagen::XmarkConfig;
use xmorph_pagestore::Store;
use xmorph_xml::dom::Document;

const THREADS: [usize; 4] = [1, 2, 3, 4];

fn main() {
    let scale = xmorph_bench::parse_scale();
    println!("Scaling — sharded buffer pool and parallel guard evaluation\n");
    pool_throughput(scale);
    parallel_eval(scale);
}

/// Keys per reader thread per timed run.
fn read_workload(scale: f64) -> usize {
    ((40_000.0 * scale) as usize).max(1_000)
}

fn pool_throughput(scale: f64) {
    let keys = 20_000usize;
    let reads = read_workload(scale);
    // Capacity covers the whole tree: the experiment measures lock
    // contention on cache hits, not eviction traffic.
    let capacity = 4096;

    // Explicit shard count: `default_shard_count` adapts to the host CPU
    // count, but the experiment wants the sharded layout even on small
    // machines so the two columns always compare sharded vs serialized.
    let sharded = Store::options().capacity(capacity).shards(8).open_memory();
    let single = Store::options().capacity(capacity).shards(1).open_memory();

    let mut table = Table::new(&[
        "threads",
        "sharded Mreads/s",
        "1-shard Mreads/s",
        "speed-up vs 1 thread",
    ]);
    let mut base = 0.0f64;
    for &t in &THREADS {
        let m_sharded = measure_reads(&sharded, keys, reads, t);
        let m_single = measure_reads(&single, keys, reads, t);
        if t == 1 {
            base = m_sharded;
        }
        table.row(&[
            t.to_string(),
            format!("{m_sharded:.2}"),
            format!("{m_single:.2}"),
            format!("{:.2}x", m_sharded / base),
        ]);
    }
    println!(
        "Buffer-pool point reads ({} keys, {} reads/thread, {} shards):\n",
        keys,
        reads,
        sharded.shard_count()
    );
    table.print();
    println!();
}

/// Aggregate read throughput (million reads/second) with `threads`
/// concurrent readers, each walking the key space from its own offset.
fn measure_reads(store: &Store, keys: usize, reads: usize, threads: usize) -> f64 {
    let tree = store.open_tree("readbench").expect("tree");
    if tree.is_empty().expect("len") {
        for i in 0..keys {
            tree.insert(&(i as u64).to_be_bytes(), &[0u8; 64])
                .expect("insert");
        }
    }
    let done = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..threads {
            let tree = &tree;
            let done = &done;
            s.spawn(move || {
                // Co-prime stride so workers spread across shards.
                let stride = 7 + 2 * worker;
                let mut k = worker * keys / threads.max(1);
                for _ in 0..reads {
                    k = (k + stride) % keys;
                    let got = tree.get(&(k as u64).to_be_bytes()).expect("get");
                    assert!(got.is_some());
                }
                done.fetch_add(reads, Ordering::Relaxed);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    done.load(Ordering::Relaxed) as f64 / elapsed / 1e6
}

fn parallel_eval(scale: f64) {
    let factor = 0.05 * scale;
    let xml = XmarkConfig::with_factor(factor).generate();
    let prep = prepare(&xml, StoreKind::Memory);
    let engine = Engine::from_parts(prep.bench_store.store.clone(), prep.doc);
    let mut session = engine.session();
    let guards = [
        "MUTATE site",
        "MORPH people [ person [ address [ city ] ] ]",
        "MORPH item [ name location quantity ]",
    ];

    println!(
        "Parallel guard evaluation (XMark factor {factor}, {} bytes):\n",
        xml.len()
    );
    let mut table = Table::new(&["guard", "threads", "render s", "speed-up", "byte-identical"]);
    for guard_text in guards {
        // Sequential baseline via the raw renderer — the primitive the
        // Engine's partitioned render must stay byte-identical to.
        let guard = Guard::parse(guard_text).expect("guard");
        let analysis = guard.analyze(engine.doc()).expect("analyze");
        let (sequential, seq_time) = timed(|| {
            render(engine.doc(), &analysis.target, &RenderOptions::default()).expect("render")
        });
        table.row(&[
            guard_text.to_string(),
            "seq".to_string(),
            format!("{:.3}", seq_time.as_secs_f64()),
            "1.00x".to_string(),
            "-".to_string(),
        ]);
        for &t in &THREADS {
            let request = QueryRequest::builder(guard_text)
                .threads(t)
                .stats(true)
                .build();
            let response = session.query(&request).expect("engine query");
            // The per-query stats frame isolates render time from the
            // (cached) guard compile.
            let par_time = response.stats.expect("stats requested").render;
            let identical = response.xml == sequential;
            assert!(
                identical,
                "parallel output diverged for {guard_text} at {t} threads"
            );
            table.row(&[
                String::new(),
                t.to_string(),
                format!("{:.3}", par_time.as_secs_f64()),
                format!(
                    "{:.2}x",
                    seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9)
                ),
                "yes".to_string(),
            ]);
        }
        // The output stays well-formed XML, not just byte-stable.
        assert!(Document::parse_str(&sequential).is_ok());
    }
    table.print();
    println!(
        "\npaper shape to check: render wall time falls as threads grow while\n\
         every parallel run stays byte-identical to the sequential output."
    );
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

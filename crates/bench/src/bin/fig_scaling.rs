//! Scaling experiment (repository extension, not a paper figure): how the
//! sharded buffer pool and the parallel guard-evaluation driver behave as
//! the thread count grows.
//!
//! Two tables:
//!
//! 1. **Buffer-pool read throughput** — T threads hammer point reads on a
//!    cache-resident tree. With the pool sharded by page id, hits on
//!    distinct shards never contend on a common lock, so aggregate
//!    throughput should climb monotonically from 1 to 4 threads. The same
//!    workload on a single-shard pool shows the serialized baseline.
//! 2. **Parallel guard evaluation** — the `MUTATE site` / benchmark
//!    MORPHs of §IX run through the [`Engine`] facade at growing thread
//!    counts, with speed-up over the sequential renderer and a
//!    byte-identity check against it.
//! 3. **Mixed read/write workload** — 8 reader threads at full probe
//!    rate race a paced mutation stream (~1% of the document per
//!    second). Readers pin copy-on-write snapshots, so throughput must
//!    hold near the read-only rate and every observed render must be
//!    byte-identical to the render of *some* prefix of the applied
//!    mutations (precomputed on a twin engine) — zero torn reads.
//!
//! Flags: `--scale <f>` scales the document, `--smoke` shrinks the
//! mixed workload to a CI-sized correctness gate, `--json` writes
//! `BENCH_PR9.json` in the current directory.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use xmorph_bench::harness::{prepare, StoreKind};
use xmorph_bench::table::Table;
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::{Engine, Guard, Mutation, QueryRequest};
use xmorph_datagen::XmarkConfig;
use xmorph_pagestore::Store;
use xmorph_xml::dom::Document;

const THREADS: [usize; 4] = [1, 2, 3, 4];

/// Reader threads in the mixed workload (fixed by the experiment).
const READERS: usize = 8;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let scale = xmorph_bench::parse_scale();
    println!("Scaling — sharded buffer pool and parallel guard evaluation\n");
    if !smoke {
        pool_throughput(scale);
        parallel_eval(scale);
    }
    let mixed = mixed_workload(scale, smoke);
    if json {
        let path = "BENCH_PR9.json";
        std::fs::write(path, render_json(&mixed, smoke)).expect("write BENCH_PR9.json");
        println!("\nwrote {path}");
    }
    assert_eq!(
        mixed.divergences, 0,
        "snapshot isolation violated: a reader observed a render matching no mutation prefix"
    );
    if !smoke {
        assert!(
            mixed.ratio() >= 0.8,
            "readers sustained only {:.0}% of the read-only rate under mutation",
            mixed.ratio() * 100.0
        );
    }
}

/// Keys per reader thread per timed run.
fn read_workload(scale: f64) -> usize {
    ((40_000.0 * scale) as usize).max(1_000)
}

fn pool_throughput(scale: f64) {
    let keys = 20_000usize;
    let reads = read_workload(scale);
    // Capacity covers the whole tree: the experiment measures lock
    // contention on cache hits, not eviction traffic.
    let capacity = 4096;

    // Explicit shard count: `default_shard_count` adapts to the host CPU
    // count, but the experiment wants the sharded layout even on small
    // machines so the two columns always compare sharded vs serialized.
    let sharded = Store::options().capacity(capacity).shards(8).open_memory();
    let single = Store::options().capacity(capacity).shards(1).open_memory();

    let mut table = Table::new(&[
        "threads",
        "sharded Mreads/s",
        "1-shard Mreads/s",
        "speed-up vs 1 thread",
    ]);
    let mut base = 0.0f64;
    for &t in &THREADS {
        let m_sharded = measure_reads(&sharded, keys, reads, t);
        let m_single = measure_reads(&single, keys, reads, t);
        if t == 1 {
            base = m_sharded;
        }
        table.row(&[
            t.to_string(),
            format!("{m_sharded:.2}"),
            format!("{m_single:.2}"),
            format!("{:.2}x", m_sharded / base),
        ]);
    }
    println!(
        "Buffer-pool point reads ({} keys, {} reads/thread, {} shards):\n",
        keys,
        reads,
        sharded.shard_count()
    );
    table.print();
    println!();
}

/// Aggregate read throughput (million reads/second) with `threads`
/// concurrent readers, each walking the key space from its own offset.
fn measure_reads(store: &Store, keys: usize, reads: usize, threads: usize) -> f64 {
    let tree = store.open_tree("readbench").expect("tree");
    if tree.is_empty().expect("len") {
        for i in 0..keys {
            tree.insert(&(i as u64).to_be_bytes(), &[0u8; 64])
                .expect("insert");
        }
    }
    let done = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..threads {
            let tree = &tree;
            let done = &done;
            s.spawn(move || {
                // Co-prime stride so workers spread across shards.
                let stride = 7 + 2 * worker;
                let mut k = worker * keys / threads.max(1);
                for _ in 0..reads {
                    k = (k + stride) % keys;
                    let got = tree.get(&(k as u64).to_be_bytes()).expect("get");
                    assert!(got.is_some());
                }
                done.fetch_add(reads, Ordering::Relaxed);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    done.load(Ordering::Relaxed) as f64 / elapsed / 1e6
}

fn parallel_eval(scale: f64) {
    let factor = 0.05 * scale;
    let xml = XmarkConfig::with_factor(factor).generate();
    let prep = prepare(&xml, StoreKind::Memory);
    let engine = Engine::from_parts(prep.bench_store.store.clone(), prep.doc);
    let mut session = engine.session();
    let guards = [
        "MUTATE site",
        "MORPH people [ person [ address [ city ] ] ]",
        "MORPH item [ name location quantity ]",
    ];

    println!(
        "Parallel guard evaluation (XMark factor {factor}, {} bytes):\n",
        xml.len()
    );
    let mut table = Table::new(&["guard", "threads", "render s", "speed-up", "byte-identical"]);
    for guard_text in guards {
        // Sequential baseline via the raw renderer — the primitive the
        // Engine's partitioned render must stay byte-identical to.
        let guard = Guard::parse(guard_text).expect("guard");
        let analysis = guard.analyze(&engine.doc()).expect("analyze");
        let (sequential, seq_time) = timed(|| {
            render(&engine.doc(), &analysis.target, &RenderOptions::default()).expect("render")
        });
        table.row(&[
            guard_text.to_string(),
            "seq".to_string(),
            format!("{:.3}", seq_time.as_secs_f64()),
            "1.00x".to_string(),
            "-".to_string(),
        ]);
        for &t in &THREADS {
            let request = QueryRequest::builder(guard_text)
                .threads(t)
                .stats(true)
                .build();
            let response = session.query(&request).expect("engine query");
            // The per-query stats frame isolates render time from the
            // (cached) guard compile.
            let par_time = response.stats.expect("stats requested").render;
            let identical = response.xml == sequential;
            assert!(
                identical,
                "parallel output diverged for {guard_text} at {t} threads"
            );
            table.row(&[
                String::new(),
                t.to_string(),
                format!("{:.3}", par_time.as_secs_f64()),
                format!(
                    "{:.2}x",
                    seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9)
                ),
                "yes".to_string(),
            ]);
        }
        // The output stays well-formed XML, not just byte-stable.
        assert!(Document::parse_str(&sequential).is_ok());
    }
    table.print();
    println!(
        "\npaper shape to check: render wall time falls as threads grow while\n\
         every parallel run stays byte-identical to the sequential output."
    );
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

struct MixedResult {
    xmark_factor: f64,
    read_only_qps: f64,
    mixed_qps: f64,
    mutations_applied: usize,
    divergences: u64,
    reads_mixed: u64,
}

impl MixedResult {
    fn ratio(&self) -> f64 {
        if self.read_only_qps <= 0.0 {
            return 1.0;
        }
        self.mixed_qps / self.read_only_qps
    }
}

/// The mixed read/write experiment: measure reader throughput with the
/// writer idle, then re-run the same reader pool while a single writer
/// applies a paced mutation stream. Correctness is checked against a
/// twin engine that applies the same mutations sequentially: every
/// render a reader observes must equal the canary render of some
/// prefix of the stream.
fn mixed_workload(scale: f64, smoke: bool) -> MixedResult {
    let factor = if smoke { 0.004 } else { 0.05 * scale };
    let xml = XmarkConfig::with_factor(factor).generate();
    let engine = Engine::from_xml(&xml).expect("shred");
    let canary = "MORPH person [ name ]";

    // The mutation stream: mostly text updates on one person's name
    // (each changes the canary render), with periodic subtree inserts
    // so column maintenance and shape widening stay in the loop. Rate
    // targets ~1% of the document's vertices per second.
    let (name_dewey, people_dewey, total_instances) = {
        let doc = engine.doc();
        let name_t = doc
            .types()
            .lookup(&[
                "site".to_string(),
                "people".to_string(),
                "person".to_string(),
                "name".to_string(),
            ])
            .expect("xmark person name type");
        let first = doc.scan_type(name_t).remove(0).0;
        let person = first.parent().expect("name has a person parent");
        let people = person.parent().expect("person has a people parent");
        (first, people, doc.shape().total_instances())
    };
    let n_mutations = if smoke {
        10
    } else {
        ((total_instances as f64 / 100.0) as usize).clamp(20, 300)
    };
    let interval = if smoke {
        Duration::from_millis(2)
    } else {
        // 1%/s: each mutation touches ~1 vertex, so pace the stream at
        // total/100 mutations per second.
        Duration::from_secs_f64(100.0 / (total_instances as f64).max(100.0))
    };
    let mutations: Vec<Mutation> = (0..n_mutations)
        .map(|k| {
            if k % 5 == 4 {
                Mutation::InsertSubtree {
                    parent: people_dewey.clone(),
                    xml: format!("<person><name>NEW{k}</name></person>"),
                }
            } else {
                Mutation::UpdateText {
                    target: name_dewey.clone(),
                    text: format!("V{k}"),
                }
            }
        })
        .collect();

    // Twin precompute: the canary render after every prefix of the
    // stream. The twin replays the identical mutation values, so its
    // renders are exactly the states a correct snapshot may pin.
    let req = QueryRequest::builder(canary).threads(1).build();
    let twin = Engine::from_xml(&xml).expect("twin shred");
    let mut expected: HashSet<String> = HashSet::new();
    expected.insert(twin.query(&req).expect("twin query").xml);
    for m in &mutations {
        twin.mutate(m).expect("twin mutate");
        expected.insert(twin.query(&req).expect("twin query").xml);
    }

    let window = interval * (n_mutations as u32);
    println!(
        "Mixed workload (XMark factor {factor}, {} vertices, {READERS} readers,\n\
         {n_mutations} mutations over {window:?}):\n",
        total_instances
    );

    // Phase A: read-only probe rate over the same wall window.
    let baseline = expected.contains(&engine.query(&req).expect("baseline query").xml);
    assert!(baseline, "pre-mutation render must match prefix 0");
    let (reads_a, elapsed_a, div_a) = reader_pool(&engine, &req, &expected, |stop| {
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let read_only_qps = reads_a as f64 / elapsed_a.max(1e-9);

    // Phase B: same readers, with the writer pacing the stream.
    let applied = AtomicUsize::new(0);
    let (reads_b, elapsed_b, div_b) = reader_pool(&engine, &req, &expected, |stop| {
        for m in &mutations {
            std::thread::sleep(interval);
            engine.mutate(m).expect("mutate");
            applied.fetch_add(1, Ordering::Relaxed);
        }
        stop.store(true, Ordering::Relaxed);
    });
    let mixed_qps = reads_b as f64 / elapsed_b.max(1e-9);
    let result = MixedResult {
        xmark_factor: factor,
        read_only_qps,
        mixed_qps,
        mutations_applied: applied.load(Ordering::Relaxed),
        divergences: div_a + div_b,
        reads_mixed: reads_b,
    };

    let mut table = Table::new(&["phase", "reads", "reads/s", "divergences"]);
    table.row(&[
        "read-only".to_string(),
        reads_a.to_string(),
        format!("{read_only_qps:.0}"),
        div_a.to_string(),
    ]);
    table.row(&[
        format!("+{} mutations", result.mutations_applied),
        reads_b.to_string(),
        format!("{mixed_qps:.0}"),
        div_b.to_string(),
    ]);
    table.print();
    println!(
        "\nreaders sustained {:.0}% of the read-only rate under the mutation stream",
        result.ratio() * 100.0
    );
    result
}

/// Run [`READERS`] threads looping the canary query until `stop`;
/// `driver` runs on the calling thread and must eventually set `stop`.
/// Every observed render is checked for membership in `expected`.
/// Returns (total reads, elapsed seconds, divergences).
fn reader_pool(
    engine: &Engine,
    req: &QueryRequest,
    expected: &HashSet<String>,
    driver: impl FnOnce(&AtomicBool),
) -> (u64, f64, u64) {
    let stop = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    let divergences = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..READERS {
            let stop = &stop;
            let reads = &reads;
            let divergences = &divergences;
            s.spawn(move || {
                let mut session = engine.session();
                while !stop.load(Ordering::Relaxed) {
                    let xml = session.query(req).expect("reader query").xml;
                    if !expected.contains(&xml) {
                        divergences.fetch_add(1, Ordering::Relaxed);
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        driver(&stop);
    });
    (
        reads.load(Ordering::Relaxed) as u64,
        t0.elapsed().as_secs_f64(),
        divergences.load(Ordering::Relaxed) as u64,
    )
}

fn render_json(mixed: &MixedResult, smoke: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"fig_scaling_mixed\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"xmark_factor\": {},\n", mixed.xmark_factor));
    s.push_str(&format!("  \"readers\": {READERS},\n"));
    s.push_str("  \"threads_per_query\": 1,\n");
    s.push_str(&format!(
        "  \"read_only_qps\": {:.1},\n",
        mixed.read_only_qps
    ));
    s.push_str(&format!("  \"mixed_qps\": {:.1},\n", mixed.mixed_qps));
    s.push_str(&format!("  \"ratio\": {:.3},\n", mixed.ratio()));
    s.push_str(&format!(
        "  \"mutations_applied\": {},\n",
        mixed.mutations_applied
    ));
    s.push_str(&format!("  \"reads_mixed\": {},\n", mixed.reads_mixed));
    s.push_str(&format!("  \"divergences\": {}\n", mixed.divergences));
    s.push_str("}\n");
    s
}

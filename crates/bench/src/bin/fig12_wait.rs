//! Figure 12: the I/O-wait percentage while a `MUTATE site`
//! transformation runs — the fraction of wall time spent blocked on the
//! device (the paper reports ~40% on its 2006 RAID-1; block I/O drives
//! the cost of a transformation).

use std::time::Duration;
use xmorph_bench::harness::{BenchStore, StoreKind};
use xmorph_bench::sampler::Sampler;
use xmorph_bench::table::Table;
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_datagen::XmarkConfig;

fn main() {
    let scale = xmorph_bench::parse_scale();
    let factor = 0.3 * scale;
    println!("Fig. 12 — I/O wait percentage over a MUTATE site run (factor {factor})\n");

    let xml = XmarkConfig::with_factor(factor).generate();
    let bench_store = BenchStore::create(StoreKind::TempFile, 512);
    let sampler = Sampler::start(bench_store.stats.clone(), Duration::from_millis(20));

    let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
    bench_store.store.flush().expect("flush");
    let guard = Guard::parse("MUTATE site").expect("guard");
    let analysis = guard.analyze(&doc).expect("analyze");
    let _ = render(&doc, &analysis.target, &RenderOptions::default()).expect("render");

    let samples = sampler.finish();
    let mut table = Table::new(&["elapsed s", "interval wait %", "cumulative wait %"]);
    let step = (samples.len() / 25).max(1);
    let mut prev = None;
    for sample in samples.iter().step_by(step).chain(samples.last()) {
        let cumulative = sample.io.wait_fraction(sample.elapsed) * 100.0;
        let interval = match prev {
            Some((prev_elapsed, prev_io)) => {
                let dt: Duration = sample.elapsed - prev_elapsed;
                let dio = sample.io.since(&prev_io);
                dio.wait_fraction(dt) * 100.0
            }
            None => cumulative,
        };
        prev = Some((sample.elapsed, sample.io));
        table.row(&[
            format!("{:.2}", sample.elapsed.as_secs_f64()),
            format!("{interval:.1}"),
            format!("{cumulative:.1}"),
        ]);
    }
    table.print();
    println!(
        "\nPaper shape to check: a substantial, steady wait fraction while the tables\n\
         stream (the paper saw ~40% on 2006 disks; NVMe/page-cache hardware will sit\n\
         lower but nonzero once the data exceeds the buffer pool)."
    );
}

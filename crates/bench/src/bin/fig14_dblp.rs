//! Figure 14: XMorph vs the eXist-style baseline on DBLP slices, for
//! three transformation sizes:
//!
//! * small  — `MORPH author`
//! * medium — `MORPH author [title [year]]`
//! * large  — `MORPH dblp [author [title [year [pages] url]]]`
//!
//! exactly the guards of §IX. The baseline runs FLWOR queries producing
//! the equivalent regrouped output. Default slice sizes are scaled down
//! ~30× from the paper's 134–518 MB; pass `--scale 30` to approach them.

use xmorph_bench::harness::{exist_query, prepare, run_guard_on, StoreKind};
use xmorph_bench::table::{mb, secs, Table};
use xmorph_datagen::DblpConfig;

const GUARDS: &[(&str, &str)] = &[
    ("small", "MORPH author"),
    ("medium", "MORPH author [title [year]]"),
    ("large", "MORPH dblp [author [title [year [pages] url]]]"),
];

fn baseline_query(size: &str) -> String {
    match size {
        "small" => r#"for $a in doc("doc.xml")/dblp/*/author return <author>{string($a)}</author>"#
            .to_string(),
        "medium" => r#"for $r in doc("doc.xml")/dblp/*, $a in $r/author return <author>{string($a)}<title>{string($r/title)}<year>{string($r/year)}</year></title></author>"#
            .to_string(),
        _ => r#"<dblp>{for $r in doc("doc.xml")/dblp/*, $a in $r/author return <author>{string($a)}<title>{string($r/title)}<year>{string($r/year)}<pages>{string($r/pages)}</pages></year><url>{string($r/url)}</url></title></author>}</dblp>"#
            .to_string(),
    }
}

fn main() {
    let scale = xmorph_bench::parse_scale();
    // Paper sizes: 134, 268, 402, 518 MB. Default ≈ /30.
    let sizes_mb = [134.0, 268.0, 402.0, 518.0].map(|s| s / 30.0 * scale);
    println!("Fig. 14 — XMorph vs baseline on DBLP slices (scale {scale})\n");
    let mut table = Table::new(&[
        "slice MB",
        "guard",
        "xmorph compile s",
        "xmorph render s",
        "baseline query s",
        "xmorph out MB",
        "baseline out MB",
    ]);
    for &size_mb in &sizes_mb {
        let xml = DblpConfig::with_approx_bytes((size_mb * 1_000_000.0) as usize).generate();
        let prep = prepare(&xml, StoreKind::TempFile);
        for (size_name, guard) in GUARDS {
            let (compile, render, out_bytes, _) = run_guard_on(&prep, guard);
            let (baseline, baseline_bytes) =
                exist_query(&xml, &baseline_query(size_name), StoreKind::TempFile);
            table.row(&[
                mb(prep.input_bytes),
                size_name.to_string(),
                secs(compile),
                secs(render),
                secs(baseline),
                mb(out_bytes),
                mb(baseline_bytes),
            ]);
        }
        println!(
            "(shredded {} in {})",
            mb(prep.input_bytes),
            secs(prep.shred)
        );
    }
    table.print();
    println!(
        "\nPaper shape to check: as transformations grow larger, XMorph outperforms\n\
         the baseline (which must re-evaluate nested loops per record), while the\n\
         small transformation favours the baseline's simpler scan."
    );
}

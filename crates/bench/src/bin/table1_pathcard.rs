//! Table I: path cardinality for every pair of types in the adorned
//! shape of the paper's Figure 5(e) — the author-grouped instance (c).

use xmorph_bench::table::Table;
use xmorph_core::model::shape::AdornedShape;
use xmorph_xml::dom::Document;

/// The paper's Figure 1(c) instance, whose adorned shape is Figure 5(e).
const FIG1C: &str = "<data><author><name>Tim</name>\
    <book><title>X</title><publisher><name>W</name></publisher></book>\
    <book><title>Y</title><publisher><name>V</name></publisher></book>\
    </author></data>";

fn main() {
    let doc = Document::parse_str(FIG1C).expect("figure instance");
    let shape = AdornedShape::from_document(&doc);
    let types = shape.types();

    println!("Adorned shape (paper Fig. 5(e)):\n\n{shape}");
    println!("Table I: pathCard(row -> column)\n");

    let ids: Vec<_> = shape.type_ids().collect();
    let mut header: Vec<&str> = vec!["from \\ to"];
    let names: Vec<String> = ids.iter().map(|&t| types.dotted(t)).collect();
    for n in &names {
        header.push(n);
    }
    let mut table = Table::new(&header);
    for (i, &t) in ids.iter().enumerate() {
        let mut row = vec![names[i].clone()];
        for &s in &ids {
            match shape.path_card(t, s) {
                Some(card) => row.push(card.to_string()),
                None => row.push("-".to_string()),
            }
        }
        table.row(&row);
    }
    table.print();
}

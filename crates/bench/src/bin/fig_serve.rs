//! Serving-layer benchmark (repository extension, not a paper figure):
//! sustained queries/second and tail latency of the framed-TCP server
//! as the client count grows, plus an overload probe showing admission
//! control answering `BUSY` instead of queueing.
//!
//! The paper's pitch is a service — "millions of users can each see the
//! data in the shape they individually choose" — so the number that
//! matters is not one transformation's wall time but what a long-lived
//! process sustains across concurrent sessions. Each client loops a
//! small mix of guards over its own connection (the per-connection
//! session caches guard parses, so steady state measures the render
//! path and the wire, not the parser).
//!
//! Flags: `--scale <f>` scales the document, `--smoke` runs a tiny
//! document and short windows (the CI gate), `--threads-per-query <n>`
//! sets the render worker count each query requests (`0` = server
//! default — the historical flat-qps configuration: every query fans
//! out across all cores, so concurrent clients just time-slice the
//! same pool), `--json` writes `BENCH_PR8.json` in the current
//! directory.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use xmorph_bench::table::Table;
use xmorph_core::Engine;
use xmorph_datagen::XmarkConfig;
use xmorph_server::{Client, QueryOpts, Reply, Server, ServerConfig, ServerHandle};

/// The query mix every client cycles through.
const GUARDS: &[&str] = &[
    "MORPH people [ person [ address [ city ] ] ]",
    "MORPH item [ name location quantity ]",
    "MUTATE site",
];

const STORE: &str = "xmark";

struct LoadPoint {
    clients: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    ok: u64,
    busy: u64,
}

struct OverloadProbe {
    clients: usize,
    max_inflight: usize,
    ok: u64,
    busy: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let scale = xmorph_bench::parse_scale();
    let threads_per_query: u32 = args
        .iter()
        .position(|a| a == "--threads-per-query")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads-per-query takes an integer"))
        .unwrap_or(1);

    let factor = if smoke { 0.004 } else { 0.02 * scale };
    let window = if smoke {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(3)
    };
    let client_counts: &[usize] = if smoke {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };

    let xml = XmarkConfig::with_factor(factor).generate();
    println!(
        "Serving — sustained throughput and tail latency over the framed protocol\n\
         (XMark factor {factor}, {} bytes, {:?} per load point, \
         {threads_per_query} render thread(s) per query)\n",
        xml.len(),
        window
    );

    // Capacity headroom: every load point may hold `clients` sessions.
    let handle = Server::builder()
        .register(STORE, Engine::from_xml(&xml).expect("shred"))
        .max_sessions(64)
        .max_inflight(32)
        .bind("127.0.0.1:0")
        .expect("bind");

    let mut points = Vec::new();
    let mut table = Table::new(&["clients", "queries/s", "p50 ms", "p99 ms", "ok", "busy"]);
    for &clients in client_counts {
        let point = drive(handle.addr(), clients, window, threads_per_query);
        table.row(&[
            point.clients.to_string(),
            format!("{:.0}", point.qps),
            format!("{:.2}", point.p50_ms),
            format!("{:.2}", point.p99_ms),
            point.ok.to_string(),
            point.busy.to_string(),
        ]);
        points.push(point);
    }
    table.print();
    handle.shutdown().expect("shutdown");

    // Overload probe: a deliberately tiny in-flight limit with a held
    // query slot — admission control must answer BUSY, not queue.
    let overload = overload_probe(&xml, if smoke { 4 } else { 8 });
    println!(
        "\nOverload probe ({} clients vs max_inflight={}): {} ok, {} BUSY",
        overload.clients, overload.max_inflight, overload.ok, overload.busy
    );
    assert!(
        overload.busy > 0,
        "overload must surface as typed BUSY frames"
    );

    if json {
        let path = "BENCH_PR8.json";
        std::fs::write(
            path,
            render_json(&xml, factor, threads_per_query, &points, &overload),
        )
        .expect("write BENCH_PR8.json");
        println!("\nwrote {path}");
    }

    println!(
        "\npaper shape to check: queries/s grows with client count until the\n\
         render pool saturates, p99 stays bounded, and overload answers BUSY."
    );
}

/// Run `clients` concurrent connections against `addr` for `window`,
/// each cycling the guard mix; returns aggregate throughput and the
/// latency distribution.
fn drive(
    addr: std::net::SocketAddr,
    clients: usize,
    window: Duration,
    threads_per_query: u32,
) -> LoadPoint {
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let results: Vec<(Vec<Duration>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|worker| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::new();
                    let mut busy = 0u64;
                    let mut i = worker; // stagger the mix across workers
                    while !stop.load(Ordering::Relaxed) {
                        let guard = GUARDS[i % GUARDS.len()];
                        i += 1;
                        let q0 = Instant::now();
                        let opts = QueryOpts {
                            threads: threads_per_query,
                            ..QueryOpts::default()
                        };
                        match client.query(STORE, guard, opts).expect("query") {
                            Reply::Result { .. } => latencies.push(q0.elapsed()),
                            Reply::Busy(_) => busy += 1,
                            Reply::Error { code, message } => {
                                panic!("unexpected error {code:?}: {message}")
                            }
                            other => panic!("unexpected reply {other:?}"),
                        }
                    }
                    (latencies, busy)
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let mut latencies: Vec<Duration> = Vec::new();
    let mut busy = 0u64;
    for (lat, b) in results {
        latencies.extend(lat);
        busy += b;
    }
    latencies.sort();
    let ok = latencies.len() as u64;
    LoadPoint {
        clients,
        qps: ok as f64 / elapsed.max(1e-9),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        ok,
        busy,
    }
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// Start a one-slot server with an artificial hold and storm it: with
/// more concurrent queries than slots, some must be answered `BUSY`.
fn overload_probe(xml: &str, clients: usize) -> OverloadProbe {
    let max_inflight = 1;
    let mut config = ServerConfig {
        max_inflight,
        ..Default::default()
    };
    config.query_hold = Duration::from_millis(50);
    let handle: ServerHandle = Server::builder()
        .register(STORE, Engine::from_xml(xml).expect("shred"))
        .config(config)
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = handle.addr();
    let results: Vec<(u64, u64)> = std::thread::scope(|scope| {
        (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut ok = 0u64;
                    let mut busy = 0u64;
                    for _ in 0..4 {
                        match client
                            .query(STORE, GUARDS[0], QueryOpts::default())
                            .expect("query")
                        {
                            Reply::Result { .. } => ok += 1,
                            Reply::Busy(_) => busy += 1,
                            Reply::Error { code, message } => {
                                panic!("unexpected error {code:?}: {message}")
                            }
                            other => panic!("unexpected reply {other:?}"),
                        }
                    }
                    (ok, busy)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    handle.shutdown().expect("shutdown");
    let (ok, busy) = results
        .into_iter()
        .fold((0, 0), |(a, b), (o, u)| (a + o, b + u));
    OverloadProbe {
        clients,
        max_inflight,
        ok,
        busy,
    }
}

fn render_json(
    xml: &str,
    factor: f64,
    threads_per_query: u32,
    points: &[LoadPoint],
    overload: &OverloadProbe,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"xmark_factor\": {factor},\n"));
    s.push_str(&format!("  \"input_bytes\": {},\n", xml.len()));
    s.push_str(&format!("  \"threads_per_query\": {threads_per_query},\n"));
    s.push_str("  \"load\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"clients\": {},\n", p.clients));
        s.push_str(&format!("      \"queries_per_s\": {:.1},\n", p.qps));
        s.push_str(&format!("      \"p50_ms\": {:.3},\n", p.p50_ms));
        s.push_str(&format!("      \"p99_ms\": {:.3},\n", p.p99_ms));
        s.push_str(&format!("      \"ok\": {},\n", p.ok));
        s.push_str(&format!("      \"busy\": {}\n", p.busy));
        s.push_str(if i + 1 == points.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"overload\": {\n");
    s.push_str(&format!("    \"clients\": {},\n", overload.clients));
    s.push_str(&format!(
        "    \"max_inflight\": {},\n",
        overload.max_inflight
    ));
    s.push_str(&format!("    \"ok\": {},\n", overload.ok));
    s.push_str(&format!("    \"busy\": {}\n", overload.busy));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

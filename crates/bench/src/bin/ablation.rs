//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Pipelined sort-merge closest joins** (§VII) vs the naive
//!    strategy (one B+tree prefix probe per parent node). Both produce
//!    identical output; the paper's remark that sort-merge "reduces the
//!    cost of a closest join to O(n)" should show as a widening gap.
//! 2. **Buffer-pool capacity** vs transformation time: how gracefully
//!    the engine degrades when the data exceeds memory.
//! 3. **Architecture #1 vs #2** (§VIII): physical transformation vs the
//!    guard rendered as an XQuery view, on a downward-navigable guard —
//!    the paper expected "some speed-up ... for some queries" from the
//!    view, with the same worst case.

use std::time::{Duration, Instant};
use xmorph_bench::harness::{BenchStore, StoreKind};
use xmorph_bench::table::{mb, secs, Table};
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_datagen::DblpConfig;

fn timed_render(doc: &ShreddedDoc, guard: &Guard, pipelined: bool) -> (Duration, usize) {
    let analysis = guard.analyze(doc).expect("analyze");
    let opts = RenderOptions {
        pipelined,
        ..Default::default()
    };
    let t = Instant::now();
    let out = render(doc, &analysis.target, &opts).expect("render");
    (t.elapsed(), out.len())
}

fn main() {
    let scale = xmorph_bench::parse_scale();

    println!("Ablation 1 — pipelined sort-merge joins vs per-parent probes (DBLP)\n");
    let guard = Guard::parse("CAST MORPH author [title [year]]").expect("guard");
    let mut table = Table::new(&["input MB", "pipelined s", "naive s", "speedup"]);
    for size in [1.0, 2.0, 4.0, 8.0] {
        let xml = DblpConfig::with_approx_bytes((size * scale * 1e6) as usize).generate();
        let bench_store = BenchStore::create(StoreKind::TempFile, 1024);
        let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
        let (pipelined, bytes_a) = timed_render(&doc, &guard, true);
        let (naive, bytes_b) = timed_render(&doc, &guard, false);
        assert_eq!(bytes_a, bytes_b, "strategies must agree");
        table.row(&[
            mb(xml.len()),
            secs(pipelined),
            secs(naive),
            format!(
                "{:.1}x",
                naive.as_secs_f64() / pipelined.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.print();

    println!("\nAblation 2 — buffer-pool capacity vs transformation time (DBLP 4 MB)\n");
    let xml = DblpConfig::with_approx_bytes((4.0 * scale * 1e6) as usize).generate();
    let mut table = Table::new(&["pool pages", "pool MB", "render s", "device reads"]);
    for capacity in [16usize, 64, 256, 1024, 4096] {
        let bench_store = BenchStore::create(StoreKind::TempFile, capacity);
        let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
        bench_store.store.flush().expect("flush");
        let before = bench_store.stats.snapshot();
        let (elapsed, _) = timed_render(&doc, &guard, true);
        let after = bench_store.stats.snapshot().since(&before);
        table.row(&[
            capacity.to_string(),
            format!("{:.2}", capacity as f64 * 4096.0 / 1e6),
            secs(elapsed),
            after.blocks_read.to_string(),
        ]);
    }
    table.print();

    println!("\nAblation 3 — physical transformation vs XQuery view (§VIII architectures)\n");
    let nav_guard =
        Guard::parse("CAST MORPH dblp [ article [ author title year ] ]").expect("guard");
    let mut table = Table::new(&[
        "input MB",
        "arch1 shred s",
        "arch1 render s",
        "arch2 view s",
    ]);
    for size in [1.0, 2.0, 4.0] {
        let xml = DblpConfig::with_approx_bytes((size * scale * 1e6) as usize).generate();
        let bench_store = BenchStore::create(StoreKind::TempFile, 1024);
        let t0 = Instant::now();
        let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
        let shred = t0.elapsed();
        let (render_time, arch1_bytes) = timed_render(&doc, &nav_guard, true);
        // Architecture #2: compile the guard to an XQuery view and run it
        // on the stored original document.
        let analysis = nav_guard.analyze(&doc).expect("analyze");
        let view = xmorph_core::render::guard_to_xquery_view(&doc, &analysis.target, "doc.xml")
            .expect("navigable guard");
        let db = xmorph_xqlite::XqliteDb::in_memory();
        db.store_document("doc.xml", &xml).expect("store");
        let t1 = Instant::now();
        let via_view = db.query(&view).expect("view query");
        let view_time = t1.elapsed();
        assert_eq!(via_view.len(), arch1_bytes, "architectures must agree");
        table.row(&[
            mb(xml.len()),
            secs(shred),
            secs(render_time),
            secs(view_time),
        ]);
    }
    table.print();

    println!(
        "\nExpected shapes: the pipelined join wins and its advantage grows with\n\
         input size; shrinking the pool below the working set raises device reads\n\
         while the render degrades gracefully; the XQuery view avoids the shred\n\
         but its per-record navigation costs about as much as (or more than)\n\
         the physical render, matching the paper's assessment."
    );
}

//! Figure 16: cost of each kind of XMorph operation, COMPOSEd with a
//! single fixed MORPH on the XMark dataset (same MORPH in every test so
//! the output size matches). The paper's finding: operations compile
//! into the target shape, so their run-time cost is effectively
//! identical — renaming a label or adding a new one adds almost nothing.

use xmorph_bench::harness::{prepare, run_guard_on, StoreKind};
use xmorph_bench::table::{mb, secs, Table};
use xmorph_datagen::XmarkConfig;

const BASE: &str = "MORPH person [ name emailaddress ]";

fn main() {
    let scale = xmorph_bench::parse_scale();
    let factor = 0.25 * scale;
    let ops: Vec<(&str, String)> = vec![
        ("morph", BASE.to_string()),
        ("mutate", format!("{BASE} | MUTATE emailaddress [ name ]")),
        ("translate", format!("{BASE} | TRANSLATE person -> user")),
        (
            "new",
            format!("{BASE} | MUTATE (NEW contact) [ emailaddress ]"),
        ),
        ("clone", format!("{BASE} | MUTATE person [ CLONE name ]")),
        ("drop", format!("{BASE} | MUTATE (DROP emailaddress)")),
        (
            "restrict",
            "MORPH (RESTRICT person [ emailaddress ]) [ name emailaddress ]".to_string(),
        ),
    ];

    println!("Fig. 16 — cost of XMorph operations composed with one MORPH (factor {factor})\n");
    let xml = XmarkConfig::with_factor(factor).generate();
    let prep = prepare(&xml, StoreKind::TempFile);
    println!(
        "(input {} MB, shredded in {} s)\n",
        mb(prep.input_bytes),
        secs(prep.shred)
    );

    let mut table = Table::new(&["operation", "compile s", "render s", "total s", "output MB"]);
    for (name, guard) in &ops {
        let (compile, render, out_bytes, _) = run_guard_on(&prep, guard);
        table.row(&[
            name.to_string(),
            secs(compile),
            secs(render),
            secs(compile + render),
            mb(out_bytes),
        ]);
    }
    table.print();
    println!(
        "\nPaper shape to check: every operation costs effectively the same — the\n\
         compile phase folds them all into one target shape before rendering."
    );
}

//! Figure 13: memory in use while a `MUTATE site` transformation runs.
//! The paper's JVM grabbed all available memory within the first 30% of
//! the run; the point of reproducing the chart is to show the engine's
//! memory profile over time. Our streaming pipeline should stay flat and
//! bounded (buffer pool + output buffer), which *improves on* the paper's
//! observation — noted in EXPERIMENTS.md.

use std::time::Duration;
use xmorph_bench::alloc::CountingAlloc;
use xmorph_bench::harness::{BenchStore, StoreKind};
use xmorph_bench::sampler::Sampler;
use xmorph_bench::table::Table;
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_datagen::XmarkConfig;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let scale = xmorph_bench::parse_scale();
    let factor = 0.3 * scale;
    println!("Fig. 13 — allocated memory over a MUTATE site run (factor {factor})\n");

    let xml = XmarkConfig::with_factor(factor).generate();
    let input_len = xml.len();
    let bench_store = BenchStore::create(StoreKind::TempFile, 512);
    let sampler = Sampler::start(bench_store.stats.clone(), Duration::from_millis(20));

    let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
    drop(xml); // the source text is no longer needed once shredded
    bench_store.store.flush().expect("flush");
    let guard = Guard::parse("MUTATE site").expect("guard");
    let analysis = guard.analyze(&doc).expect("analyze");
    let out = render(&doc, &analysis.target, &RenderOptions::default()).expect("render");
    let out_len = out.len();
    drop(out);

    let samples = sampler.finish();
    let mut table = Table::new(&["elapsed s", "allocated MB"]);
    let step = (samples.len() / 25).max(1);
    for sample in samples.iter().step_by(step).chain(samples.last()) {
        table.row(&[
            format!("{:.2}", sample.elapsed.as_secs_f64()),
            format!("{:.2}", sample.allocated as f64 / 1_000_000.0),
        ]);
    }
    table.print();
    println!(
        "\npeak {:.2} MB (input {:.2} MB, output {:.2} MB)\n\
         Paper contrast: the JVM grabbed all memory within the first 30% of the run;\n\
         this engine's live allocation tracks the buffer pool + output buffer instead.",
        xmorph_bench::alloc::peak_bytes() as f64 / 1_000_000.0,
        input_len as f64 / 1_000_000.0,
        out_len as f64 / 1_000_000.0,
    );
}

//! Crash-consistency sweep over the full document pipeline
//! (repository extension, not a paper figure).
//!
//! Replays shred → flush → mutate → re-persist → vacuum → close on an
//! XMark document over the deterministic fault-injection storage layer
//! ([`xmorph_pagestore::FaultStorage`]), crashing at **every** write
//! index and **every** sync index the fault-free run performs. Each
//! crash freezes the torn device image; the image is reopened and the
//! document queried, and any panic, non-typed failure, or malformed
//! fallback report is a violation. Because file-backed stores now run
//! the page-image WAL, reopening a crash image *replays the log* — so
//! for every frozen image the sweep additionally crashes the recovery
//! itself at each write recovery performs (head reset, replayed page
//! homes) and re-checks the doubly-crashed image: recovery must be
//! restartable from any point. A fixed-seed torn-write matrix
//! re-checks a handful of crash points under different torn-prefix
//! lengths.
//!
//! Flags: `--sweep` runs the exhaustive sweep (the default is the same
//! sweep — the flag exists so invocations read as what they are),
//! `--smoke` shrinks the document for CI, `--scale <f>` scales it up.
//! Exits nonzero if any crash point violates an invariant.

use std::time::Instant;
use xmorph_core::{MorphError, MorphResult, OpenOptions, ShredOptions, ShreddedDoc, TypeId};
use xmorph_datagen::XmarkConfig;
use xmorph_pagestore::{FaultHandle, FaultScript, FaultStorage, Store, StoreError};

const BASE_SEED: u64 = 0xC0FFEE;

fn store_err(e: StoreError) -> MorphError {
    MorphError::Store {
        op: "crash sweep".into(),
        source: e,
    }
}

#[derive(Default, Clone, Copy)]
struct Marks {
    shred_done: u64,
    flush_done: u64,
    vacuum_start: u64,
}

/// The measured pipeline. Every step propagates errors: under an
/// injected crash this returns `Err`, and a panic anywhere is a sweep
/// failure.
fn pipeline(
    xml: &str,
    storage: Box<dyn xmorph_pagestore::storage::Storage>,
    handle: Option<&FaultHandle>,
    marks: &mut Marks,
) -> MorphResult<()> {
    let store = Store::options()
        .capacity(32)
        .shards(1)
        .with_storage(storage)
        .map_err(store_err)?;
    // A tiny memory budget forces the streaming shred to spill sorted
    // runs to store segments *during* the shred, so the sweep's crash
    // points include torn run-segment writes mid-shred.
    let opts = ShredOptions::builder()
        .persist_columns(true)
        .memory_budget(1);
    let mut doc = ShreddedDoc::shred_str_with(&store, xml, &opts)?;
    if let Some(h) = handle {
        marks.shred_done = h.writes();
    }
    store.flush().map_err(store_err)?;
    if let Some(h) = handle {
        marks.flush_done = h.writes();
    }

    // Mutate the densest type: update a few texts, delete one subtree.
    let hot = hottest_type(&doc).ok_or(MorphError::Internal("document has no types"))?;
    let rows = doc.scan_type(hot);
    if rows.len() < 4 {
        return Err(MorphError::Internal("hot column shorter than expected"));
    }
    for (dewey, _) in rows.iter().take(3) {
        doc.update_text(dewey, "crash sweep rewrote this")?;
    }
    doc.delete_subtree(&rows[3].0)?;
    doc.persist_dirty_columns()?;
    if let Some(h) = handle {
        marks.vacuum_start = h.writes();
    }
    store.vacuum().map_err(store_err)?;
    store.close().map_err(store_err)?;
    Ok(())
}

/// The leaf type with the most instances — a dense mutation target
/// that exists at any XMark factor.
fn hottest_type(doc: &ShreddedDoc) -> Option<TypeId> {
    doc.types().ids().max_by_key(|&t| doc.instance_count(t))
}

/// Reopen a frozen crash image and exercise every read surface.
/// Returns a violation description, or `None` when the image honours
/// the crash contract (typed refusal, or a queryable document).
fn check_image(image: Vec<u8>, crash_at: &str) -> Option<String> {
    let (storage, _h) = FaultStorage::with_image(image, FaultScript::none());
    let store = match Store::options()
        .capacity(32)
        .with_storage(Box::new(storage))
    {
        Ok(s) => s,
        Err(_) => return None,
    };
    let opts = OpenOptions::builder().persisted_columns(true).mmap(false);
    let doc = match ShreddedDoc::open_with(&store, &opts) {
        Ok(d) => d,
        Err(_) => return None,
    };
    let types: Vec<TypeId> = doc.types().ids().collect();
    for &t in &types {
        let rows = doc.scan_type(t);
        if rows.len() as u64 > 1_000_000 {
            return Some(format!("crash@{crash_at}: type {t:?} scan exploded"));
        }
        for (dewey, _) in rows.iter().take(1) {
            let _ = doc.node_text(dewey);
            let _ = doc.node_type(dewey);
        }
    }
    for line in doc.segment_fallbacks() {
        if !line.contains(':') {
            return Some(format!(
                "crash@{crash_at}: malformed fallback report {line:?}"
            ));
        }
    }
    None
}

/// Crash the *recovery* of a frozen crash image at every write the
/// recovery itself performs (WAL head reset, replayed page homes),
/// then verify that a clean reopen of the doubly-crashed image still
/// honours the crash contract. Returns the number of recovery crash
/// points exercised plus any violations.
fn sweep_recovery_crashes(image: &[u8], origin: &str) -> (u64, Vec<String>) {
    // Recording pass: a clean recovery of this image, counting the
    // writes it performs. The open may legitimately refuse (pre-setup
    // crash images) — then there is nothing to sweep.
    let (storage, h) = FaultStorage::with_image(image.to_vec(), FaultScript::none());
    let opened = Store::options()
        .capacity(32)
        .with_storage(Box::new(storage));
    let recovery_writes = h.writes();
    drop(opened);

    let mut violations = Vec::new();
    for j in 0..recovery_writes {
        let script = FaultScript::none()
            .crash_at(j)
            .torn_seed(BASE_SEED.rotate_left(17) ^ j);
        let (storage, h2) = FaultStorage::with_image(image.to_vec(), script);
        // The interrupted recovery fails; its half-recovered image must
        // still reopen to a consistent state (recovery is restartable).
        let _ = Store::options()
            .capacity(32)
            .with_storage(Box::new(storage));
        if let Some(v) = check_image(h2.image(), &format!("{origin} recovery@{j}")) {
            violations.push(v);
        }
    }
    (recovery_writes, violations)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let _sweep = args.iter().any(|a| a == "--sweep");
    let scale = xmorph_bench::parse_scale();

    let factor = if smoke { 0.0015 } else { 0.004 * scale };
    let xml = XmarkConfig::with_factor(factor).generate();
    println!("Crash sweep (XMark factor {factor}, {} bytes)", xml.len());

    let started = Instant::now();
    let mut marks = Marks::default();
    let (storage, handle) = FaultStorage::new(FaultScript::none());
    pipeline(&xml, Box::new(storage), Some(&handle), &mut marks)
        .expect("fault-free pipeline must succeed");
    let total_writes = handle.writes();
    let total_syncs = handle.syncs();
    println!(
        "recording run: {total_writes} writes, {total_syncs} syncs ({} during shred, {} before \
         mutation, {} before vacuum)",
        marks.shred_done, marks.flush_done, marks.vacuum_start
    );

    let mut violations: Vec<String> = Vec::new();
    let mut reopened = 0u64;
    let mut recovery_points = 0u64;
    for k in 0..total_writes {
        let script = FaultScript::none().crash_at(k).torn_seed(BASE_SEED ^ k);
        let (storage, handle) = FaultStorage::new(script);
        let mut ignored = Marks::default();
        if pipeline(&xml, Box::new(storage), None, &mut ignored).is_ok() {
            violations.push(format!("crash@{k}: pipeline survived a crashed device"));
            continue;
        }
        reopened += 1;
        let image = handle.image();
        if let Some(v) = check_image(image.clone(), &format!("write@{k}")) {
            violations.push(v);
        }
        let (points, mut vs) = sweep_recovery_crashes(&image, &format!("write@{k}"));
        recovery_points += points;
        violations.append(&mut vs);
    }
    println!(
        "exhaustive write sweep: {total_writes} crash points, {reopened} images checked, \
         {recovery_points} crash-during-recovery points, {:.1}s",
        started.elapsed().as_secs_f64()
    );

    // Sync-boundary sweep: crash exactly at each fsync — the commit
    // points of the WAL'd pipeline — with the cut write left whole.
    let mut sync_recovery_points = 0u64;
    for k in 0..total_syncs {
        let script = FaultScript::none().crash_at_sync(k);
        let (storage, handle) = FaultStorage::new(script);
        let mut ignored = Marks::default();
        if pipeline(&xml, Box::new(storage), None, &mut ignored).is_ok() {
            violations.push(format!(
                "sync-crash@{k}: pipeline survived a crashed device"
            ));
            continue;
        }
        let image = handle.image();
        if let Some(v) = check_image(image.clone(), &format!("sync@{k}")) {
            violations.push(v);
        }
        let (points, mut vs) = sweep_recovery_crashes(&image, &format!("sync@{k}"));
        sync_recovery_points += points;
        violations.append(&mut vs);
    }
    println!(
        "sync sweep: {total_syncs} crash points, {sync_recovery_points} crash-during-recovery \
         points, total {:.1}s",
        started.elapsed().as_secs_f64()
    );

    // Fixed-seed torn-write matrix on a spread of crash points: the
    // invariants may not depend on how much of the cut write landed.
    let points = [
        1,
        total_writes / 4,
        marks.shred_done / 2,
        marks.flush_done.saturating_sub(1),
        marks.flush_done + 1,
        marks.vacuum_start + 1,
        total_writes - 1,
    ];
    let seeds = [0u64, 1, 0xDEAD_BEEF, u64::MAX];
    for &k in &points {
        for &seed in &seeds {
            let script = FaultScript::none().crash_at(k).torn_seed(seed);
            let (storage, handle) = FaultStorage::new(script);
            let mut ignored = Marks::default();
            if pipeline(&xml, Box::new(storage), None, &mut ignored).is_ok() {
                violations.push(format!("crash@{k} seed {seed:#x}: pipeline survived"));
                continue;
            }
            if let Some(v) = check_image(handle.image(), &format!("write@{k}")) {
                violations.push(format!("{v} (seed {seed:#x})"));
            }
        }
    }
    println!(
        "torn-write matrix: {} points x {} seeds, total {:.1}s",
        points.len(),
        seeds.len(),
        started.elapsed().as_secs_f64()
    );

    if violations.is_empty() {
        println!("no violations");
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

//! Figure 11: cumulative block I/O while a `MUTATE site` transformation
//! runs, sampled like the paper's `vmstat` trace. A steady, linear climb
//! (no bursts) shows the engine streams: it gradually processes the disk
//! tables while generating output.

use std::time::Duration;
use xmorph_bench::harness::{BenchStore, StoreKind};
use xmorph_bench::sampler::Sampler;
use xmorph_bench::table::Table;
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_datagen::XmarkConfig;

fn main() {
    let scale = xmorph_bench::parse_scale();
    let factor = 0.3 * scale;
    println!("Fig. 11 — cumulative block I/O over a MUTATE site run (factor {factor})\n");

    let xml = XmarkConfig::with_factor(factor).generate();
    let bench_store = BenchStore::create(StoreKind::TempFile, 512);
    let sampler = Sampler::start(bench_store.stats.clone(), Duration::from_millis(20));

    let doc = ShreddedDoc::shred_str(&bench_store.store, &xml).expect("shred");
    bench_store.store.flush().expect("flush");
    let guard = Guard::parse("MUTATE site").expect("guard");
    let analysis = guard.analyze(&doc).expect("analyze");
    let out = render(&doc, &analysis.target, &RenderOptions::default()).expect("render");

    let samples = sampler.finish();
    let mut table = Table::new(&["elapsed s", "blocks read", "blocks written", "cumulative"]);
    // Thin the series to ~25 rows.
    let step = (samples.len() / 25).max(1);
    for sample in samples.iter().step_by(step).chain(samples.last()) {
        table.row(&[
            format!("{:.2}", sample.elapsed.as_secs_f64()),
            sample.io.blocks_read.to_string(),
            sample.io.blocks_written.to_string(),
            sample.io.total_blocks().to_string(),
        ]);
    }
    table.print();
    println!(
        "\ninput {} bytes, output {} bytes; paper shape to check: the cumulative\n\
         series climbs steadily with no sudden spikes (gradual streaming).",
        xml.len(),
        out.len()
    );
}

//! Figure 15: effect of the target shape on transformation throughput.
//!
//! Three datasets (NASA-like, DBLP-like, XMark-like), each transformed to
//! deep (skinny) and bushy target shapes in two sizes (small ≈ 4–6
//! labels, large ≈ 9–12 labels). The paper's finding: throughput
//! (elements/second) is steady across shapes within a dataset — only
//! output size matters — with between-dataset differences tracking text
//! density.

use xmorph_bench::harness::{prepare, run_guard_on, PreparedDoc, StoreKind};
use xmorph_bench::table::{mb, Table};
use xmorph_datagen::{DblpConfig, NasaConfig, XmarkConfig};

struct DatasetSpec {
    name: &'static str,
    xml: String,
    guards: &'static [(&'static str, &'static str)],
}

const XMARK_GUARDS: &[(&str, &str)] = &[
    ("deep-small", "MORPH people [ person [ address [ city ] ] ]"),
    (
        "deep-large",
        "MORPH site [ people [ person [ address [ street city country zipcode ] name emailaddress phone ] ] ]",
    ),
    ("bushy-small", "MORPH item [ name location quantity ]"),
    (
        "bushy-large",
        "MORPH person [ name emailaddress phone street city country zipcode education business @income ]",
    ),
];

const DBLP_GUARDS: &[(&str, &str)] = &[
    ("deep-small", "MORPH author [ title [ year ] ]"),
    (
        "deep-large",
        "MORPH dblp [ author [ title [ year [ pages [ url ] ] journal volume ] ] ]",
    ),
    ("bushy-small", "MORPH article [ author title year ]"),
    (
        "bushy-large",
        "MORPH article [ author title year pages url ee journal volume number ]",
    ),
];

const NASA_GUARDS: &[(&str, &str)] = &[
    ("deep-small", "MORPH dataset [ reference [ source [ other ] ] ]"),
    (
        "deep-large",
        "MORPH datasets [ dataset [ reference [ source [ other [ title author [ lastName initial ] date [ year ] ] ] ] ] ]",
    ),
    ("bushy-small", "MORPH dataset [ title identifier keywords ]"),
    (
        "bushy-large",
        "MORPH dataset [ title identifier altname keyword para field revision creationDate ]",
    ),
];

fn main() {
    let scale = xmorph_bench::parse_scale();
    // Paper sizes: NASA 23 MB, DBLP 112 MB, XMark 55 MB. Default ≈ /20.
    let datasets = vec![
        DatasetSpec {
            name: "nasa",
            xml: NasaConfig::with_approx_bytes((23.0 / 20.0 * scale * 1e6) as usize).generate(),
            guards: NASA_GUARDS,
        },
        DatasetSpec {
            name: "dblp",
            xml: DblpConfig::with_approx_bytes((112.0 / 20.0 * scale * 1e6) as usize).generate(),
            guards: DBLP_GUARDS,
        },
        DatasetSpec {
            name: "xmark",
            xml: XmarkConfig {
                factor: 0.5 / 20.0 * scale,
                ..Default::default()
            }
            .generate(),
            guards: XMARK_GUARDS,
        },
    ];

    println!("Fig. 15 — throughput vs target shape (scale {scale})\n");
    let mut table = Table::new(&[
        "dataset",
        "input MB",
        "shape",
        "render s",
        "out elements",
        "throughput elems/s",
    ]);
    for spec in &datasets {
        let prep: PreparedDoc = prepare(&spec.xml, StoreKind::TempFile);
        for (shape_name, guard) in spec.guards {
            let (_, render, _, elements) = run_guard_on(&prep, guard);
            let throughput = elements as f64 / render.as_secs_f64().max(1e-9);
            table.row(&[
                spec.name.to_string(),
                mb(prep.input_bytes),
                shape_name.to_string(),
                format!("{:.3}", render.as_secs_f64()),
                elements.to_string(),
                format!("{throughput:.0}"),
            ]);
        }
    }
    table.print();
    println!(
        "\nPaper shape to check: within a dataset, throughput stays roughly steady\n\
         across deep/bushy and small/large target shapes; differences between datasets\n\
         track element text size (larger text content ⇒ slower)."
    );
}

//! Figure 10: cost of a whole-document transformation (`MUTATE site`)
//! vs XMark document size, extended into the out-of-core regime.
//!
//! The original figure stops where the document still fits in memory.
//! This driver sweeps document sizes from in-core up to many multiples
//! of the shred `memory_budget`, generating each document *streamed to
//! a temp file* (never materialised in the heap) and shredding it with
//! [`ShreddedDoc::shred_file_with`] — the external-sort path. A
//! [`CountingAlloc`] global allocator tracks the process heap, and for
//! every document at least `GATE_RATIO`× larger than the budget the run
//! **gates** peak tracked shred memory at `budget + SLACK`, where the
//! slack is a size-independent constant covering the buffer pool and
//! per-column encode transients. Exits nonzero on a gate violation.
//!
//! Flags: `--smoke` shrinks the sweep to the single gated point for CI,
//! `--json` writes `BENCH_PR10.json`, `--scale <f>` multiplies the
//! full-mode document sizes.

use std::io::{BufWriter, Write as _};
use std::time::{Duration, Instant};
use xmorph_bench::alloc::{allocated_bytes, peak_bytes, reset_peak, CountingAlloc};
use xmorph_bench::harness::{BenchStore, StoreKind};
use xmorph_bench::table::{mb, secs, Table};
use xmorph_core::render::{render, RenderOptions};
use xmorph_core::{Guard, ShredOptions, ShreddedDoc};
use xmorph_datagen::XmarkConfig;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Streaming shred budget (full mode). Smoke shrinks it so the gated
/// point stays CI-sized while keeping the same doc/budget ratio.
const BUDGET: usize = 1 << 20;
const SMOKE_BUDGET: usize = 256 * 1024;

/// Allowance on top of the budget: buffer pool pages (the sweep uses a
/// `POOL_PAGES`-frame pool), the reader window, merge-heap heads, and
/// the encode transient of the largest persisted column — the one term
/// that tracks the densest type rather than the budget, which is why
/// the slack is wider than the pool alone would need.
const SLACK: usize = 8 << 20;

/// Buffer pool frames for every store in the sweep — small on purpose,
/// so out-of-core behaviour shows at laptop scale.
const POOL_PAGES: usize = 256;

/// A document this many times larger than the budget is "out of core"
/// and must honour the memory gate.
const GATE_RATIO: usize = 20;

/// Documents up to this size also run the in-memory (whole-string)
/// shred for the side-by-side peak column.
const INMEM_CAP: usize = 16 << 20;

struct SizePoint {
    factor: f64,
    input_bytes: usize,
    stream_shred: Duration,
    stream_peak: usize,
    inmem: Option<(Duration, usize)>,
    compile: Duration,
    render: Duration,
    output_bytes: usize,
    gated: bool,
}

fn measure(factor: f64, budget: usize) -> SizePoint {
    let dir = std::env::temp_dir().join("xmorph-bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let xml_path = dir.join(format!("fig10-{}-{factor}.xml", std::process::id()));
    let cfg = XmarkConfig::with_factor(factor);
    let input_bytes = {
        let file = std::fs::File::create(&xml_path).expect("create xml temp file");
        let mut w = BufWriter::new(file);
        let n = cfg.generate_to(&mut w).expect("generate xmark");
        w.flush().expect("flush xml");
        n as usize
    };

    // Streaming shred from the file: the document never enters the heap.
    let bench = BenchStore::create(StoreKind::TempFile, POOL_PAGES);
    let opts = ShredOptions::builder()
        .persist_columns(true)
        .memory_budget(budget);
    let baseline = allocated_bytes();
    reset_peak();
    let t0 = Instant::now();
    let doc = ShreddedDoc::shred_file_with(&bench.store, &xml_path, &opts).expect("shred file");
    bench.store.flush().expect("flush");
    let stream_shred = t0.elapsed();
    let stream_peak = peak_bytes().saturating_sub(baseline);

    let t1 = Instant::now();
    let guard = Guard::parse("MUTATE site").expect("parse guard");
    let analysis = guard.analyze(&doc).expect("analyze");
    let compile = t1.elapsed();
    let t2 = Instant::now();
    let output = render(&doc, &analysis.target, &RenderOptions::default()).expect("render");
    let render_time = t2.elapsed();
    let output_bytes = output.len();
    drop(output);
    drop(doc);
    drop(bench);

    // In-core comparison point: the whole-string shred the figure
    // originally measured, skipped once documents outgrow the heap.
    let inmem = (input_bytes <= INMEM_CAP).then(|| {
        let xml = std::fs::read_to_string(&xml_path).expect("read xml");
        let bench = BenchStore::create(StoreKind::TempFile, POOL_PAGES);
        let baseline = allocated_bytes();
        reset_peak();
        let t = Instant::now();
        let doc = ShreddedDoc::shred_str(&bench.store, &xml).expect("shred str");
        bench.store.flush().expect("flush");
        let elapsed = t.elapsed();
        let peak = peak_bytes().saturating_sub(baseline);
        drop(doc);
        (elapsed, peak)
    });

    let _ = std::fs::remove_file(&xml_path);
    SizePoint {
        factor,
        input_bytes,
        stream_shred,
        stream_peak,
        inmem,
        compile,
        render: render_time,
        output_bytes,
        gated: input_bytes >= GATE_RATIO * budget,
    }
}

fn render_json(points: &[SizePoint], budget: usize, smoke: bool, pass: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fig10_size\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"budget_bytes\": {budget},\n"));
    out.push_str(&format!("  \"slack_bytes\": {SLACK},\n"));
    out.push_str(&format!("  \"gate_ratio\": {GATE_RATIO},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let (inmem_secs, inmem_peak) = match &p.inmem {
            Some((d, peak)) => (format!("{:.6}", d.as_secs_f64()), peak.to_string()),
            None => ("null".into(), "null".into()),
        };
        out.push_str(&format!(
            "    {{\"factor\": {}, \"input_bytes\": {}, \"stream_shred_secs\": {:.6}, \
             \"stream_peak_bytes\": {}, \"inmem_shred_secs\": {}, \"inmem_peak_bytes\": {}, \
             \"compile_secs\": {:.6}, \"render_secs\": {:.6}, \"output_bytes\": {}, \
             \"gated\": {}}}{}\n",
            p.factor,
            p.input_bytes,
            p.stream_shred.as_secs_f64(),
            p.stream_peak,
            inmem_secs,
            inmem_peak,
            p.compile.as_secs_f64(),
            p.render.as_secs_f64(),
            p.output_bytes,
            p.gated,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"gate\": {{\"checked\": {}, \"pass\": {}}}\n",
        points.iter().filter(|p| p.gated).count(),
        pass
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let scale = xmorph_bench::parse_scale();

    let budget = if smoke { SMOKE_BUDGET } else { BUDGET };
    let factors: Vec<f64> = if smoke {
        // One point, ~21x the smoke budget: the gate fires, CI stays fast.
        vec![0.5]
    } else {
        [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0]
            .iter()
            .map(|f| f * scale)
            .collect()
    };

    println!(
        "Fig. 10 — transformation cost vs data size, out-of-core sweep \
         (XMark, MUTATE site; budget {}, pool {POOL_PAGES} pages, scale {scale})\n",
        mb(budget)
    );
    let mut table = Table::new(&[
        "factor",
        "input MB",
        "stream shred s",
        "stream peak MB",
        "in-mem shred s",
        "in-mem peak MB",
        "compile s",
        "render s",
        "output MB",
        "gated",
    ]);

    let mut points = Vec::new();
    for &factor in &factors {
        let p = measure(factor, budget);
        table.row(&[
            format!("{factor:.2}"),
            mb(p.input_bytes),
            secs(p.stream_shred),
            mb(p.stream_peak),
            p.inmem.map(|(d, _)| secs(d)).unwrap_or_else(|| "-".into()),
            p.inmem.map(|(_, b)| mb(b)).unwrap_or_else(|| "-".into()),
            secs(p.compile),
            secs(p.render),
            mb(p.output_bytes),
            if p.gated { "yes".into() } else { "no".into() },
        ]);
        points.push(p);
    }
    table.print();

    let mut failed = false;
    for p in points.iter().filter(|p| p.gated) {
        if p.stream_peak > budget + SLACK {
            eprintln!(
                "MEMORY GATE VIOLATED: factor {:.2} ({} input, {}x budget) peaked at {} \
                 tracked bytes > budget {} + slack {}",
                p.factor,
                mb(p.input_bytes),
                p.input_bytes / budget,
                mb(p.stream_peak),
                mb(budget),
                mb(SLACK)
            );
            failed = true;
        }
    }
    let checked = points.iter().filter(|p| p.gated).count();
    if checked == 0 {
        eprintln!("MEMORY GATE VIOLATED: no sweep point reached {GATE_RATIO}x the budget");
        failed = true;
    } else if !failed {
        println!(
            "\nmemory gate: {checked} out-of-core point(s) stayed under {} + {} slack",
            mb(budget),
            mb(SLACK)
        );
    }

    if json {
        let path = "BENCH_PR10.json";
        std::fs::write(path, render_json(&points, budget, smoke, !failed)).expect("write json");
        println!("wrote {path}");
    }

    println!(
        "\nPaper shape to check: render grows linearly with size; compile is a tiny,\n\
         size-independent fraction; streaming shred peak memory is flat in document\n\
         size (bounded by the budget) while the in-memory shred's peak tracks the\n\
         document."
    );
    if failed {
        std::process::exit(1);
    }
}

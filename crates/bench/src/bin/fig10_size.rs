//! Figure 10: cost of a whole-document transformation (`MUTATE site`)
//! vs XMark document size, against the eXist-style baseline's
//! best-case dump, plus the per-factor shred times the paper reports in
//! the surrounding text.
//!
//! Default scale keeps factor 0.1 ≈ 1.1 MB (one tenth of the paper's
//! absolute sizes); pass `--scale 10` for paper-sized documents.

use xmorph_bench::harness::{exist_dump, run_morph, StoreKind};
use xmorph_bench::table::{mb, secs, Table};
use xmorph_datagen::XmarkConfig;

fn main() {
    let scale = xmorph_bench::parse_scale();
    let factors = [0.1, 0.2, 0.3, 0.4, 0.5];
    println!("Fig. 10 — transformation cost vs data size (XMark, MUTATE site; scale {scale})\n");
    let mut table = Table::new(&[
        "factor",
        "input MB",
        "types",
        "shred s",
        "xmorph compile s",
        "xmorph render s",
        "exist dump s",
        "output MB",
    ]);
    for &factor in &factors {
        let xml = XmarkConfig::with_factor(factor * scale).generate();
        let run = run_morph(&xml, "MUTATE site", StoreKind::TempFile);
        let (_, exist_secs, _) = exist_dump(&xml, "site", StoreKind::TempFile);
        table.row(&[
            format!("{factor:.1}"),
            mb(run.input_bytes),
            run.types.to_string(),
            secs(run.shred),
            secs(run.compile),
            secs(run.render),
            secs(exist_secs),
            mb(run.output_bytes),
        ]);
    }
    table.print();
    println!(
        "\nPaper shape to check: render grows linearly with size; compile is a tiny,\n\
         size-independent fraction (paper: ~20 ms, 0.002%); the baseline dump is faster\n\
         than a full transformation (it is eXist's best case)."
    );
}

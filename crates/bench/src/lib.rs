//! # xmorph-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! XMorph 2.0 evaluation (§IX). Each figure has a binary in `src/bin`
//! printing the paper's rows/series, and criterion benches in `benches/`
//! reuse the same drivers at reduced scale:
//!
//! | Regenerator | Paper artifact |
//! |---|---|
//! | `table1_pathcard` | Table I — path cardinality of every type pair |
//! | `fig10_size` | Fig. 10 — transform cost vs XMark size (+ shred times) |
//! | `fig11_block_io` | Fig. 11 — cumulative block I/O over a run |
//! | `fig12_wait` | Fig. 12 — I/O-wait percentage over a run |
//! | `fig13_memory` | Fig. 13 — memory in use over a run |
//! | `fig14_dblp` | Fig. 14 — XMorph vs baseline on DBLP slices |
//! | `fig15_shape` | Fig. 15 — throughput vs target shape |
//! | `fig16_ops` | Fig. 16 — cost of each XMorph operation |
//!
//! Scales default to laptop-friendly sizes; every binary accepts
//! `--scale <f>` to multiply document sizes (1.0 ≈ the sizes used in
//! EXPERIMENTS.md, larger values approach the paper's).

pub mod alloc;
pub mod harness;
pub mod sampler;
pub mod table;

/// Parse `--scale <f>` (default 1.0) from `std::env::args`. Unknown
/// flags are ignored.
pub fn parse_scale() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--scale" {
            if let Ok(v) = pair[1].parse::<f64>() {
                return v;
            }
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn parse_scale_defaults_to_one() {
        assert_eq!(super::parse_scale(), 1.0);
    }
}

//! Criterion version of Fig. 16: each operation composed with the same
//! MORPH must cost effectively the same.

use criterion::{criterion_group, criterion_main, Criterion};
use xmorph_bench::harness::{prepare, run_guard_on, StoreKind};
use xmorph_datagen::XmarkConfig;

const BASE: &str = "MORPH person [ name emailaddress ]";

fn bench_fig16(c: &mut Criterion) {
    let xml = XmarkConfig::with_factor(0.03).generate();
    let prep = prepare(&xml, StoreKind::Memory);
    let mut group = c.benchmark_group("fig16_ops");
    group.sample_size(10);
    let ops: Vec<(&str, String)> = vec![
        ("morph", BASE.to_string()),
        ("mutate", format!("{BASE} | MUTATE emailaddress [ name ]")),
        ("translate", format!("{BASE} | TRANSLATE person -> user")),
        (
            "new",
            format!("{BASE} | MUTATE (NEW contact) [ emailaddress ]"),
        ),
        ("clone", format!("{BASE} | MUTATE person [ CLONE name ]")),
        ("drop", format!("{BASE} | MUTATE (DROP emailaddress)")),
    ];
    for (name, guard) in &ops {
        group.bench_function(*name, |b| b.iter(|| run_guard_on(&prep, guard)));
    }
    group.finish();
}

criterion_group!(benches, bench_fig16);
criterion_main!(benches);

//! Criterion version of Fig. 14: the three DBLP guards vs the baseline
//! queries, one slice size.

use criterion::{criterion_group, criterion_main, Criterion};
use xmorph_bench::harness::{exist_query, prepare, run_guard_on, StoreKind};
use xmorph_datagen::DblpConfig;

fn bench_fig14(c: &mut Criterion) {
    let xml = DblpConfig::with_approx_bytes(400_000).generate();
    let prep = prepare(&xml, StoreKind::Memory);
    let mut group = c.benchmark_group("fig14_dblp");
    group.sample_size(10);
    for (name, guard) in [
        ("small", "MORPH author"),
        ("medium", "MORPH author [title [year]]"),
        ("large", "MORPH dblp [author [title [year [pages] url]]]"),
    ] {
        group.bench_function(format!("xmorph_{name}"), |b| {
            b.iter(|| run_guard_on(&prep, guard))
        });
    }
    group.bench_function("baseline_small", |b| {
        b.iter(|| {
            exist_query(
                &xml,
                r#"for $a in doc("doc.xml")/dblp/*/author return <author>{string($a)}</author>"#,
                StoreKind::Memory,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);

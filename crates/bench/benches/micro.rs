//! Micro-benchmarks of the building blocks: XML parsing, shredding,
//! B+tree operations, Dewey closest joins, guard compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xmorph_core::{Guard, ShreddedDoc};
use xmorph_datagen::{DblpConfig, XmarkConfig};
use xmorph_pagestore::Store;
use xmorph_xml::dom::Document;
use xmorph_xml::reader::{XmlEvent, XmlReader};

fn bench_xml(c: &mut Criterion) {
    let xml = DblpConfig::with_approx_bytes(200_000).generate();
    let mut group = c.benchmark_group("micro_xml");
    group.sample_size(20);
    group.bench_function("pull_parse_200kb", |b| {
        b.iter(|| {
            let mut r = XmlReader::new(&xml);
            let mut n = 0usize;
            loop {
                match r.next_event().unwrap() {
                    XmlEvent::Eof => break,
                    _ => n += 1,
                }
            }
            black_box(n)
        })
    });
    group.bench_function("dom_parse_200kb", |b| {
        b.iter(|| black_box(Document::parse_str(&xml).unwrap().node_count()))
    });
    let doc = Document::parse_str(&xml).unwrap();
    group.bench_function("serialize_200kb", |b| {
        b.iter(|| black_box(doc.serialize_compact().len()))
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_btree");
    group.sample_size(20);
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let store = Store::in_memory();
            let tree = store.open_tree("t").unwrap();
            for i in 0..10_000u32 {
                tree.insert(&i.to_be_bytes(), b"value-payload").unwrap();
            }
            black_box(store.page_count())
        })
    });
    let store = Store::in_memory();
    let tree = store.open_tree("t").unwrap();
    for i in 0..10_000u32 {
        tree.insert(&i.to_be_bytes(), b"value-payload").unwrap();
    }
    group.bench_function("point_get_x1000", |b| {
        b.iter(|| {
            for i in (0..10_000u32).step_by(10) {
                black_box(tree.get(&i.to_be_bytes()).unwrap());
            }
        })
    });
    group.bench_function("full_scan_10k", |b| {
        b.iter(|| black_box(tree.range(..).count()))
    });
    group.finish();
}

fn bench_core(c: &mut Criterion) {
    let xml = XmarkConfig::with_factor(0.01).generate();
    let mut group = c.benchmark_group("micro_core");
    group.sample_size(10);
    group.bench_function("shred_xmark_0.01", |b| {
        b.iter(|| {
            let store = Store::in_memory();
            black_box(ShreddedDoc::shred_str(&store, &xml).unwrap().types().len())
        })
    });
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, &xml).unwrap();
    group.bench_function("guard_parse", |b| {
        b.iter(|| {
            black_box(
                Guard::parse("MORPH person [ name emailaddress profile [ interest ] ]").unwrap(),
            )
        })
    });
    let guard = Guard::parse("MORPH person [ name emailaddress ]").unwrap();
    group.bench_function("guard_analyze", |b| {
        b.iter(|| black_box(guard.analyze(&doc).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_xml, bench_btree, bench_core);
criterion_main!(benches);

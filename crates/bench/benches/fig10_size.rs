//! Criterion version of Fig. 10: `MUTATE site` cost vs XMark size,
//! against the baseline dump, at reduced factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmorph_bench::harness::{exist_dump, prepare, run_guard_on, StoreKind};
use xmorph_datagen::XmarkConfig;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_mutate_site");
    group.sample_size(10);
    for factor in [0.01, 0.02, 0.03] {
        let xml = XmarkConfig::with_factor(factor).generate();
        let prep = prepare(&xml, StoreKind::Memory);
        group.bench_with_input(
            BenchmarkId::new("xmorph_render", factor),
            &factor,
            |b, _| b.iter(|| run_guard_on(&prep, "MUTATE site")),
        );
        group.bench_with_input(BenchmarkId::new("exist_dump", factor), &factor, |b, _| {
            b.iter(|| exist_dump(&xml, "site", StoreKind::Memory))
        });
    }
    group.finish();
}

fn bench_compile_only(c: &mut Criterion) {
    // The compile phase must be (nearly) size-independent.
    let mut group = c.benchmark_group("fig10_compile");
    group.sample_size(20);
    for factor in [0.01, 0.03] {
        let xml = XmarkConfig::with_factor(factor).generate();
        let prep = prepare(&xml, StoreKind::Memory);
        group.bench_with_input(BenchmarkId::new("analyze", factor), &factor, |b, _| {
            b.iter(|| {
                let guard = xmorph_core::Guard::parse("MUTATE site").unwrap();
                guard.analyze(&prep.doc).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10, bench_compile_only);
criterion_main!(benches);

//! Criterion version of Fig. 15: deep vs bushy target shapes over the
//! three datasets — render throughput should be shape-independent.

use criterion::{criterion_group, criterion_main, Criterion};
use xmorph_bench::harness::{prepare, run_guard_on, StoreKind};
use xmorph_datagen::{DblpConfig, NasaConfig, XmarkConfig};

fn bench_fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_shape");
    group.sample_size(10);

    let nasa = NasaConfig::with_approx_bytes(300_000).generate();
    let nasa_prep = prepare(&nasa, StoreKind::Memory);
    group.bench_function("nasa_deep", |b| {
        b.iter(|| {
            run_guard_on(
                &nasa_prep,
                "MORPH dataset [ reference [ source [ other ] ] ]",
            )
        })
    });
    group.bench_function("nasa_bushy", |b| {
        b.iter(|| run_guard_on(&nasa_prep, "MORPH dataset [ title identifier keywords ]"))
    });

    let dblp = DblpConfig::with_approx_bytes(300_000).generate();
    let dblp_prep = prepare(&dblp, StoreKind::Memory);
    group.bench_function("dblp_deep", |b| {
        b.iter(|| run_guard_on(&dblp_prep, "MORPH author [ title [ year ] ]"))
    });
    group.bench_function("dblp_bushy", |b| {
        b.iter(|| run_guard_on(&dblp_prep, "MORPH article [ author title year ]"))
    });

    let xmark = XmarkConfig::with_factor(0.02).generate();
    let xmark_prep = prepare(&xmark, StoreKind::Memory);
    group.bench_function("xmark_deep", |b| {
        b.iter(|| run_guard_on(&xmark_prep, "MORPH people [ person [ address [ city ] ] ]"))
    });
    group.bench_function("xmark_bushy", |b| {
        b.iter(|| run_guard_on(&xmark_prep, "MORPH item [ name location quantity ]"))
    });

    group.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);

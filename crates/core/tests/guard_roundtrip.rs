//! Property test: every guard AST the grammar can express survives a
//! `Display → parse` round trip unchanged — printer and parser agree on
//! the whole language.

use proptest::prelude::*;
use xmorph_core::lang::ast::{Ast, CastMode, Head, Item, Pattern};
use xmorph_core::lang::parse;

fn label() -> impl Strategy<Value = String> {
    // Labels exercising bare, dotted, and attribute forms.
    prop_oneof!["[a-z]{1,6}", "[a-z]{1,4}\\.[a-z]{1,4}", "@[a-z]{1,5}",]
}

fn item(depth: u32) -> BoxedStrategy<Item> {
    let head = if depth == 0 {
        prop_oneof![label().prop_map(Head::Label), label().prop_map(Head::New),].boxed()
    } else {
        // DROP/RESTRICT/CLONE take a single item in the surface grammar.
        let single = item(depth - 1).prop_map(Pattern::single);
        prop_oneof![
            4 => label().prop_map(Head::Label),
            1 => label().prop_map(Head::New),
            1 => single.clone().prop_map(Head::Drop),
            1 => single.clone().prop_map(Head::Restrict),
            1 => single.prop_map(Head::Clone),
        ]
        .boxed()
    };
    let children = if depth == 0 {
        Just(Pattern::default()).boxed()
    } else {
        prop_oneof![
            2 => Just(Pattern::default()),
            1 => pattern(depth - 1),
        ]
        .boxed()
    };
    (head, children, any::<bool>(), any::<bool>(), any::<bool>())
        .prop_map(|(head, children, inc_c, inc_d, pinned)| Item {
            head,
            children,
            include_children: inc_c,
            include_descendants: inc_d,
            pinned,
        })
        .boxed()
}

fn pattern(depth: u32) -> BoxedStrategy<Pattern> {
    prop::collection::vec(item(depth), 1..4)
        .prop_map(|items| Pattern { items })
        .boxed()
}

fn ast(depth: u32) -> BoxedStrategy<Ast> {
    let core = prop_oneof![
        3 => pattern(2).prop_map(Ast::Morph),
        2 => pattern(2).prop_map(Ast::Mutate),
        1 => prop::collection::vec((label(), label()), 1..3).prop_map(Ast::Translate),
    ];
    if depth == 0 {
        core.boxed()
    } else {
        let inner = ast(depth - 1);
        prop_oneof![
            4 => core,
            1 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ast::Compose(Box::new(a), Box::new(b))),
            1 => inner.clone().prop_map(|g| Ast::Cast(CastMode::Weak, Box::new(g))),
            1 => inner.clone().prop_map(|g| Ast::Cast(CastMode::Narrowing, Box::new(g))),
            1 => inner.clone().prop_map(|g| Ast::Cast(CastMode::Widening, Box::new(g))),
            1 => inner.prop_map(|g| Ast::TypeFill(Box::new(g))),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_round_trip(guard in ast(2)) {
        let printed = guard.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed guard failed to parse: {printed}\n{e}"));
        // Display again: printing must be a fixpoint (the reparsed tree
        // may differ in formatting-irrelevant ways, but its printing
        // must match).
        prop_assert_eq!(reparsed.to_string(), printed);
    }
}

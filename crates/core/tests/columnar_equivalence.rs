//! The columnar read path must agree *exactly* with the B+tree-backed
//! reference implementations it replaced, on random documents:
//!
//! * `scan_type` (column walk) ≡ `scan_type_btree` (prefix scan);
//! * `type_distance_exact` (columnar sorted-merge co-occurrence) ≡
//!   `type_distance_btree` (key-scan sorted merge);
//! * `closest_children` (two binary searches on the column) ≡
//!   `closest_children_btree` (B+tree prefix probe), and
//!   `has_closest_child` ≡ non-emptiness of that group;
//! * a bulk-loaded shred and an incremental shred describe the same
//!   document;
//! * a cold reopen serving *persisted column segments* (mapped or
//!   copied) is byte-identical — scans, joins, and rendered guard
//!   output — to one that rebuilds every column from the B+tree.

//! * a document mutated in place (`insert_subtree` /
//!   `insert_subtree_before` / `delete_subtree` / `update_text`) is
//!   equivalent to a *fresh shred* of the correspondingly mutated XML —
//!   and byte-identical at the column level when the operation mix
//!   preserves dense Dewey labels (updates and appends only).

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use xmorph_core::{Guard, OpenOptions, ShredOptions, ShreddedDoc, TypeId};
use xmorph_pagestore::Store;

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("xmorph-coldopen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.db", SEQ.fetch_add(1, Ordering::Relaxed)))
}

/// Random small library documents — same family as the theorem
/// validation suite: variable author counts, optional publisher and
/// award children, so type pairs cover ancestor/descendant, sibling,
/// cousin, and never-co-occurring relationships.
fn random_library() -> impl Strategy<Value = String> {
    let book = (0usize..3, proptest::bool::ANY, proptest::bool::ANY);
    proptest::collection::vec(book, 1..6).prop_map(|books| {
        let mut s = String::from("<lib>");
        for (i, (authors, has_pub, has_award)) in books.iter().enumerate() {
            s.push_str("<book>");
            s.push_str(&format!("<title>T{i}</title>"));
            for a in 0..*authors {
                s.push_str(&format!("<author><name>A{a}</name></author>"));
            }
            if *has_pub {
                s.push_str(&format!("<publisher><name>P{}</name></publisher>", i % 2));
            }
            if *has_award {
                s.push_str("<award>prize</award>");
            }
            s.push_str("</book>");
        }
        s.push_str("</lib>");
        s
    })
}

fn shred(xml: &str) -> (Store, ShreddedDoc) {
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
    (store, doc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn columnar_operations_match_btree_reference(xml in random_library()) {
        let (_s, doc) = shred(&xml);
        let types: Vec<TypeId> = doc.types().ids().collect();
        for &t in &types {
            prop_assert_eq!(doc.scan_type(t), doc.scan_type_btree(t));
        }
        for &a in &types {
            for &b in &types {
                prop_assert_eq!(
                    doc.type_distance_exact(a, b),
                    doc.type_distance_btree(a, b),
                    "typeDistance({:?}, {:?})", a, b
                );
                for (parent, _) in doc.scan_type(a) {
                    let columnar = doc.closest_children(&parent, a, b);
                    let btree = doc.closest_children_btree(&parent, a, b);
                    prop_assert_eq!(
                        doc.has_closest_child(&parent, a, b),
                        !btree.is_empty(),
                        "existence probe at {}", parent
                    );
                    prop_assert_eq!(columnar, btree, "join at {}", parent);
                }
            }
        }
    }

    #[test]
    fn bulk_and_incremental_shreds_describe_the_same_document(xml in random_library()) {
        let (_bs, bulk) = shred(&xml);
        let inc_store = Store::in_memory();
        let incremental = ShreddedDoc::shred_str_with(
            &inc_store,
            &xml,
            &ShredOptions::builder().bulk_load(false),
        )
        .unwrap();
        prop_assert_eq!(bulk.types().len(), incremental.types().len());
        let types: Vec<TypeId> = bulk.types().ids().collect();
        for &t in &types {
            prop_assert_eq!(bulk.scan_type(t), incremental.scan_type(t));
            prop_assert_eq!(bulk.instance_count(t), incremental.instance_count(t));
        }
        for &a in &types {
            for &b in &types {
                prop_assert_eq!(
                    bulk.type_distance_exact(a, b),
                    incremental.type_distance_exact(a, b)
                );
            }
        }
    }

    #[test]
    fn cold_reopen_with_persisted_columns_is_byte_identical(xml in random_library()) {
        // Shred with column persistence into a file store, close, then
        // reopen twice: once serving persisted segments (mmap
        // preferred), once forced to rebuild lazily from the B+tree.
        let path = temp_path("prop");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, &xml).unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let persisted = ShreddedDoc::open(&store).unwrap();
        let rebuilt =
            ShreddedDoc::open_with(&store, &OpenOptions::builder().persisted_columns(false))
                .unwrap();
        prop_assert!(persisted.segment_fallbacks().is_empty(),
            "persisted segments must validate: {:?}", persisted.segment_fallbacks());

        let types: Vec<TypeId> = persisted.types().ids().collect();
        for &t in &types {
            prop_assert_eq!(persisted.scan_type(t), rebuilt.scan_type(t));
        }
        for &a in &types {
            for &b in &types {
                prop_assert_eq!(
                    persisted.type_distance_exact(a, b),
                    rebuilt.type_distance_exact(a, b)
                );
                for (parent, _) in persisted.scan_type(a) {
                    prop_assert_eq!(
                        persisted.closest_children(&parent, a, b),
                        rebuilt.closest_children(&parent, a, b),
                        "join at {}", parent
                    );
                }
            }
        }
        // Rendered guard output — the end-to-end byte-identity check.
        // Some random documents lack authors/publishers, so a guard may
        // legitimately fail type-checking; both sides must then agree
        // on the error too.
        for guard in [
            "MORPH title",
            "MORPH author [ name ]",
            "MORPH book [ title author [ name ] ]",
            "CAST MORPH publisher [ title ]",
        ] {
            let g = Guard::parse(guard).unwrap();
            let a = g.apply(&persisted).map(|o| o.xml);
            let b = g.apply(&rebuilt).map(|o| o.xml);
            prop_assert_eq!(
                format!("{:?}", a),
                format!("{:?}", b),
                "guard {}", guard
            );
        }
        drop((persisted, rebuilt, store));
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------
// Mutation equivalence: a document mutated in place must describe the
// same collection as a fresh shred of the mutated XML. The reference is
// a "twin" document model — a plain tree mutated alongside the
// ShreddedDoc, then serialized and re-shredded from scratch.
// ---------------------------------------------------------------------

/// Reference tree: element name, attributes, *concatenated* direct text
/// (the shredder's view — placement of text among children does not
/// survive shredding), and element children in document order.
#[derive(Debug, Clone)]
struct TwinNode {
    name: String,
    attrs: Vec<(String, String)>,
    text: String,
    children: Vec<TwinNode>,
}

impl TwinNode {
    fn parse(xml: &str) -> TwinNode {
        use xmorph_xml::reader::{XmlEvent, XmlReader};
        let mut reader = XmlReader::new(xml);
        let mut stack: Vec<TwinNode> = Vec::new();
        let mut root = None;
        loop {
            match reader.next_event().expect("well-formed XML") {
                XmlEvent::StartElement { name, attrs } => stack.push(TwinNode {
                    name,
                    attrs,
                    text: String::new(),
                    children: Vec::new(),
                }),
                XmlEvent::Text(t) => {
                    if let Some(f) = stack.last_mut() {
                        f.text.push_str(&t);
                    }
                }
                XmlEvent::EndElement { .. } => {
                    let mut done = stack.pop().expect("balanced");
                    done.text = done.text.trim().to_string();
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(done),
                        None => root = Some(done),
                    }
                }
                XmlEvent::Eof => break,
                _ => {}
            }
        }
        root.expect("document has a root")
    }

    fn serialize(&self) -> String {
        let mut w = xmorph_xml::writer::StreamWriter::with_capacity(1 << 16);
        self.write(&mut w);
        w.finish()
    }

    fn write(&self, w: &mut xmorph_xml::writer::StreamWriter) {
        w.start(&self.name);
        for (k, v) in &self.attrs {
            w.attr(k, v);
        }
        w.text(&self.text);
        for c in &self.children {
            c.write(w);
        }
        w.end();
    }

    /// Child-index trail to the `n`-th instance (document order) of the
    /// element whose root path is `path`.
    fn locate(&self, path: &[String], depth: usize, n: &mut usize, trail: &mut Vec<usize>) -> bool {
        if self.name != path[depth] {
            return false;
        }
        if depth + 1 == path.len() {
            if *n == 0 {
                return true;
            }
            *n -= 1;
            return false;
        }
        for (i, c) in self.children.iter().enumerate() {
            trail.push(i);
            if c.locate(path, depth + 1, n, trail) {
                return true;
            }
            trail.pop();
        }
        false
    }

    fn node_mut(&mut self, trail: &[usize]) -> &mut TwinNode {
        let mut cur = self;
        for &i in trail {
            cur = &mut cur.children[i];
        }
        cur
    }
}

/// One XMark factor-0.01 base document, generated once per process.
fn xmark_base() -> &'static str {
    static XML: OnceLock<String> = OnceLock::new();
    XML.get_or_init(|| xmorph_datagen::XmarkConfig::with_factor(0.01).generate())
}

const FRAGMENTS: &[&str] = &[
    r#"<note priority="high">check</note>"#,
    "<emph>hot</emph>",
    "<audit><who>qa</who><when>2002</when></audit>",
    "<status>open</status>",
];

const NEW_TEXTS: &[&str] = &["revised", "  padded  ", "", "Lorem ipsum dolor"];

#[derive(Debug, Clone, Copy, PartialEq)]
enum OpKind {
    Update,
    Append,
    Delete,
    InsertBefore,
}

/// `(kind, type selector, instance selector)` — the selectors pick
/// modulo whatever is live when the op applies, so every generated op
/// resolves to a real target.
type Op = (OpKind, usize, usize);

fn ops_strategy(kinds: &'static [OpKind]) -> impl Strategy<Value = Vec<Op>> {
    let op =
        (0..kinds.len(), 0usize..1 << 30, 0usize..1 << 30).prop_map(|(k, a, b)| (kinds[k], a, b));
    proptest::collection::vec(op, 1..8)
}

/// Element types with live instances; `Delete`/`InsertBefore` also
/// exclude the root (those mutations are rejected on it).
fn live_targets(doc: &ShreddedDoc, allow_root: bool) -> Vec<TypeId> {
    doc.types()
        .ids()
        .filter(|&t| {
            let dotted = doc.types().dotted(t);
            doc.instance_count(t) > 0
                && !dotted.contains('@')
                && (allow_root || dotted.contains('.'))
        })
        .collect()
}

/// Apply one mutation to both the ShreddedDoc and its twin. The target
/// is addressed positionally — the `i`-th instance of a type path — so
/// both sides resolve it independently.
fn apply_op(doc: &mut ShreddedDoc, twin: &mut TwinNode, op: &Op) {
    let (kind, type_sel, inst_sel) = op;
    let targets = live_targets(doc, *kind == OpKind::Update || *kind == OpKind::Append);
    if targets.is_empty() {
        return;
    }
    let t = targets[type_sel % targets.len()];
    let path: Vec<String> = doc
        .types()
        .dotted(t)
        .split('.')
        .map(str::to_string)
        .collect();
    let rows = doc.scan_type(t);
    let idx = inst_sel % rows.len();
    let dewey = rows[idx].0.clone();
    let mut n = idx;
    let mut trail = Vec::new();
    assert!(
        twin.locate(&path, 0, &mut n, &mut trail),
        "twin lost instance {idx} of {}",
        path.join(".")
    );
    match kind {
        OpKind::Update => {
            let text = NEW_TEXTS[inst_sel % NEW_TEXTS.len()];
            doc.update_text(&dewey, text).unwrap();
            twin.node_mut(&trail).text = text.trim().to_string();
        }
        OpKind::Append => {
            let frag = FRAGMENTS[inst_sel % FRAGMENTS.len()];
            doc.insert_subtree(&dewey, frag).unwrap();
            twin.node_mut(&trail).children.push(TwinNode::parse(frag));
        }
        OpKind::Delete => {
            doc.delete_subtree(&dewey).unwrap();
            let (last, parent_trail) = trail.split_last().expect("non-root target");
            twin.node_mut(parent_trail).children.remove(*last);
        }
        OpKind::InsertBefore => {
            let frag = FRAGMENTS[inst_sel % FRAGMENTS.len()];
            doc.insert_subtree_before(&dewey, frag).unwrap();
            let (last, parent_trail) = trail.split_last().expect("non-root target");
            twin.node_mut(parent_trail)
                .children
                .insert(*last, TwinNode::parse(frag));
        }
    }
}

/// The behavioural comparison: every type path agrees on instance count
/// and document-ordered text sequence, the mutated document's columns
/// agree with its own B+tree, its conservative cards bound the fresh
/// exact ones, and a cast guard renders byte-identically.
fn assert_equivalent(doc: &ShreddedDoc, fresh: &ShreddedDoc) {
    for ft in fresh.types().ids() {
        let dotted = fresh.types().dotted(ft);
        let path: Vec<String> = dotted.split('.').map(str::to_string).collect();
        let dt = doc
            .types()
            .lookup(&path)
            .unwrap_or_else(|| panic!("mutated doc lost type {dotted}"));
        assert_eq!(
            doc.instance_count(dt),
            fresh.instance_count(ft),
            "count of {dotted}"
        );
        let doc_texts: Vec<String> = doc.scan_type(dt).into_iter().map(|(_, t)| t).collect();
        let fresh_texts: Vec<String> = fresh.scan_type(ft).into_iter().map(|(_, t)| t).collect();
        assert_eq!(doc_texts, fresh_texts, "texts of {dotted}");
        let (dc, fc) = (doc.shape().card(dt), fresh.shape().card(ft));
        assert!(
            dc.min <= fc.min && dc.max >= fc.max,
            "card of {dotted}: maintained {dc} must contain exact {fc}"
        );
    }
    for dt in doc.types().ids() {
        let dotted = doc.types().dotted(dt);
        let path: Vec<String> = dotted.split('.').map(str::to_string).collect();
        if fresh.types().lookup(&path).is_none() {
            assert_eq!(
                doc.instance_count(dt),
                0,
                "type {dotted} absent from fresh shred but live"
            );
        }
        assert_eq!(
            doc.scan_type(dt),
            doc.scan_type_btree(dt),
            "column vs btree for {dotted}"
        );
    }
    for guard in ["CAST MORPH person [ name ]", "CAST MORPH item [ name ]"] {
        let g = Guard::parse(guard).unwrap();
        assert_eq!(
            g.apply(doc).map(|o| o.xml).map_err(|e| e.to_string()),
            g.apply(fresh).map(|o| o.xml).map_err(|e| e.to_string()),
            "guard {guard}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mutated_doc_equals_fresh_shred_of_mutated_xml(
        ops in ops_strategy(&[OpKind::Update, OpKind::Append, OpKind::Delete, OpKind::InsertBefore])
    ) {
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, xmark_base()).unwrap();
        let mut twin = TwinNode::parse(xmark_base());
        for op in &ops {
            apply_op(&mut doc, &mut twin, op);
        }
        let (_fs, fresh) = shred(&twin.serialize());
        assert_equivalent(&doc, &fresh);
    }

    #[test]
    fn update_and_append_mutations_are_column_byte_identical(
        ops in ops_strategy(&[OpKind::Update, OpKind::Append])
    ) {
        // Updates never move labels and appends allocate densely on a
        // freshly shredded document, so the mutated columns must be
        // *byte-identical* to a fresh shred's — same Dewey components,
        // same offsets, same text arena — type by type path.
        let store = Store::in_memory();
        let mut doc = ShreddedDoc::shred_str(&store, xmark_base()).unwrap();
        let mut twin = TwinNode::parse(xmark_base());
        for op in &ops {
            apply_op(&mut doc, &mut twin, op);
        }
        let (_fs, fresh) = shred(&twin.serialize());
        assert_equivalent(&doc, &fresh);
        for ft in fresh.types().ids() {
            let dotted = fresh.types().dotted(ft);
            let path: Vec<String> = dotted.split('.').map(str::to_string).collect();
            let dt = doc.types().lookup(&path).unwrap();
            prop_assert!(
                *doc.column(dt) == *fresh.column(ft),
                "column bytes diverge for {}", dotted
            );
        }
    }
}

// ---------------------------------------------------------------------
// Column wire formats and the batched closest-join kernel.
// ---------------------------------------------------------------------

/// Short texts covering the empty string and multi-byte UTF-8, so the
/// roundtrip exercises arena offsets on non-trivial char boundaries.
const ARENA_TEXTS: &[&str] = &["", "a", "bc", "é", "€x", "déjà vu"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn colseg_v2_roundtrips_arbitrary_sorted_rows(
        width_sel in 0usize..5,
        raw in proptest::collection::vec(
            (proptest::collection::vec(0u32..1 << 20, 6), 0usize..1 << 30),
            0..48
        ),
    ) {
        use xmorph_core::colseg_testing::{decode_column, encode_column_v1, encode_column_v2};
        let width = width_sel + 1;
        let mut rows: Vec<(Vec<u32>, &str)> = raw
            .iter()
            .map(|(r, t)| (r[..width].to_vec(), ARENA_TEXTS[t % ARENA_TEXTS.len()]))
            .collect();
        rows.sort();
        let mut comps = Vec::new();
        let mut offsets = vec![0u32];
        let mut texts = String::new();
        for (r, t) in &rows {
            comps.extend_from_slice(r);
            texts.push_str(t);
            offsets.push(texts.len() as u32);
        }
        let generation = 42u64;
        // Both wire formats decode back to exactly the arrays encoded.
        let v2 = encode_column_v2(width, &comps, &offsets, &texts, generation);
        let (c2, o2, t2) = decode_column(&v2, width, generation).expect("v2 roundtrip");
        prop_assert_eq!(&c2, &comps);
        prop_assert_eq!(&o2, &offsets);
        prop_assert_eq!(&t2, &texts);
        let v1 = encode_column_v1(width, &comps, &offsets, &texts, generation);
        let (c1, o1, t1) = decode_column(&v1, width, generation).expect("v1 roundtrip");
        prop_assert_eq!(&c1, &comps);
        prop_assert_eq!(&o1, &offsets);
        prop_assert_eq!(&t1, &texts);
        // A stale generation or a damaged payload is an error, not a
        // panic or a wrong answer.
        prop_assert!(decode_column(&v2, width, generation + 1).is_err());
        let mut bad = v2.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        prop_assert!(decode_column(&bad, width, generation).is_err());
    }
}

/// The per-dataset batch check: on every generated corpus, batched
/// probes must agree elementwise with per-parent probes for every type
/// pair among the densest types (densest = most parents, i.e. the
/// probes the batch kernel actually amortizes).
fn assert_batch_matches_scalar(doc: &ShreddedDoc, label: &str) {
    let mut types: Vec<TypeId> = doc
        .types()
        .ids()
        .filter(|&t| doc.instance_count(t) > 0)
        .collect();
    types.sort_by_key(|&t| std::cmp::Reverse(doc.instance_count(t)));
    types.truncate(12);
    let mut related = 0usize;
    for &a in &types {
        let parents: Vec<_> = doc.scan_type(a).into_iter().map(|(d, _)| d).collect();
        for &b in &types {
            let Some((col, ranges)) = doc.closest_children_batch(&parents, a, b) else {
                for p in &parents {
                    assert!(
                        doc.closest_group(p, a, b).is_none(),
                        "{label}: scalar finds a group batch denies at {p}"
                    );
                }
                continue;
            };
            related += 1;
            assert_eq!(ranges.len(), parents.len());
            for (p, r) in parents.iter().zip(&ranges) {
                let (scol, want) = doc.closest_group(p, a, b).unwrap();
                assert_eq!(r.clone(), want, "{label}: group at {p} for {a:?}->{b:?}");
                assert_eq!(*col, *scol, "{label}: column identity for {a:?}->{b:?}");
                // And the materialized form agrees with the reference.
                let materialized: Vec<_> = r
                    .clone()
                    .map(|i| (col.dewey(i), col.text(i).to_string()))
                    .collect();
                assert_eq!(
                    materialized,
                    doc.closest_children(p, a, b),
                    "{label}: children at {p}"
                );
            }
        }
    }
    assert!(related > 0, "{label}: no related type pairs exercised");
}

#[test]
fn batched_probes_match_scalar_on_xmark_dblp_nasa() {
    for (label, xml) in [
        ("xmark", xmark_base().to_string()),
        (
            "dblp",
            xmorph_datagen::DblpConfig::with_approx_bytes(120_000).generate(),
        ),
        (
            "nasa",
            xmorph_datagen::NasaConfig::with_approx_bytes(120_000).generate(),
        ),
    ] {
        let (_s, doc) = shred(&xml);
        assert_batch_matches_scalar(&doc, label);
    }
}

#[test]
fn v1_segments_still_open_byte_identically() {
    // A store persisted by the previous (v1, uncompressed) format must
    // keep opening with zero fallbacks now that the write path emits
    // v2 — and serve byte-identical columns.
    let xml = xmark_base();
    let path = temp_path("v1-compat");
    {
        let store = Store::create(&path).unwrap();
        let doc = ShreddedDoc::shred_str_with(
            &store,
            xml,
            &ShredOptions::builder().persist_columns(false),
        )
        .unwrap();
        doc.persist_all_columns_v1().unwrap();
        store.close().unwrap();
    }
    let store = Store::open(&path).unwrap();
    let v1doc = ShreddedDoc::open(&store).unwrap();
    let (_fs, fresh) = shred(xml);
    for ft in fresh.types().ids() {
        let dotted = fresh.types().dotted(ft);
        let path: Vec<String> = dotted.split('.').map(str::to_string).collect();
        let vt = v1doc.types().lookup(&path).unwrap();
        assert!(
            *v1doc.column(vt) == *fresh.column(ft),
            "v1-opened column diverges for {dotted}"
        );
    }
    assert!(
        v1doc.segment_fallbacks().is_empty(),
        "v1 segments must validate: {:?}",
        v1doc.segment_fallbacks()
    );
    drop((v1doc, store));
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Streaming (external-sort) shred equivalence and abort atomicity: a
// shred under a memory budget — any budget, including ones forcing
// zero, one, or many spilled runs per stream — must describe exactly
// the document an unbounded in-memory shred does, down to rendered
// bytes and persisted column segments; and a shred that fails must
// leave nothing behind.
// ---------------------------------------------------------------------

/// Documents exercising the features the shredder must stream
/// faithfully — attributes, mixed content, CDATA, comments, deep
/// nesting — fat enough that the smallest budget spills several runs.
fn streaming_corpus() -> impl Strategy<Value = String> {
    let entry = (0u32..4, 0usize..3, proptest::bool::ANY, proptest::bool::ANY);
    (proptest::collection::vec(entry, 8..48), 2usize..6).prop_map(|(entries, depth)| {
        let mut s = String::from("<corpus version=\"1\">");
        for (i, (kind, attrs, cdata, mixed)) in entries.iter().enumerate() {
            s.push_str("<entry");
            for a in 0..*attrs {
                s.push_str(&format!(" a{a}=\"v{i}-{a}\""));
            }
            s.push('>');
            match kind {
                0 => s.push_str(&format!("plain text {i} padded to fatten the sorted runs")),
                1 => {
                    for _ in 0..depth {
                        s.push_str("<deep>");
                    }
                    s.push_str("bottom");
                    for _ in 0..depth {
                        s.push_str("</deep>");
                    }
                }
                2 => {
                    s.push_str("<!-- note -->");
                    s.push_str(&format!("<a>x{i}</a> tail {i} <b>y{i}</b> more"));
                }
                _ => s.push_str(&format!("<a>only {i}</a>")),
            }
            if *cdata {
                s.push_str("<![CDATA[raw <not-a-tag> & bytes]]>");
            }
            if *mixed {
                s.push_str(&format!(" trailing {i} <em>mix</em> end"));
            }
            s.push_str("</entry>");
        }
        s.push_str("</corpus>");
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streaming_shred_equals_in_memory_shred(
        xml in streaming_corpus(),
        // Budgets at the floor (many runs), mid (zero or one spill),
        // and far above the corpus (never spills).
        budget in prop_oneof![Just(1usize), Just(16 * 1024), Just(1 << 20)],
    ) {
        let (_ms, mem) = shred(&xml);
        let st_store = Store::in_memory();
        let st = ShreddedDoc::shred_str_with(
            &st_store,
            &xml,
            &ShredOptions::builder().memory_budget(budget),
        )
        .unwrap();

        prop_assert_eq!(mem.shape().to_bytes(), st.shape().to_bytes());
        let types: Vec<TypeId> = mem.types().ids().collect();
        for &t in &types {
            prop_assert_eq!(mem.scan_type(t), st.scan_type(t));
            prop_assert_eq!(mem.scan_type_btree(t), st.scan_type_btree(t));
            for (d, _) in mem.scan_type(t) {
                prop_assert_eq!(mem.node_text(&d).unwrap(), st.node_text(&d).unwrap());
                prop_assert_eq!(mem.node_type(&d).unwrap(), st.node_type(&d).unwrap());
            }
        }
        // No spill segments survive the shred.
        prop_assert!(st_store
            .segment_entries()
            .unwrap()
            .iter()
            .all(|(n, _)| !n.starts_with("__shredrun.")));

        // Rendered output — end-to-end byte identity (or identical
        // typing errors where a guard does not apply).
        for guard in ["MORPH entry", "MORPH deep", "MORPH entry [ a b ]"] {
            let g = Guard::parse(guard).unwrap();
            let a = g.apply(&mem).map(|o| o.xml);
            let b = g.apply(&st).map(|o| o.xml);
            prop_assert_eq!(format!("{:?}", a), format!("{:?}", b), "guard {}", guard);
        }
    }

    #[test]
    fn streaming_shred_persists_identical_segments_to_in_memory(xml in streaming_corpus()) {
        let p1 = temp_path("seg-mem");
        let p2 = temp_path("seg-ext");
        {
            let s1 = Store::create(&p1).unwrap();
            ShreddedDoc::shred_str(&s1, &xml).unwrap();
            let s2 = Store::create(&p2).unwrap();
            ShreddedDoc::shred_str_with(
                &s2,
                &xml,
                &ShredOptions::builder().memory_budget(1),
            )
            .unwrap();

            let mut names: Vec<String> =
                s1.segment_entries().unwrap().into_iter().map(|(n, _)| n).collect();
            prop_assert!(!names.is_empty());
            names.sort();
            let mut names2: Vec<String> =
                s2.segment_entries().unwrap().into_iter().map(|(n, _)| n).collect();
            names2.sort();
            prop_assert_eq!(&names, &names2);
            for name in &names {
                let a = s1.get_segment(name, false).unwrap().unwrap();
                let b = s2.get_segment(name, false).unwrap().unwrap();
                prop_assert_eq!(&a[..], &b[..], "segment {} differs", name);
            }
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}

/// Satellite regression: an incremental (`bulk_load(false)`) shred that
/// fails mid-document must roll its transaction back and leave the
/// store file byte-identical to the pre-shred image — no half-populated
/// trees, no stray catalog entries.
#[test]
fn failed_incremental_shred_rolls_back_cleanly() {
    let path = temp_path("abort");
    {
        let store = Store::create(&path).unwrap();
        ShreddedDoc::shred_str(&store, "<lib><book><title>X</title></book></lib>").unwrap();
        store.close().unwrap();
    }
    // Control open/close, to factor out any maintenance the store
    // performs on open regardless of the shred.
    {
        let store = Store::open(&path).unwrap();
        store.close().unwrap();
    }
    let before = std::fs::read(&path).unwrap();
    {
        let store = Store::open(&path).unwrap();
        let res = ShreddedDoc::shred_str_with(
            &store,
            "<lib><book><title>Y</title>", // truncated mid-element
            &ShredOptions::builder().bulk_load(false),
        );
        assert!(res.is_err(), "truncated document must fail to shred");
        store.close().unwrap();
    }
    let after = std::fs::read(&path).unwrap();
    assert_eq!(
        before, after,
        "aborted shred must leave the store byte-identical"
    );
    std::fs::remove_file(&path).ok();
}

/// A failed streaming shred must clean up every spilled run segment.
#[test]
fn failed_streaming_shred_leaves_no_run_segments() {
    let store = Store::in_memory();
    let res = ShreddedDoc::shred_str_with(
        &store,
        "<corpus><entry>half", // parse fails after some entries spill
        &ShredOptions::builder().memory_budget(1),
    );
    assert!(res.is_err());
    assert!(store
        .segment_entries()
        .unwrap()
        .iter()
        .all(|(n, _)| !n.starts_with("__shredrun.")));
}

//! The columnar read path must agree *exactly* with the B+tree-backed
//! reference implementations it replaced, on random documents:
//!
//! * `scan_type` (column walk) ≡ `scan_type_btree` (prefix scan);
//! * `type_distance_exact` (columnar sorted-merge co-occurrence) ≡
//!   `type_distance_btree` (key-scan sorted merge);
//! * `closest_children` (two binary searches on the column) ≡
//!   `closest_children_btree` (B+tree prefix probe), and
//!   `has_closest_child` ≡ non-emptiness of that group;
//! * a bulk-loaded shred and an incremental shred describe the same
//!   document;
//! * a cold reopen serving *persisted column segments* (mapped or
//!   copied) is byte-identical — scans, joins, and rendered guard
//!   output — to one that rebuilds every column from the B+tree.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use xmorph_core::{Guard, OpenOptions, ShredOptions, ShreddedDoc, TypeId};
use xmorph_pagestore::Store;

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("xmorph-coldopen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.db", SEQ.fetch_add(1, Ordering::Relaxed)))
}

/// Random small library documents — same family as the theorem
/// validation suite: variable author counts, optional publisher and
/// award children, so type pairs cover ancestor/descendant, sibling,
/// cousin, and never-co-occurring relationships.
fn random_library() -> impl Strategy<Value = String> {
    let book = (0usize..3, proptest::bool::ANY, proptest::bool::ANY);
    proptest::collection::vec(book, 1..6).prop_map(|books| {
        let mut s = String::from("<lib>");
        for (i, (authors, has_pub, has_award)) in books.iter().enumerate() {
            s.push_str("<book>");
            s.push_str(&format!("<title>T{i}</title>"));
            for a in 0..*authors {
                s.push_str(&format!("<author><name>A{a}</name></author>"));
            }
            if *has_pub {
                s.push_str(&format!("<publisher><name>P{}</name></publisher>", i % 2));
            }
            if *has_award {
                s.push_str("<award>prize</award>");
            }
            s.push_str("</book>");
        }
        s.push_str("</lib>");
        s
    })
}

fn shred(xml: &str) -> (Store, ShreddedDoc) {
    let store = Store::in_memory();
    let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
    (store, doc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn columnar_operations_match_btree_reference(xml in random_library()) {
        let (_s, doc) = shred(&xml);
        let types: Vec<TypeId> = doc.types().ids().collect();
        for &t in &types {
            prop_assert_eq!(doc.scan_type(t), doc.scan_type_btree(t));
        }
        for &a in &types {
            for &b in &types {
                prop_assert_eq!(
                    doc.type_distance_exact(a, b),
                    doc.type_distance_btree(a, b),
                    "typeDistance({:?}, {:?})", a, b
                );
                for (parent, _) in doc.scan_type(a) {
                    let columnar = doc.closest_children(&parent, a, b);
                    let btree = doc.closest_children_btree(&parent, a, b);
                    prop_assert_eq!(
                        doc.has_closest_child(&parent, a, b),
                        !btree.is_empty(),
                        "existence probe at {}", parent
                    );
                    prop_assert_eq!(columnar, btree, "join at {}", parent);
                }
            }
        }
    }

    #[test]
    fn bulk_and_incremental_shreds_describe_the_same_document(xml in random_library()) {
        let (_bs, bulk) = shred(&xml);
        let inc_store = Store::in_memory();
        let incremental = ShreddedDoc::shred_str_with(
            &inc_store,
            &xml,
            &ShredOptions::builder().bulk_load(false),
        )
        .unwrap();
        prop_assert_eq!(bulk.types().len(), incremental.types().len());
        let types: Vec<TypeId> = bulk.types().ids().collect();
        for &t in &types {
            prop_assert_eq!(bulk.scan_type(t), incremental.scan_type(t));
            prop_assert_eq!(bulk.instance_count(t), incremental.instance_count(t));
        }
        for &a in &types {
            for &b in &types {
                prop_assert_eq!(
                    bulk.type_distance_exact(a, b),
                    incremental.type_distance_exact(a, b)
                );
            }
        }
    }

    #[test]
    fn cold_reopen_with_persisted_columns_is_byte_identical(xml in random_library()) {
        // Shred with column persistence into a file store, close, then
        // reopen twice: once serving persisted segments (mmap
        // preferred), once forced to rebuild lazily from the B+tree.
        let path = temp_path("prop");
        {
            let store = Store::create(&path).unwrap();
            ShreddedDoc::shred_str(&store, &xml).unwrap();
            store.close().unwrap();
        }
        let store = Store::open(&path).unwrap();
        let persisted = ShreddedDoc::open(&store).unwrap();
        let rebuilt =
            ShreddedDoc::open_with(&store, &OpenOptions::builder().persisted_columns(false))
                .unwrap();
        prop_assert!(persisted.segment_fallbacks().is_empty(),
            "persisted segments must validate: {:?}", persisted.segment_fallbacks());

        let types: Vec<TypeId> = persisted.types().ids().collect();
        for &t in &types {
            prop_assert_eq!(persisted.scan_type(t), rebuilt.scan_type(t));
        }
        for &a in &types {
            for &b in &types {
                prop_assert_eq!(
                    persisted.type_distance_exact(a, b),
                    rebuilt.type_distance_exact(a, b)
                );
                for (parent, _) in persisted.scan_type(a) {
                    prop_assert_eq!(
                        persisted.closest_children(&parent, a, b),
                        rebuilt.closest_children(&parent, a, b),
                        "join at {}", parent
                    );
                }
            }
        }
        // Rendered guard output — the end-to-end byte-identity check.
        // Some random documents lack authors/publishers, so a guard may
        // legitimately fail type-checking; both sides must then agree
        // on the error too.
        for guard in [
            "MORPH title",
            "MORPH author [ name ]",
            "MORPH book [ title author [ name ] ]",
            "CAST MORPH publisher [ title ]",
        ] {
            let g = Guard::parse(guard).unwrap();
            let a = g.apply(&persisted).map(|o| o.xml);
            let b = g.apply(&rebuilt).map(|o| o.xml);
            prop_assert_eq!(
                format!("{:?}", a),
                format!("{:?}", b),
                "guard {}", guard
            );
        }
        drop((persisted, rebuilt, store));
        std::fs::remove_file(&path).ok();
    }
}

//! Concurrent read/write byte-identity: N reader threads race a
//! mutation stream through the [`Engine`], and every render any reader
//! observes must be byte-identical to a fresh shred of *some* prefix
//! of the applied mutations — the snapshot contract from `DESIGN.md`
//! §4i. A torn read (a render mixing pre- and post-mutation column
//! state) would produce bytes matching no prefix and fail the
//! membership check.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;
use xmorph_core::{Dewey, Engine, Guard, Mutation, MutationOutcome, QueryRequest};
use xmorph_datagen::XmarkConfig;

const GUARD: &str = "MORPH person [ name ]";
const READERS: usize = 6;

/// Build the mutation stream on a twin engine, recording the canary
/// render after every prefix. The twin replays exactly what the racing
/// writer will apply, so its renders are the complete set of states a
/// correct snapshot may pin.
fn plan(xml: &str, rounds: usize) -> (Vec<Mutation>, HashSet<String>, String) {
    let twin = Engine::from_xml(xml).expect("twin shred");
    let req = QueryRequest::builder(GUARD).threads(1).build();
    let (name_dewey, people_dewey) = first_person_name(&twin);
    let mut mutations = Vec::new();
    let mut expected = HashSet::new();
    expected.insert(twin.query(&req).expect("twin query").xml);
    let mut last_inserted: Option<Dewey> = None;
    for k in 0..rounds {
        let m = if k % 7 == 3 {
            Mutation::InsertSubtree {
                parent: people_dewey.clone(),
                xml: format!("<person><name>NEW{k}</name></person>"),
            }
        } else if k % 7 == 6 && last_inserted.is_some() {
            Mutation::DeleteSubtree {
                target: last_inserted.take().expect("checked above"),
            }
        } else {
            Mutation::UpdateText {
                target: name_dewey.clone(),
                text: format!("S{k}"),
            }
        };
        let outcome = twin.mutate(&m).expect("twin mutate");
        if let MutationOutcome::Inserted(d) = outcome {
            last_inserted = Some(d);
        }
        expected.insert(twin.query(&req).expect("twin query").xml);
        mutations.push(m);
    }
    let final_render = twin.query(&req).expect("twin final query").xml;
    (mutations, expected, final_render)
}

fn first_person_name(engine: &Engine) -> (Dewey, Dewey) {
    let doc = engine.doc();
    let t = doc
        .types()
        .lookup(&[
            "site".to_string(),
            "people".to_string(),
            "person".to_string(),
            "name".to_string(),
        ])
        .expect("xmark person name type");
    let name = doc.scan_type(t).remove(0).0;
    let person = name.parent().expect("name has a person parent");
    let people = person.parent().expect("person has a people parent");
    (name, people)
}

#[test]
fn concurrent_readers_never_observe_torn_renders() {
    let xml = XmarkConfig::with_factor(0.004).generate();
    let (mutations, expected, final_render) = plan(&xml, 40);

    let engine = Engine::from_xml(&xml).expect("shred");
    let req = QueryRequest::builder(GUARD).threads(1).build();

    // A snapshot pinned before the stream must stay byte-stable.
    let guard = Guard::parse(GUARD).expect("parse guard");
    let pinned = engine.snapshot();
    let pinned_target = guard
        .analyze_snapshot(&pinned)
        .expect("analyze pinned")
        .target;
    let pinned_before = xmorph_core::render::render_snapshot(
        &pinned,
        &pinned_target,
        &xmorph_core::render::RenderOptions::default(),
    )
    .expect("render pinned");

    let stop = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..READERS {
            let stop = &stop;
            let reads = &reads;
            let engine = &engine;
            let req = &req;
            let expected = &expected;
            s.spawn(move || {
                let mut session = engine.session();
                while !stop.load(Ordering::Relaxed) {
                    let xml = session.query(req).expect("reader query").xml;
                    assert!(
                        expected.contains(&xml),
                        "reader observed a render matching no mutation prefix:\n{xml}"
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for m in &mutations {
            engine.mutate(m).expect("mutate");
            std::thread::sleep(Duration::from_micros(500));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        reads.load(Ordering::Relaxed) > 0,
        "readers must have made progress during the stream"
    );
    // Quiesced: a fresh query sees exactly the full-prefix state.
    assert_eq!(engine.query(&req).expect("final query").xml, final_render);
    // The pre-stream snapshot still renders its original bytes.
    let pinned_after = xmorph_core::render::render_snapshot(
        &pinned,
        &pinned_target,
        &xmorph_core::render::RenderOptions::default(),
    )
    .expect("render pinned after");
    assert_eq!(
        pinned_before, pinned_after,
        "a pinned snapshot must be immune to later mutations"
    );
}

#[test]
fn byte_identity_against_fresh_shreds_of_every_prefix() {
    // Smaller, deterministic variant: after each single mutation the
    // engine's render must equal a from-scratch shred of the same
    // logical document state (rendered through the twin).
    let xml = XmarkConfig::with_factor(0.004).generate();
    let (mutations, _expected, _final) = plan(&xml, 12);
    let engine = Engine::from_xml(&xml).expect("shred");
    let twin = Engine::from_xml(&xml).expect("twin shred");
    let req = QueryRequest::builder(GUARD).threads(1).build();
    for (k, m) in mutations.iter().enumerate() {
        engine.mutate(m).expect("mutate");
        twin.mutate(m).expect("twin mutate");
        assert_eq!(
            engine.query(&req).expect("query").xml,
            twin.query(&req).expect("twin query").xml,
            "divergence after mutation {k}"
        );
    }
}

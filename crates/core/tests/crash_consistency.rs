//! End-to-end crash consistency: the full shred → flush → mutate →
//! vacuum → close pipeline replayed over [`FaultStorage`], crashing at
//! every sync-ordered write point, then reopened and queried.
//!
//! The invariants are the document-level counterparts of the pagestore
//! sweep's: a torn image either refuses to open with a typed error or
//! opens into a document whose every type scans, reads, and reports
//! fallbacks without panicking — persisted column segments that fail
//! validation fall back to a typeseq rebuild instead of serving
//! garbage or crashing.

use xmorph_core::{MorphError, MorphResult, OpenOptions, ShredOptions, ShreddedDoc};
use xmorph_pagestore::{FaultHandle, FaultScript, FaultStorage, Store, StoreError};

fn store_err(e: StoreError) -> MorphError {
    MorphError::Store {
        op: "crash harness".into(),
        source: e,
    }
}

/// Deterministic library document, big enough that shredding spills the
/// tiny buffer pool mid-parse.
fn library_xml() -> String {
    let mut s = String::from("<lib>");
    for i in 0..25 {
        s.push_str("<book>");
        s.push_str(&format!("<title>Title number {i}</title>"));
        for a in 0..(1 + i % 3) {
            s.push_str(&format!("<author><name>Author {a} of {i}</name></author>"));
        }
        if i % 2 == 0 {
            s.push_str(&format!(
                "<publisher><name>House {}</name></publisher>",
                i % 5
            ));
        }
        s.push_str("</book>");
    }
    s.push_str("</lib>");
    s
}

fn path(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|p| p.to_string()).collect()
}

#[derive(Default, Clone, Copy)]
struct Marks {
    flush_done: u64,
    vacuum_start: u64,
}

/// The workload: persisted-column shred, durability barrier, in-place
/// mutations, column re-persist, vacuum, close. Under an injected crash
/// every step must surface a [`MorphError`] — never panic.
fn workload(
    storage: Box<dyn xmorph_pagestore::storage::Storage>,
    handle: Option<&FaultHandle>,
    marks: &mut Marks,
) -> MorphResult<()> {
    let store = Store::options()
        .capacity(16)
        .shards(1)
        .with_storage(storage)
        .map_err(store_err)?;
    let opts = ShredOptions::builder().persist_columns(true);
    let mut doc = ShreddedDoc::shred_str_with(&store, &library_xml(), &opts)?;
    store.flush().map_err(store_err)?;
    if let Some(h) = handle {
        marks.flush_done = h.writes();
    }

    let titles = doc
        .types()
        .lookup(&path(&["lib", "book", "title"]))
        .ok_or(MorphError::Internal("no title type"))?;
    let books = doc
        .types()
        .lookup(&path(&["lib", "book"]))
        .ok_or(MorphError::Internal("no book type"))?;
    let title_rows = doc.scan_type(titles);
    let book_rows = doc.scan_type(books);
    if title_rows.len() < 4 || book_rows.len() < 4 {
        // A crashed device can only truncate these scans (reads fall
        // back leniently); the fault-free run always passes this gate.
        return Err(MorphError::Internal("columns shorter than the document"));
    }
    doc.update_text(&title_rows[0].0, "Retitled")?;
    doc.delete_subtree(&title_rows[1].0)?;
    doc.insert_subtree(&book_rows[2].0, "<award>prize</award>")?;
    doc.persist_dirty_columns()?;
    if let Some(h) = handle {
        marks.vacuum_start = h.writes();
    }
    store.vacuum().map_err(store_err)?;
    store.close().map_err(store_err)?;
    Ok(())
}

/// Reopen a frozen crash image as a document and exercise every read
/// surface. Any outcome but a panic is within contract; columns must
/// validate or fall back.
fn check_reopened(image: Vec<u8>, crash_at: u64) {
    let (storage, _h) = FaultStorage::with_image(image, FaultScript::none());
    let store = match Store::options()
        .capacity(16)
        .with_storage(Box::new(storage))
    {
        Ok(s) => s,
        Err(_) => return,
    };
    let opts = OpenOptions::builder().persisted_columns(true).mmap(false);
    let doc = match ShreddedDoc::open_with(&store, &opts) {
        Ok(d) => d,
        Err(_) => return,
    };
    let types: Vec<_> = doc.types().ids().collect();
    for &t in &types {
        let rows = doc.scan_type(t);
        assert!(
            rows.len() as u64 <= 10_000,
            "crash@{crash_at}: type {t:?} scan exploded"
        );
        for (dewey, _) in rows.iter().take(2) {
            // Ok, None, or a typed error — never a panic.
            let _ = doc.node_text(dewey);
            let _ = doc.node_type(dewey);
        }
    }
    for line in doc.segment_fallbacks() {
        assert!(
            line.contains(':'),
            "crash@{crash_at}: malformed fallback report {line:?}"
        );
    }
}

/// The tentpole at the document level: crash at every write index of
/// the shred/mutate/vacuum/close pipeline, reopen, query.
#[test]
fn document_pipeline_survives_crash_at_every_write() {
    let mut marks = Marks::default();
    let (storage, handle) = FaultStorage::new(FaultScript::none());
    workload(Box::new(storage), Some(&handle), &mut marks)
        .expect("fault-free pipeline must succeed");
    let total_writes = handle.writes();
    assert!(
        total_writes > 40,
        "pipeline too small to sweep ({total_writes} writes)"
    );
    assert!(marks.flush_done > 0 && marks.vacuum_start >= marks.flush_done);

    for k in 0..total_writes {
        let script = FaultScript::none().crash_at(k).torn_seed(0x5EED ^ k);
        let (storage, handle) = FaultStorage::new(script);
        let mut ignored = Marks::default();
        let res = workload(Box::new(storage), None, &mut ignored);
        assert!(
            res.is_err(),
            "crash@{k}: pipeline survived a crashed device"
        );
        check_reopened(handle.image(), k);
    }
}

/// Baseline: the fault-free image reopens with zero fallbacks and
/// serves exactly what a fresh shred of the mutated document would.
#[test]
fn clean_close_reopens_with_no_fallbacks() {
    let mut marks = Marks::default();
    let (storage, handle) = FaultStorage::new(FaultScript::none());
    workload(Box::new(storage), Some(&handle), &mut marks).unwrap();

    let (storage, _h) = FaultStorage::with_image(handle.image(), FaultScript::none());
    let store = Store::options().with_storage(Box::new(storage)).unwrap();
    let opts = OpenOptions::builder().persisted_columns(true).mmap(false);
    let doc = ShreddedDoc::open_with(&store, &opts).unwrap();
    let titles = doc
        .types()
        .lookup(&path(&["lib", "book", "title"]))
        .unwrap();
    let rows = doc.scan_type(titles);
    assert_eq!(rows[0].1, "Retitled");
    assert_eq!(rows.len(), 24, "one title was deleted from 25");
    assert!(
        doc.segment_fallbacks().is_empty(),
        "clean image must validate every column: {:?}",
        doc.segment_fallbacks()
    );
}

/// Satellite: a persisted column segment whose bytes are garbage is
/// reported in `segment_fallbacks` and served from a typeseq rebuild —
/// with exactly the same rows the persisted copy held.
#[test]
fn corrupt_column_segment_falls_back_to_rebuild() {
    let xml = library_xml();
    let (storage, handle) = FaultStorage::new(FaultScript::none());
    {
        let store = Store::options().with_storage(Box::new(storage)).unwrap();
        let opts = ShredOptions::builder().persist_columns(true);
        ShreddedDoc::shred_str_with(&store, &xml, &opts).unwrap();
        store.close().unwrap();
    }

    let (storage, _h) = FaultStorage::with_image(handle.image(), FaultScript::none());
    let store = Store::options().with_storage(Box::new(storage)).unwrap();
    let victims: Vec<String> = store
        .segment_names()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("col."))
        .collect();
    assert!(
        !victims.is_empty(),
        "persisted shred wrote no column segments"
    );
    for name in &victims {
        store.put_segment(name, b"not a column segment").unwrap();
    }

    let opts = OpenOptions::builder().persisted_columns(true).mmap(false);
    let doc = ShreddedDoc::open_with(&store, &opts).unwrap();
    let reference = {
        let clean = Store::in_memory();
        ShreddedDoc::shred_str(&clean, &xml).unwrap()
    };
    let types: Vec<_> = doc.types().ids().collect();
    for &t in &types {
        assert_eq!(doc.scan_type(t), reference.scan_type(t), "type {t:?}");
    }
    assert_eq!(
        doc.segment_fallbacks().len(),
        victims.len(),
        "every corrupted segment must be reported: {:?}",
        doc.segment_fallbacks()
    );
}

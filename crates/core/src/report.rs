//! The two reports an XMorph evaluation produces (paper Fig. 8): the
//! label-to-type report and the information-loss report.

use crate::model::card::Card;
use std::fmt;

/// The typing class of a guard (§I / §V-B).
///
/// * *narrowing* — guaranteed not to create data (non-additive), but may
///   lose some;
/// * *widening* — guaranteed not to lose data (inclusive), but may create
///   some;
/// * *strongly-typed* — both; *weakly-typed* — neither.
///
/// A label matching no source type is a *type mismatch* and reported as
/// an error rather than a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardTyping {
    /// Neither creates nor loses data.
    Strong,
    /// Does not create data; may lose some.
    Narrowing,
    /// Does not lose data; may create some.
    Widening,
    /// May both create and lose data.
    Weak,
}

impl fmt::Display for GuardTyping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardTyping::Strong => write!(f, "strongly-typed"),
            GuardTyping::Narrowing => write!(f, "narrowing"),
            GuardTyping::Widening => write!(f, "widening"),
            GuardTyping::Weak => write!(f, "weakly-typed"),
        }
    }
}

/// How one label occurrence resolved to types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelResolution {
    /// The label as written in the guard.
    pub label: String,
    /// Dotted names of the types it resolved to (empty + `filled` when
    /// TYPE-FILL invented a type).
    pub resolved: Vec<String>,
    /// True when TYPE-FILL generated a new type for this label.
    pub filled: bool,
}

/// The label-to-type report: how each label in the guard was matched
/// against the source shape, including how ambiguity was resolved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelReport {
    /// One entry per label occurrence, in evaluation order.
    pub resolutions: Vec<LabelResolution>,
}

impl LabelReport {
    /// Record a resolution.
    pub fn record(&mut self, label: &str, resolved: Vec<String>, filled: bool) {
        self.resolutions.push(LabelResolution {
            label: label.to_string(),
            resolved,
            filled,
        });
    }

    /// True when any label was ambiguous (matched more than one type).
    pub fn has_ambiguity(&self) -> bool {
        self.resolutions.iter().any(|r| r.resolved.len() > 1)
    }
}

impl fmt::Display for LabelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "label-to-type report:")?;
        for r in &self.resolutions {
            if r.filled {
                writeln!(f, "  {:20} -> (type-filled: new type)", r.label)?;
            } else {
                writeln!(f, "  {:20} -> {}", r.label, r.resolved.join(", "))?;
            }
        }
        Ok(())
    }
}

/// One way a transformation potentially loses or manufactures
/// information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LossFinding {
    /// Theorem 1 violation: the minimum path cardinality between the two
    /// types rises from zero to non-zero — instances of `to` without a
    /// closest `from` will be dropped (potentially non-inclusive).
    MinCardRaised {
        /// Ancestor-side type (dotted).
        from: String,
        /// Descendant-side type (dotted).
        to: String,
        /// Path cardinality in the source shape.
        src: Card,
        /// Predicted path cardinality in the target shape.
        tgt: Card,
    },
    /// Theorem 2 violation: the maximum path cardinality increases —
    /// instances of `to` may be duplicated under `from`, adding closest
    /// relationships absent from the source (potentially additive).
    MaxCardRaised {
        /// Ancestor-side type (dotted).
        from: String,
        /// Descendant-side type (dotted).
        to: String,
        /// Path cardinality in the source shape.
        src: Card,
        /// Predicted path cardinality in the target shape.
        tgt: Card,
    },
    /// A `CLONE` duplicates the type's data (additive by construction).
    CloneAdds {
        /// Dotted source type name.
        type_name: String,
    },
    /// A `NEW` (or TYPE-FILL) introduces vertices absent from the source
    /// (additive by construction).
    NewAdds {
        /// The new element name.
        name: String,
    },
    /// A `RESTRICT` whose filter has minimum path cardinality zero may
    /// drop instances of the restricted type (non-inclusive).
    RestrictFilters {
        /// Dotted name of the restricted type.
        type_name: String,
        /// Dotted name of the filter type.
        filter: String,
    },
}

impl fmt::Display for LossFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossFinding::MinCardRaised { from, to, src, tgt } => write!(
                f,
                "non-inclusive: min path cardinality {from} ~> {to} rises {src} -> {tgt}; \
                 {to} instances without a closest {from} are dropped"
            ),
            LossFinding::MaxCardRaised { from, to, src, tgt } => write!(
                f,
                "additive: max path cardinality {from} ~> {to} rises {src} -> {tgt}; \
                 {to} instances may be duplicated"
            ),
            LossFinding::CloneAdds { type_name } => {
                write!(f, "additive: CLONE duplicates {type_name}")
            }
            LossFinding::NewAdds { name } => {
                write!(f, "additive: NEW introduces <{name}> vertices")
            }
            LossFinding::RestrictFilters { type_name, filter } => write!(
                f,
                "non-inclusive: RESTRICT may drop {type_name} instances lacking a closest {filter}"
            ),
        }
    }
}

/// The information-loss report for a transformation (§V-B): the outcome
/// of the Theorem 1/2 checks and the resulting typing class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossReport {
    /// Every detected potential loss/addition, in detection order.
    pub findings: Vec<LossFinding>,
    /// Theorem 1: guaranteed not to lose data.
    pub inclusive: bool,
    /// Theorem 2: guaranteed not to create data.
    pub non_additive: bool,
    /// The derived typing class.
    pub typing: GuardTyping,
    /// Source types absent from the target, with their instance counts.
    /// Informational: the paper reasons over the sub-collection the guard
    /// mentions ("it is trivial to choose any subset of a closest graph
    /// as the source", §V-B), so subsetting does not affect the class.
    pub dropped_types: Vec<(String, u64)>,
}

impl LossReport {
    /// Derive the typing class from the two guarantees.
    pub fn classify(inclusive: bool, non_additive: bool, findings: Vec<LossFinding>) -> Self {
        let typing = match (inclusive, non_additive) {
            (true, true) => GuardTyping::Strong,
            (false, true) => GuardTyping::Narrowing,
            (true, false) => GuardTyping::Widening,
            (false, false) => GuardTyping::Weak,
        };
        LossReport {
            findings,
            inclusive,
            non_additive,
            typing,
            dropped_types: Vec::new(),
        }
    }

    /// A transformation with both guarantees is reversible (§V-A).
    pub fn reversible(&self) -> bool {
        self.inclusive && self.non_additive
    }
}

impl fmt::Display for LossReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "information-loss report: {}", self.typing)?;
        writeln!(
            f,
            "  inclusive (no data lost):    {}",
            if self.inclusive { "yes" } else { "NO" }
        )?;
        writeln!(
            f,
            "  non-additive (none created): {}",
            if self.non_additive { "yes" } else { "NO" }
        )?;
        for finding in &self.findings {
            writeln!(f, "  - {finding}")?;
        }
        if !self.dropped_types.is_empty() {
            writeln!(f, "  source types not in the target (subsetting):")?;
            for (name, count) in &self.dropped_types {
                writeln!(f, "    {name} ({count} instance(s))")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::card::CardMax;

    #[test]
    fn classification_matrix() {
        assert_eq!(
            LossReport::classify(true, true, vec![]).typing,
            GuardTyping::Strong
        );
        assert_eq!(
            LossReport::classify(false, true, vec![]).typing,
            GuardTyping::Narrowing
        );
        assert_eq!(
            LossReport::classify(true, false, vec![]).typing,
            GuardTyping::Widening
        );
        assert_eq!(
            LossReport::classify(false, false, vec![]).typing,
            GuardTyping::Weak
        );
    }

    #[test]
    fn reversible_iff_strong() {
        assert!(LossReport::classify(true, true, vec![]).reversible());
        assert!(!LossReport::classify(true, false, vec![]).reversible());
    }

    #[test]
    fn display_mentions_findings() {
        let report = LossReport::classify(
            false,
            true,
            vec![LossFinding::MinCardRaised {
                from: "data.author".into(),
                to: "data.name".into(),
                src: Card::new(0, CardMax::Finite(1)),
                tgt: Card::new(1, CardMax::Finite(1)),
            }],
        );
        let s = report.to_string();
        assert!(s.contains("narrowing"), "{s}");
        assert!(s.contains("data.author"), "{s}");
        assert!(s.contains("0..1 -> 1..1"), "{s}");
    }

    #[test]
    fn label_report_format() {
        let mut r = LabelReport::default();
        r.record("author", vec!["data.book.author".into()], false);
        r.record("ghost", vec![], true);
        let s = r.to_string();
        assert!(s.contains("author"), "{s}");
        assert!(s.contains("type-filled"), "{s}");
        assert!(!r.has_ambiguity());
        r.record("name", vec!["a.name".into(), "b.name".into()], false);
        assert!(r.has_ambiguity());
    }
}

//! Error type for XMorph guard parsing, analysis, and evaluation.

use crate::report::GuardTyping;
use std::fmt;

/// Result alias used throughout the crate.
pub type MorphResult<T> = Result<T, MorphError>;

/// An error raised while parsing, type-checking, or evaluating a guard.
#[derive(Debug, Clone)]
pub enum MorphError {
    /// A syntax error in the guard program.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset into the guard text.
        offset: usize,
    },
    /// A label in the guard matched no type in the source shape and
    /// `TYPE-FILL` was not in effect — the paper's *type mismatch*.
    TypeMismatch {
        /// The unmatched label.
        label: String,
    },
    /// The guard's typing class is not permitted by the active cast mode
    /// (by default only strongly-typed guards run).
    Rejected {
        /// The class the analysis assigned.
        typing: GuardTyping,
        /// What the cast mode allowed.
        allowed: &'static str,
    },
    /// The underlying XML was malformed.
    Xml(xmorph_xml::XmlError),
    /// The underlying storage engine failed. `op` says what the store
    /// was doing — which table, segment, or file — so a corrupt column
    /// segment reports *which* segment fell back, not just that
    /// something did.
    Store {
        /// The operation in flight (e.g. `open tree "typeseq"`,
        /// `read column segment "col.7"`).
        op: String,
        /// The storage engine's error.
        source: xmorph_pagestore::StoreError,
    },
    /// A document mutation could not be applied (missing target node,
    /// malformed fragment, exhausted ordinal space).
    Mutation {
        /// Human-readable description.
        message: String,
    },
    /// An internal invariant was violated (a bug).
    Internal(&'static str),
}

impl fmt::Display for MorphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorphError::Parse { message, offset } => {
                write!(f, "guard syntax error at byte {offset}: {message}")
            }
            MorphError::TypeMismatch { label } => {
                write!(
                    f,
                    "type mismatch: label {label:?} matches no type in the source shape"
                )
            }
            MorphError::Rejected { typing, allowed } => {
                write!(f, "guard rejected: transformation is {typing}, but only {allowed} guards are allowed (add a CAST)")
            }
            MorphError::Xml(e) => write!(f, "XML error: {e}"),
            MorphError::Store { op, source } => write!(f, "storage error ({op}): {source}"),
            MorphError::Mutation { message } => write!(f, "mutation error: {message}"),
            MorphError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for MorphError {}

impl From<xmorph_xml::XmlError> for MorphError {
    fn from(e: xmorph_xml::XmlError) -> Self {
        MorphError::Xml(e)
    }
}

/// Attach operation context when lifting a storage result into a
/// [`MorphResult`]. There is deliberately no blanket
/// `From<StoreError>` — every lift must say what the store was doing.
pub(crate) trait StoreOpExt<T> {
    /// Convert, labelling the failure with `op` (e.g. `"open tree
    /// \"nodes\""`).
    fn in_op(self, op: &str) -> MorphResult<T>;
}

impl<T> StoreOpExt<T> for Result<T, xmorph_pagestore::StoreError> {
    fn in_op(self, op: &str) -> MorphResult<T> {
        self.map_err(|source| MorphError::Store {
            op: op.to_string(),
            source,
        })
    }
}

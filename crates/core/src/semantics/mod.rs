//! The denotational shape-to-shape semantics ξ of §VI.
//!
//! *"The single most important thing to understand about a query guard is
//! that it specifies a shape"* — each guard construct is a function from
//! shapes to shapes. [`shape::Shape`] is the semantic domain: a forest of
//! semantic types, each remembering the source type it selects data from,
//! adorned with *predicted* cardinalities (Def. 7). [`eval`] interprets
//! algebra trees over it; rendering the resulting shape to XML is a
//! separate, later step (§VII), exactly as the paper's
//! `Ψ[[P]](G,S) = render(G, ξ[[P]](S))` prescribes.

pub mod eval;
pub mod parallel;
pub mod shape;

pub use eval::{eval_guard, DistOracle, EvalCtx, GuideOracle};
pub use parallel::{apply_parallel, render_parallel, ParallelOptions};
pub use shape::{SId, Shape, ShapeNode};

//! Parallel guard evaluation: render across document partitions.
//!
//! The paper's interpreter is single-threaded; this driver is the
//! repository's scaling extension on top of it. The key observation is
//! that the sequential renderer (§VII) already emits output as a
//! concatenation of independent per-instance chunks: one chunk per
//! instance of each target root type, in document order. Those root
//! instances are exactly the *top-level groups* of the transformation
//! (one `<book>`, one `<person>`, …), so partitioning the instance
//! sequence into contiguous runs partitions the document at the group
//! boundary.
//!
//! Each partition renders on its own thread (`std::thread::scope`)
//! against the *same* shredded document — the sharded buffer pool in
//! `xmorph-pagestore` makes the underlying page cache genuinely
//! concurrent — and the per-partition strings are concatenated in
//! partition order. Because every thread sees the whole document, the
//! closest joins anchored at each instance resolve identically to the
//! sequential pass (including joins that reach across partition
//! boundaries), so the merged output is **byte-identical** to
//! [`crate::render::render`] by construction. Roots that are NEW (not
//! source-backed) instantiate once per document, not once per group, and
//! render on a single thread.
//!
//! Each partition's column-range slice also goes through the batched
//! closest-join kernel: before rendering, the slice resolves every
//! direct root edge (children, attributes, RESTRICT filters) for all of
//! its instances in one forward gallop pass per edge
//! ([`crate::store::shredded::ShreddedDoc::closest_group_batch`]), so
//! worker threads spend their time emitting output, not re-searching
//! the child columns. The batch is per slice, so workers share nothing
//! mutable and the byte-identity argument is unchanged.

use crate::error::MorphResult;
use crate::guard::{Guard, GuardOutput};
use crate::render::renderer::{render_root_plain, render_root_slice};
use crate::render::RenderOptions;
use crate::semantics::shape::Shape;
use crate::store::shredded::{ShreddedDoc, Snapshot};

/// Options for the parallel driver.
#[derive(Debug, Clone, Default)]
pub struct ParallelOptions {
    /// Worker thread count; `0` means one per available CPU.
    pub threads: usize,
    /// Render options shared by every worker (the wrapper is emitted
    /// once by the driver, not per worker).
    pub render: RenderOptions,
}

impl ParallelOptions {
    /// Options with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelOptions {
            threads,
            ..Default::default()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Split `n` items into at most `parts` contiguous, near-equal runs,
/// returned as `(start, end)` index pairs. Never returns empty runs.
fn partition_bounds(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut bounds = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// Render `target` against `doc` using multiple threads, producing
/// output byte-identical to [`crate::render::render`] with the same
/// options. This is the partitioned render primitive behind
/// [`crate::engine::Engine`]; query code should go through the engine,
/// which adds guard caching, typing enforcement, and per-query stats.
pub fn render_parallel(
    doc: &ShreddedDoc,
    target: &Shape,
    opts: &ParallelOptions,
) -> MorphResult<String> {
    render_parallel_snapshot(&doc.snapshot(), target, opts)
}

/// [`render_parallel`] against an explicitly pinned snapshot. All
/// workers share the one `&Snapshot` (it is `Sync`), so the whole
/// fan-out reads a single epoch regardless of concurrent writers —
/// this is what makes the engine's reads snapshot-isolated.
pub fn render_parallel_snapshot(
    doc: &Snapshot,
    target: &Shape,
    opts: &ParallelOptions,
) -> MorphResult<String> {
    let threads = opts.effective_threads();
    let mut body = String::new();
    for &root in &target.roots {
        match target.nodes[root].base {
            Some(root_type) => {
                // Workers share one decoded column (built here, before
                // the fan-out, so no thread races to build it) and each
                // renders a contiguous row range — no instance vector is
                // materialized at all.
                let col = doc.column(root_type);
                if col.is_empty() {
                    continue;
                }
                let bounds = partition_bounds(col.len(), threads);
                if bounds.len() == 1 {
                    body.push_str(&render_root_slice(
                        doc,
                        target,
                        &opts.render,
                        root,
                        root_type,
                        &col,
                        0..col.len(),
                    )?);
                    continue;
                }
                let results: Vec<MorphResult<String>> = std::thread::scope(|s| {
                    let handles: Vec<_> = bounds
                        .iter()
                        .map(|&(lo, hi)| {
                            let col = &col;
                            let render = &opts.render;
                            s.spawn(move || {
                                render_root_slice(doc, target, render, root, root_type, col, lo..hi)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("parallel render worker panicked"))
                        .collect()
                });
                for chunk in results {
                    body.push_str(&chunk?);
                }
            }
            None => body.push_str(&render_root_plain(doc, target, &opts.render, root)?),
        }
    }
    // The wrapper mirrors StreamWriter exactly: an element with no
    // content collapses to a self-closing tag.
    Ok(match &opts.render.wrapper {
        Some(w) if body.is_empty() => format!("<{w}/>"),
        Some(w) => format!("<{w}>{body}</{w}>"),
        None => body,
    })
}

/// Analyze, enforce the typing discipline, and render in parallel — the
/// multi-threaded counterpart of [`Guard::apply_with`]. Superseded as a
/// query entry point by [`crate::engine::Engine::query`] (which this
/// now mirrors); kept as a thin wrapper so existing callers and tests
/// stay source-compatible.
#[doc(hidden)]
pub fn apply_parallel(
    guard: &Guard,
    doc: &ShreddedDoc,
    opts: &ParallelOptions,
) -> MorphResult<GuardOutput> {
    let analysis = guard.analyze(doc)?;
    analysis.enforce()?;
    let xml = render_parallel(doc, &analysis.target, opts)?;
    Ok(GuardOutput { xml, analysis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render;
    use xmorph_pagestore::Store;

    fn shred(xml: &str) -> (Store, ShreddedDoc) {
        let store = Store::in_memory();
        let doc = ShreddedDoc::shred_str(&store, xml).unwrap();
        (store, doc)
    }

    /// A library with enough top-level groups to split several ways.
    fn library(groups: usize) -> String {
        let mut xml = String::from("<lib>");
        for i in 0..groups {
            xml.push_str(&format!(
                "<book><title>T{i}</title><author><name>A{}</name></author>\
                 {}<publisher><name>P{}</name></publisher></book>",
                i % 7,
                if i % 3 == 0 { "<award>w</award>" } else { "" },
                i % 5,
            ));
        }
        xml.push_str("</lib>");
        xml
    }

    fn assert_parallel_matches(guard_src: &str, xml: &str) {
        let guard = Guard::parse(guard_src).unwrap();
        let (_s, doc) = shred(xml);
        let sequential = guard.apply(&doc).unwrap().xml;
        for threads in [1, 2, 3, 4, 8] {
            let opts = ParallelOptions::with_threads(threads);
            let parallel = apply_parallel(&guard, &doc, &opts).unwrap().xml;
            assert_eq!(parallel, sequential, "threads={threads} guard={guard_src}");
        }
    }

    #[test]
    fn morph_matches_sequential() {
        assert_parallel_matches("MORPH author [ name book [ title ] ]", &library(23));
    }

    #[test]
    fn nested_groups_match_sequential() {
        assert_parallel_matches("MORPH book [ title author [ name ] ]", &library(17));
    }

    #[test]
    fn filters_match_sequential() {
        assert_parallel_matches(
            "CAST-NARROWING MORPH (RESTRICT book [ award ]) [ title ]",
            &library(20),
        );
    }

    #[test]
    fn new_root_matches_sequential() {
        assert_parallel_matches(
            "CAST-WIDENING MORPH (NEW scribe) [ author [ name ] ]",
            &library(11),
        );
    }

    #[test]
    fn translate_matches_sequential() {
        assert_parallel_matches(
            "MORPH author [ name ] | TRANSLATE author -> writer",
            &library(9),
        );
    }

    #[test]
    fn more_threads_than_groups() {
        let guard = Guard::parse("MORPH book [ title ]").unwrap();
        let (_s, doc) = shred(&library(2));
        let sequential = guard.apply(&doc).unwrap().xml;
        let opts = ParallelOptions::with_threads(16);
        assert_eq!(apply_parallel(&guard, &doc, &opts).unwrap().xml, sequential);
    }

    #[test]
    fn empty_result_collapses_like_stream_writer() {
        let guard = Guard::parse("MORPH book [ title ]").unwrap();
        let (_s, doc) = shred("<lib><book><title>T</title></book></lib>");
        let mut target = guard.analyze(&doc).unwrap().target;
        target.roots.clear();
        let opts = ParallelOptions::with_threads(4);
        let sequential = render(&doc, &target, &opts.render).unwrap();
        let parallel = render_parallel(&doc, &target, &opts).unwrap();
        assert_eq!(parallel, sequential);
        assert_eq!(parallel, "<result/>");
    }

    #[test]
    fn render_parallel_honours_wrapper_and_options() {
        let guard = Guard::parse("MORPH title").unwrap();
        let (_s, doc) = shred(&library(6));
        let analysis = guard.analyze(&doc).unwrap();
        let render_opts = RenderOptions {
            wrapper: Some("out".into()),
            tag_source: true,
            pipelined: false,
        };
        let sequential = render(&doc, &analysis.target, &render_opts).unwrap();
        let opts = ParallelOptions {
            threads: 3,
            render: render_opts,
        };
        let parallel = render_parallel(&doc, &analysis.target, &opts).unwrap();
        assert_eq!(parallel, sequential);
        assert!(parallel.starts_with("<out>"));
        assert!(parallel.contains("data-src"));
    }

    #[test]
    fn partition_bounds_cover_everything_contiguously() {
        for n in [1usize, 2, 7, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let bounds = partition_bounds(n, parts);
                assert!(bounds.len() <= parts.max(1));
                assert_eq!(bounds.first().unwrap().0, 0);
                assert_eq!(bounds.last().unwrap().1, n);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                    assert!(w[0].0 < w[0].1, "non-empty");
                }
            }
        }
    }
}

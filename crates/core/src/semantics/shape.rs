//! The live semantic shape: a forest of semantic types.
//!
//! A semantic type is richer than a source type: clones are distinct
//! semantic types sharing a source type, `NEW` types have no source type
//! at all, `TRANSLATE` changes the rendered name without changing the
//! source binding, and `RESTRICT` demotes subtrees to instance filters.

use crate::model::card::Card;
use crate::model::shape::AdornedShape;
use crate::model::types::TypeId;
use std::fmt;

/// Index of a node within a [`Shape`] arena.
pub type SId = usize;

/// One semantic type in a shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeNode {
    /// The element name this node renders as.
    pub name: String,
    /// The source type whose instances populate this node (`None` for
    /// `NEW` / type-filled types).
    pub base: Option<TypeId>,
    /// The node of the *previous* shape this node was selected from. In a
    /// source shape, each node's origin is itself.
    pub origin: Option<SId>,
    /// Predicted cardinality of the edge from the parent (Def. 7);
    /// `1..1` for roots.
    pub card: Card,
    /// Parent in the forest (filters also point at their owner).
    pub parent: Option<SId>,
    /// Child nodes.
    pub children: Vec<SId>,
    /// RESTRICT filter subtree roots: instances of this node qualify only
    /// if they have a closest instance of each filter (checked
    /// recursively). Filters are not rendered.
    pub filters: Vec<SId>,
    /// True when the node was produced by `CLONE` (a distinct type whose
    /// data duplicates the original's).
    pub is_clone: bool,
    /// True when the node was produced by `NEW` or TYPE-FILL.
    pub is_new: bool,
}

impl ShapeNode {
    fn leaf(name: &str, base: Option<TypeId>, origin: Option<SId>) -> ShapeNode {
        ShapeNode {
            name: name.to_string(),
            base,
            origin,
            card: Card::one(),
            parent: None,
            children: Vec::new(),
            filters: Vec::new(),
            is_clone: false,
            is_new: false,
        }
    }
}

/// A forest of semantic types — the domain and codomain of ξ.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Shape {
    /// Node arena.
    pub nodes: Vec<ShapeNode>,
    /// Root nodes.
    pub roots: Vec<SId>,
    /// True when this shape *is* the source collection's shape, so
    /// closest distances can be answered exactly from the data.
    pub data_backed: bool,
}

impl Shape {
    /// An empty (under-construction) shape.
    pub fn new() -> Shape {
        Shape::default()
    }

    /// Lift an adorned source shape into the semantic domain. Node `i`
    /// corresponds to `TypeId(i)` (interning order puts parents first).
    pub fn from_adorned(adorned: &AdornedShape) -> Shape {
        let types = adorned.types();
        let mut shape = Shape {
            nodes: Vec::with_capacity(types.len()),
            roots: Vec::new(),
            data_backed: true,
        };
        for id in types.ids() {
            let mut node = ShapeNode::leaf(types.name(id), Some(id), Some(id.index()));
            node.card = adorned.card(id);
            node.parent = types.parent(id).map(|p| p.index());
            shape.nodes.push(node);
        }
        for id in types.ids() {
            match types.parent(id) {
                Some(p) => shape.nodes[p.index()].children.push(id.index()),
                None => shape.roots.push(id.index()),
            }
        }
        shape
    }

    /// Add a detached leaf node.
    pub fn add_leaf(&mut self, name: &str, base: Option<TypeId>, origin: Option<SId>) -> SId {
        let id = self.nodes.len();
        self.nodes.push(ShapeNode::leaf(name, base, origin));
        id
    }

    /// Attach `child` under `parent` with the given predicted
    /// cardinality. The child must currently be detached.
    pub fn attach(&mut self, parent: SId, child: SId, card: Card) {
        debug_assert!(self.nodes[child].parent.is_none());
        self.nodes[child].parent = Some(parent);
        self.nodes[child].card = card;
        self.nodes[parent].children.push(child);
    }

    /// Detach `child` from its parent (or from the root list).
    pub fn detach(&mut self, child: SId) {
        if let Some(p) = self.nodes[child].parent.take() {
            self.nodes[p].children.retain(|&c| c != child);
        }
        self.roots.retain(|&r| r != child);
    }

    /// Depth of a node (roots at 0), following parent links.
    pub fn depth(&self, n: SId) -> usize {
        let mut d = 0;
        let mut cur = n;
        while let Some(p) = self.nodes[cur].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Names from the root down to `n` (used for dotted-label matching).
    pub fn path_names(&self, n: SId) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = Some(n);
        while let Some(c) = cur {
            out.push(self.nodes[c].name.as_str());
            cur = self.nodes[c].parent;
        }
        out.reverse();
        out
    }

    /// Dotted path name of a node.
    pub fn dotted(&self, n: SId) -> String {
        self.path_names(n).join(".")
    }

    /// Nodes whose name matches a (possibly dotted) label, by the same
    /// suffix rule as [`crate::model::types::TypeTable::matching`].
    /// Filter nodes are excluded.
    pub fn matching_label(&self, label: &str) -> Vec<SId> {
        let segments: Vec<&str> = label.split('.').collect();
        let filter_nodes = self.filter_node_set();
        (0..self.nodes.len())
            .filter(|&n| !filter_nodes[n])
            .filter(|&n| {
                let path = self.path_names(n);
                path.len() >= segments.len()
                    && path[path.len() - segments.len()..]
                        .iter()
                        .zip(&segments)
                        .all(|(p, s)| p == s)
            })
            .collect()
    }

    /// Boolean mask of nodes living inside a filter subtree.
    fn filter_node_set(&self) -> Vec<bool> {
        let mut mask = vec![false; self.nodes.len()];
        for n in 0..self.nodes.len() {
            for &f in &self.nodes[n].filters {
                self.mark_subtree(f, &mut mask);
            }
        }
        mask
    }

    fn mark_subtree(&self, n: SId, mask: &mut [bool]) {
        mask[n] = true;
        for &c in &self.nodes[n].children {
            self.mark_subtree(c, mask);
        }
        for &f in &self.nodes[n].filters {
            self.mark_subtree(f, mask);
        }
    }

    /// True when `anc` is `node` or an ancestor of it.
    pub fn is_ancestor_or_self(&self, anc: SId, node: SId) -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.nodes[c].parent;
        }
        false
    }

    /// Tree distance between two nodes. Nodes in different trees of the
    /// forest are related through the virtual forest root (the rendered
    /// document wrapper): distance = depth(a) + depth(b) + 2.
    pub fn tree_distance(&self, a: SId, b: SId) -> Option<usize> {
        let mut anc = Vec::new();
        let mut cur = Some(a);
        while let Some(c) = cur {
            anc.push(c);
            cur = self.nodes[c].parent;
        }
        let mut db = 0usize;
        let mut cur = Some(b);
        while let Some(c) = cur {
            if let Some(pos) = anc.iter().position(|&x| x == c) {
                return Some(pos + db);
            }
            db += 1;
            cur = self.nodes[c].parent;
        }
        Some(anc.len() + db) // via the virtual forest root
    }

    /// Path cardinality (Def. 6) between two nodes of this shape: `1..1`
    /// up from `a` to the least common ancestor, then the product of edge
    /// cardinalities down to `b`. Nodes in different trees relate through
    /// the virtual forest root, so `b`'s own root-edge cardinality (the
    /// absolute instance count) joins the product.
    pub fn path_card(&self, a: SId, b: SId) -> Option<Card> {
        let mut anc = vec![false; self.nodes.len()];
        let mut cur = Some(a);
        while let Some(c) = cur {
            anc[c] = true;
            cur = self.nodes[c].parent;
        }
        let mut card = Card::one();
        let mut cur = b;
        loop {
            if anc[cur] {
                return Some(card);
            }
            card = card.mul(self.nodes[cur].card);
            match self.nodes[cur].parent {
                Some(p) => cur = p,
                None => return Some(card), // via the virtual forest root
            }
        }
    }

    /// Deep-copy the subtree rooted at `n` (children and filters) into
    /// `dst`, mapping origins to the *source* ids in `self` when this
    /// shape is itself a source (`origin_is_self`), or propagating
    /// existing origins otherwise. Returns the new root id.
    pub fn copy_subtree_into(&self, n: SId, dst: &mut Shape, origin_is_self: bool) -> SId {
        let node = &self.nodes[n];
        let origin = if origin_is_self { Some(n) } else { node.origin };
        let new_id = dst.add_leaf(&node.name, node.base, origin);
        dst.nodes[new_id].card = node.card;
        dst.nodes[new_id].is_clone = node.is_clone;
        dst.nodes[new_id].is_new = node.is_new;
        for &c in &node.children {
            let cc = self.copy_subtree_into(c, dst, origin_is_self);
            dst.nodes[cc].parent = Some(new_id);
            let card = dst.nodes[cc].card;
            dst.nodes[new_id].children.push(cc);
            dst.nodes[cc].card = card;
        }
        for &f in &node.filters {
            let ff = self.copy_subtree_into(f, dst, origin_is_self);
            dst.nodes[ff].parent = Some(new_id);
            dst.nodes[new_id].filters.push(ff);
        }
        new_id
    }

    /// Duplicate a subtree *within* this shape (used when a fragment must
    /// attach under several equally-close parents, and by `CLONE` in
    /// `MUTATE`). The copy is detached.
    pub fn duplicate_subtree(&mut self, n: SId) -> SId {
        let node = self.nodes[n].clone();
        let new_id = self.add_leaf(&node.name, node.base, node.origin);
        self.nodes[new_id].card = node.card;
        self.nodes[new_id].is_clone = node.is_clone;
        self.nodes[new_id].is_new = node.is_new;
        for c in node.children {
            let cc = self.duplicate_subtree(c);
            self.nodes[cc].parent = Some(new_id);
            self.nodes[new_id].children.push(cc);
        }
        for f in node.filters {
            let ff = self.duplicate_subtree(f);
            self.nodes[ff].parent = Some(new_id);
            self.nodes[new_id].filters.push(ff);
        }
        new_id
    }

    /// Rebuild the arena keeping only nodes reachable from `roots`,
    /// preserving order. Returns the compacted shape.
    pub fn compact(&self, roots: &[SId]) -> Shape {
        let mut out = Shape {
            nodes: Vec::new(),
            roots: Vec::new(),
            data_backed: false,
        };
        for &r in roots {
            let new_root = self.copy_subtree_into(r, &mut out, false);
            out.roots.push(new_root);
        }
        out
    }

    /// Serialize this shape back to XMorph guard text — the *effective
    /// guard*: applying it reproduces exactly this shape on sources
    /// where its labels resolve the same way. Dotted labels are not
    /// reconstructed (the shape stores resolved names), so ambiguous
    /// sources may resolve differently; `RESTRICT` filters, `NEW` types,
    /// and `*`-free structure round-trip.
    pub fn to_guard(&self) -> String {
        fn item(shape: &Shape, n: SId, out: &mut String) {
            let node = &shape.nodes[n];
            if node.is_new {
                out.push_str("(NEW ");
                out.push_str(&node.name);
                out.push(')');
            } else if !node.filters.is_empty() {
                out.push_str("(RESTRICT ");
                out.push_str(&node.name);
                if !node.filters.is_empty() {
                    out.push_str(" [ ");
                    for (i, &f) in node.filters.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        item(shape, f, out);
                    }
                    out.push_str(" ]");
                }
                out.push(')');
            } else {
                out.push_str(&node.name);
            }
            if !node.children.is_empty() {
                out.push_str(" [ ");
                for (i, &c) in node.children.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    item(shape, c, out);
                }
                out.push_str(" ]");
            }
        }
        let mut out = String::from("MORPH ");
        for (i, &r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            item(self, r, &mut out);
        }
        out
    }

    /// All node ids in preorder from the roots (children before filters).
    pub fn preorder(&self) -> Vec<SId> {
        let mut out = Vec::new();
        let mut stack: Vec<SId> = self.roots.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of renderable (non-filter) nodes reachable from the roots.
    pub fn reachable_count(&self) -> usize {
        self.preorder().len()
    }
}

impl fmt::Display for Shape {
    /// Indented tree with predicted cardinalities and annotations.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(shape: &Shape, n: SId, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for _ in 0..depth {
                write!(f, "  ")?;
            }
            write!(f, "{}", shape.nodes[n].name)?;
            if depth > 0 {
                write!(f, " {}", shape.nodes[n].card)?;
            }
            if shape.nodes[n].is_new {
                write!(f, " (new)")?;
            }
            if shape.nodes[n].is_clone {
                write!(f, " (clone)")?;
            }
            if !shape.nodes[n].filters.is_empty() {
                write!(f, " (restricted)")?;
            }
            writeln!(f)?;
            for &c in &shape.nodes[n].children {
                rec(shape, c, depth + 1, f)?;
            }
            Ok(())
        }
        for &r in &self.roots {
            rec(self, r, 0, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmorph_xml::dom::Document;

    fn fig1a_shape() -> Shape {
        let doc = Document::parse_str(
            "<data>\
               <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
               <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
             </data>",
        )
        .unwrap();
        Shape::from_adorned(&AdornedShape::from_document(&doc))
    }

    fn find(shape: &Shape, dotted: &str) -> SId {
        let hits = shape.matching_label(dotted);
        assert_eq!(hits.len(), 1, "label {dotted} matched {hits:?}");
        hits[0]
    }

    #[test]
    fn from_adorned_mirrors_tree() {
        let s = fig1a_shape();
        assert_eq!(s.roots.len(), 1);
        assert!(s.data_backed);
        let data = s.roots[0];
        assert_eq!(s.nodes[data].name, "data");
        assert_eq!(s.nodes[data].children.len(), 1);
        let book = s.nodes[data].children[0];
        assert_eq!(s.nodes[book].card, Card::exactly(2));
    }

    #[test]
    fn label_matching_on_paths() {
        let s = fig1a_shape();
        // Two 'name' types: author.name and publisher.name.
        assert_eq!(s.matching_label("name").len(), 2);
        assert_eq!(s.matching_label("author.name").len(), 1);
        assert_eq!(s.matching_label("publisher.name").len(), 1);
        assert!(s.matching_label("editor").is_empty());
    }

    #[test]
    fn tree_distance_in_shape() {
        let s = fig1a_shape();
        let title = find(&s, "title");
        let pub_name = find(&s, "publisher.name");
        assert_eq!(s.tree_distance(title, pub_name), Some(3));
        assert_eq!(s.tree_distance(title, title), Some(0));
    }

    #[test]
    fn path_card_in_shape() {
        let s = fig1a_shape();
        let data = s.roots[0];
        let name = find(&s, "author.name");
        assert_eq!(s.path_card(data, name), Some(Card::exactly(2)));
        assert_eq!(s.path_card(name, data), Some(Card::one()));
    }

    #[test]
    fn attach_detach() {
        let mut s = Shape::new();
        let a = s.add_leaf("a", None, None);
        let b = s.add_leaf("b", None, None);
        s.roots.push(a);
        s.attach(a, b, Card::one());
        assert_eq!(s.depth(b), 1);
        s.detach(b);
        assert_eq!(s.nodes[a].children.len(), 0);
        assert_eq!(s.nodes[b].parent, None);
    }

    #[test]
    fn duplicate_subtree_is_deep() {
        let mut s = Shape::new();
        let a = s.add_leaf("a", None, None);
        let b = s.add_leaf("b", None, None);
        s.roots.push(a);
        s.attach(a, b, Card::one());
        let copy = s.duplicate_subtree(a);
        assert_ne!(copy, a);
        assert_eq!(s.nodes[copy].children.len(), 1);
        let copy_child = s.nodes[copy].children[0];
        assert_ne!(copy_child, b);
        assert_eq!(s.nodes[copy_child].name, "b");
    }

    #[test]
    fn compact_drops_garbage() {
        let mut s = Shape::new();
        let a = s.add_leaf("a", None, None);
        let _garbage = s.add_leaf("junk", None, None);
        let b = s.add_leaf("b", None, None);
        s.roots.push(a);
        s.attach(a, b, Card::one());
        let c = s.compact(&[a]);
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.nodes[c.roots[0]].name, "a");
    }

    #[test]
    fn display_annotations() {
        let mut s = Shape::new();
        let a = s.add_leaf("a", None, None);
        s.roots.push(a);
        let n = s.add_leaf("n", None, None);
        s.nodes[n].is_new = true;
        s.attach(a, n, Card::one());
        let out = s.to_string();
        assert!(out.contains("n 1..1 (new)"), "{out}");
    }

    #[test]
    fn to_guard_round_trips_structure() {
        use crate::algebra::lower;
        use crate::lang::parse;
        use crate::model::shape::AdornedShape;
        use crate::semantics::eval::{eval_guard, EvalCtx, GuideOracle};

        let doc = Document::parse_str(
            "<data>\
             <book><title>X</title><author><name>T</name></author></book>\
             </data>",
        )
        .unwrap();
        let adorned = AdornedShape::from_document(&doc);
        let src = Shape::from_adorned(&adorned);
        let oracle = GuideOracle(adorned.types());

        for guard in [
            "MORPH author [ name book [ title ] ]",
            "MORPH (NEW scribe) [ author [ name ] ]",
            "MORPH (RESTRICT book [ author ]) [ title ]",
        ] {
            let mut ctx = EvalCtx::new(&oracle);
            let op = lower(&parse(guard).unwrap());
            let target = eval_guard(&op, &src, &mut ctx).unwrap();
            let emitted = target.to_guard();
            // The emitted guard parses and evaluates to the same shape.
            let mut ctx2 = EvalCtx::new(&oracle);
            let op2 = lower(&parse(&emitted).unwrap());
            let target2 = eval_guard(&op2, &src, &mut ctx2).unwrap();
            assert_eq!(
                target.to_string(),
                target2.to_string(),
                "{guard} -> {emitted}"
            );
        }
    }

    #[test]
    fn filters_hidden_from_label_matching() {
        let mut s = Shape::new();
        let a = s.add_leaf("a", None, None);
        s.roots.push(a);
        let f = s.add_leaf("secret", None, None);
        s.nodes[f].parent = Some(a);
        s.nodes[a].filters.push(f);
        assert!(s.matching_label("secret").is_empty());
    }
}

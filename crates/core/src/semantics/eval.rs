//! The semantic function ξ: interpreting algebra trees as shape-to-shape
//! functions (§VI).
//!
//! The interesting rule is `extend` (nesting): connecting the roots of a
//! child fragment to the *closest* roots of the parent fragment, where
//! closeness is the type distance in the current source shape (answered
//! exactly from the data for the initial shape, structurally afterwards).
//! Every created edge is adorned with its *predicted* cardinality
//! (Def. 7) — the path cardinality between the two origins in the source
//! shape — which is what the information-loss theorems inspect.

use crate::algebra::{Op, POp};
use crate::error::{MorphError, MorphResult};
use crate::model::card::Card;
use crate::model::types::{TypeId, TypeTable};
use crate::report::LabelReport;
use crate::semantics::shape::{SId, Shape};

/// Answers `typeDistance` between two source types. The shredded store
/// provides an exact, data-backed implementation (co-occurrence
/// sorted-merges over its per-type columns, cached per pair);
/// [`GuideOracle`] falls back to the data-guide distance.
pub trait DistOracle {
    /// Minimum distance between any pair of instances of the two types,
    /// or `None` when no pair exists.
    fn type_distance(&self, a: TypeId, b: TypeId) -> Option<usize>;
}

/// Structure-only oracle: the distance between the types in the data
/// guide (a lower bound of the true type distance; exact whenever the
/// types co-occur under their deepest shared path prefix).
pub struct GuideOracle<'a>(pub &'a TypeTable);

impl DistOracle for GuideOracle<'_> {
    fn type_distance(&self, a: TypeId, b: TypeId) -> Option<usize> {
        self.0.guide_distance(a, b)
    }
}

/// Evaluation context: the distance oracle plus the label report being
/// accumulated and the TYPE-FILL flag.
pub struct EvalCtx<'a> {
    /// Distance oracle for the *data-backed* source shape.
    pub oracle: &'a dyn DistOracle,
    /// Accumulated label-to-type report.
    pub labels: LabelReport,
    /// When true, unmatched labels become NEW types instead of errors.
    pub type_fill: bool,
}

impl<'a> EvalCtx<'a> {
    /// Fresh context over an oracle.
    pub fn new(oracle: &'a dyn DistOracle) -> Self {
        EvalCtx {
            oracle,
            labels: LabelReport::default(),
            type_fill: false,
        }
    }
}

/// Distance between two nodes of the source shape, for closest pairing.
fn pair_distance(src: &Shape, ctx: &EvalCtx<'_>, a: SId, b: SId) -> Option<usize> {
    if src.data_backed {
        if let (Some(ba), Some(bb)) = (src.nodes[a].base, src.nodes[b].base) {
            return ctx.oracle.type_distance(ba, bb);
        }
    }
    src.tree_distance(a, b)
}

/// Cardinality of `n` relative to the whole source (product of edge
/// cards from the virtual forest root down, including the tree root's
/// own edge) — the instance-count bounds of the type.
fn absolute_card(src: &Shape, n: SId) -> Card {
    let mut card = Card::one();
    let mut cur = n;
    loop {
        card = card.mul(src.nodes[cur].card);
        match src.nodes[cur].parent {
            Some(p) => cur = p,
            None => return card,
        }
    }
}

/// Evaluate a guard: `ξ[[op]](src)`.
pub fn eval_guard(op: &Op, src: &Shape, ctx: &mut EvalCtx<'_>) -> MorphResult<Shape> {
    match op {
        Op::Morph(p) => {
            let mut tgt = Shape::new();
            let roots = eval_pop(p, src, &mut tgt, ctx)?;
            let detached: Vec<SId> = roots
                .into_iter()
                .filter(|&r| tgt.nodes[r].parent.is_none())
                .collect();
            let mut out = tgt.compact(&detached);
            set_root_cards(src, &mut out);
            Ok(out)
        }
        Op::Mutate(p) => {
            let mut out = eval_mutate(p, src, ctx)?;
            set_root_cards(src, &mut out);
            Ok(out)
        }
        Op::Translate(renames) => eval_translate(renames, src, ctx),
        Op::Compose(a, b) => {
            let mid = eval_guard(a, src, ctx)?;
            eval_guard(b, &mid, ctx)
        }
        Op::Cast(_, g) => eval_guard(g, src, ctx),
        Op::TypeFill(g) => {
            let saved = ctx.type_fill;
            ctx.type_fill = true;
            let out = eval_guard(g, src, ctx);
            ctx.type_fill = saved;
            out
        }
    }
}

/// Root edges of a target shape carry the type's *absolute* cardinality
/// (its instance-count bounds relative to the whole source) — the edge
/// from the virtual forest root that the rendered document wrapper makes
/// concrete. Cross-tree path cardinalities route through it.
fn set_root_cards(src: &Shape, tgt: &mut Shape) {
    for i in 0..tgt.roots.len() {
        let r = tgt.roots[i];
        if let Some(origin) = tgt.nodes[r].origin {
            tgt.nodes[r].card = absolute_card(src, origin);
        }
    }
}

/// Evaluate a MORPH pattern fragment into `tgt`; returns the fragment's
/// root ids (detached until a parent claims them).
fn eval_pop(
    pop: &POp,
    src: &Shape,
    tgt: &mut Shape,
    ctx: &mut EvalCtx<'_>,
) -> MorphResult<Vec<SId>> {
    match pop {
        POp::Type(label) => {
            let matches = src.matching_label(label);
            if matches.is_empty() {
                if ctx.type_fill {
                    ctx.labels.record(label, vec![], true);
                    let id = tgt.add_leaf(label, None, None);
                    tgt.nodes[id].is_new = true;
                    return Ok(vec![id]);
                }
                return Err(MorphError::TypeMismatch {
                    label: label.clone(),
                });
            }
            ctx.labels.record(
                label,
                matches.iter().map(|&m| src.dotted(m)).collect(),
                false,
            );
            Ok(matches
                .into_iter()
                .map(|m| {
                    let node = &src.nodes[m];
                    tgt.add_leaf(&node.name, node.base, Some(m))
                })
                .collect())
        }
        POp::New(label) => {
            let id = tgt.add_leaf(label, None, None);
            tgt.nodes[id].is_new = true;
            Ok(vec![id])
        }
        POp::Siblings(items) => {
            let mut out = Vec::new();
            for item in items {
                out.extend(eval_pop(item, src, tgt, ctx)?);
            }
            Ok(out)
        }
        POp::Closest { parent, children } => {
            let parents = eval_pop(parent, src, tgt, ctx)?;
            for child in children {
                let fragment_roots = eval_pop(child, src, tgt, ctx)?;
                extend(src, tgt, ctx, &parents, &fragment_roots);
            }
            Ok(parents)
        }
        POp::Children(p) => {
            let roots = eval_pop(p, src, tgt, ctx)?;
            for &r in &roots {
                if let Some(origin) = tgt.nodes[r].origin {
                    let kids: Vec<SId> = src.nodes[origin].children.clone();
                    for k in kids {
                        let leaf = tgt.add_leaf(&src.nodes[k].name, src.nodes[k].base, Some(k));
                        tgt.attach(r, leaf, src.nodes[k].card);
                    }
                }
            }
            Ok(roots)
        }
        POp::Descendants(p) => {
            let roots = eval_pop(p, src, tgt, ctx)?;
            for &r in &roots {
                if let Some(origin) = tgt.nodes[r].origin {
                    let kids: Vec<SId> = src.nodes[origin].children.clone();
                    for k in kids {
                        let sub = src.copy_subtree_into(k, tgt, true);
                        let card = src.nodes[k].card;
                        tgt.attach(r, sub, card);
                    }
                }
            }
            Ok(roots)
        }
        POp::Restrict(p) => {
            let roots = eval_pop(p, src, tgt, ctx)?;
            for &r in &roots {
                let children = std::mem::take(&mut tgt.nodes[r].children);
                tgt.nodes[r].filters.extend(children);
            }
            Ok(roots)
        }
        POp::Clone(p) => {
            let roots = eval_pop(p, src, tgt, ctx)?;
            for &r in &roots {
                mark_clones(tgt, r);
            }
            Ok(roots)
        }
        POp::Drop(_) => Err(MorphError::Parse {
            message: "DROP is only meaningful inside MUTATE".to_string(),
            offset: 0,
        }),
    }
}

fn mark_clones(tgt: &mut Shape, n: SId) {
    tgt.nodes[n].is_clone = true;
    let kids = tgt.nodes[n].children.clone();
    for c in kids {
        mark_clones(tgt, c);
    }
}

/// The `extend` of §VI: connect child-fragment roots to parent roots at
/// the *global* minimum type distance over all candidate pairs — "if some
/// pairing ... is farther (in distance) than some other pairing, then it
/// is not used" (§VIII). Ties keep every minimal pair (the fragment is
/// duplicated per extra parent); fragments with no minimal pair are left
/// detached (compacted away), surfacing as information loss. NEW parents
/// adopt every fragment; NEW fragments attach to every parent.
fn extend(src: &Shape, tgt: &mut Shape, ctx: &EvalCtx<'_>, parents: &[SId], fragments: &[SId]) {
    if parents.is_empty() {
        return;
    }
    let new_parents: Vec<SId> = parents
        .iter()
        .copied()
        .filter(|&p| tgt.nodes[p].origin.is_none())
        .collect();
    let based_parents: Vec<SId> = parents
        .iter()
        .copied()
        .filter(|&p| tgt.nodes[p].origin.is_some())
        .collect();

    // Global minimum distance over all (based parent, based fragment)
    // pairs: the paper's ambiguity resolution.
    let mut global_min: Option<usize> = None;
    for &p in &based_parents {
        let po = tgt.nodes[p].origin.expect("based parent");
        for &frag in fragments {
            if let Some(fo) = tgt.nodes[frag].origin {
                if let Some(d) = pair_distance(src, ctx, po, fo) {
                    global_min = Some(global_min.map_or(d, |m: usize| m.min(d)));
                }
            }
        }
    }

    for &frag in fragments {
        let mut targets: Vec<SId> = Vec::new();
        match (tgt.nodes[frag].origin, global_min) {
            (Some(fo), Some(m)) => {
                for &p in &based_parents {
                    let po = tgt.nodes[p].origin.expect("based parent");
                    if pair_distance(src, ctx, po, fo) == Some(m) {
                        targets.push(p);
                    }
                }
                targets.extend(&new_parents);
            }
            (Some(_), None) => targets.extend(&new_parents),
            (None, _) => targets.extend(parents.iter().copied()),
        }
        for (i, &p) in targets.iter().enumerate() {
            let node = if i == 0 {
                frag
            } else {
                tgt.duplicate_subtree(frag)
            };
            let card = predicted_card(src, tgt, p, node);
            tgt.attach(p, node, card);
        }
    }
}

/// Predicted cardinality (Def. 7) of the edge `parent → child` in the
/// target: the path cardinality between their origins in the source
/// shape. When the parent chain is NEW, the child's absolute cardinality
/// anchors the prediction; a NEW child contributes `1..1`.
fn predicted_card(src: &Shape, tgt: &Shape, parent: SId, child: SId) -> Card {
    let Some(co) = tgt.nodes[child].origin else {
        return Card::one();
    };
    // Find the nearest ancestor (through the target) with an origin.
    let mut anchor = None;
    let mut cur = Some(parent);
    while let Some(p) = cur {
        if let Some(o) = tgt.nodes[p].origin {
            anchor = Some(o);
            break;
        }
        cur = tgt.nodes[p].parent;
    }
    match anchor {
        Some(po) => src
            .path_card(po, co)
            .unwrap_or_else(|| absolute_card(src, co)),
        None => absolute_card(src, co),
    }
}

/// MUTATE: start from a copy of the whole source shape and rearrange the
/// parts the pattern mentions, leaving everything else in place.
fn eval_mutate(pop: &POp, src: &Shape, ctx: &mut EvalCtx<'_>) -> MorphResult<Shape> {
    let mut tgt = copy_whole(src);
    mutate_pop(pop, src, &mut tgt, ctx)?;
    let roots = tgt.roots.clone();
    Ok(tgt.compact(&roots))
}

/// Copy the entire source shape; node `i` maps to node `i`, origins point
/// back at the source.
fn copy_whole(src: &Shape) -> Shape {
    let mut tgt = src.clone();
    tgt.data_backed = false;
    for (i, node) in tgt.nodes.iter_mut().enumerate() {
        node.origin = Some(i);
    }
    tgt
}

/// Resolve a MUTATE pattern, applying rearrangements to `tgt`; returns
/// the resolved target nodes the enclosing construct nests under.
fn mutate_pop(
    pop: &POp,
    src: &Shape,
    tgt: &mut Shape,
    ctx: &mut EvalCtx<'_>,
) -> MorphResult<Vec<SId>> {
    match pop {
        POp::Type(label) => {
            // Resolve against the source; source node i is target node i.
            let matches = src.matching_label(label);
            if matches.is_empty() {
                if ctx.type_fill {
                    ctx.labels.record(label, vec![], true);
                    let id = tgt.add_leaf(label, None, None);
                    tgt.nodes[id].is_new = true;
                    tgt.roots.push(id);
                    return Ok(vec![id]);
                }
                return Err(MorphError::TypeMismatch {
                    label: label.clone(),
                });
            }
            ctx.labels.record(
                label,
                matches.iter().map(|&m| src.dotted(m)).collect(),
                false,
            );
            Ok(matches)
        }
        POp::New(label) => {
            let id = tgt.add_leaf(label, None, None);
            tgt.nodes[id].is_new = true;
            // Placed when a child is reparented under it; root fallback.
            tgt.roots.push(id);
            Ok(vec![id])
        }
        POp::Siblings(items) => {
            let mut out = Vec::new();
            for item in items {
                out.extend(mutate_pop(item, src, tgt, ctx)?);
            }
            Ok(out)
        }
        POp::Closest { parent, children } => {
            let parents = mutate_pop(parent, src, tgt, ctx)?;
            for child in children {
                let resolved = mutate_pop(child, src, tgt, ctx)?;
                // Global minimum distance over all (parent, child) pairs
                // resolves label ambiguity, exactly as in MORPH's extend.
                let mut global_min: Option<usize> = None;
                for &p in &parents {
                    for &c in &resolved {
                        if let (Some(po), Some(co)) = (tgt.nodes[p].origin, tgt.nodes[c].origin) {
                            if let Some(d) = pair_distance(src, ctx, po, co) {
                                global_min = Some(global_min.map_or(d, |m: usize| m.min(d)));
                            }
                        }
                    }
                }
                for c in resolved {
                    let mut winners: Vec<SId> = Vec::new();
                    for &p in &parents {
                        match (tgt.nodes[p].origin, tgt.nodes[c].origin) {
                            (Some(po), Some(co)) => {
                                if pair_distance(src, ctx, po, co) == global_min
                                    && global_min.is_some()
                                {
                                    winners.push(p);
                                }
                            }
                            _ => winners.push(p),
                        }
                    }
                    for (i, &p) in winners.iter().enumerate() {
                        let node = if i == 0 { c } else { tgt.duplicate_subtree(c) };
                        mutate_reparent(src, tgt, p, node);
                    }
                }
            }
            Ok(parents)
        }
        POp::Drop(p) => {
            let resolved = mutate_pop(p, src, tgt, ctx)?;
            for n in resolved {
                drop_node(tgt, n);
            }
            Ok(Vec::new())
        }
        POp::Restrict(p) => {
            let resolved = mutate_pop(p, src, tgt, ctx)?;
            for &r in &resolved {
                let children = std::mem::take(&mut tgt.nodes[r].children);
                tgt.nodes[r].filters.extend(children);
            }
            Ok(resolved)
        }
        POp::Clone(p) => {
            let resolved = mutate_pop(p, src, tgt, ctx)?;
            let mut out = Vec::new();
            for n in resolved {
                let copy = tgt.duplicate_subtree(n);
                mark_clones(tgt, copy);
                out.push(copy);
            }
            Ok(out)
        }
        // Everything is already present in a MUTATE; the markers add
        // nothing.
        POp::Children(p) | POp::Descendants(p) => mutate_pop(p, src, tgt, ctx),
    }
}

/// Remove a node from a MUTATE target: its children splice up to its
/// parent (or become roots).
fn drop_node(tgt: &mut Shape, n: SId) {
    let parent = tgt.nodes[n].parent;
    let children = std::mem::take(&mut tgt.nodes[n].children);
    match parent {
        Some(p) => {
            for &c in &children {
                tgt.nodes[c].parent = Some(p);
            }
            let pos = tgt.nodes[p].children.iter().position(|&c| c == n);
            if let Some(pos) = pos {
                tgt.nodes[p].children.splice(pos..pos + 1, children);
            } else {
                tgt.nodes[p].children.extend(children);
            }
            tgt.nodes[n].parent = None;
        }
        None => {
            for &c in &children {
                tgt.nodes[c].parent = None;
            }
            if let Some(pos) = tgt.roots.iter().position(|&r| r == n) {
                tgt.roots.splice(pos..pos + 1, children);
            } else {
                tgt.roots.extend(children);
            }
        }
    }
}

/// Reparent `c` under `p` in a MUTATE target, fixing up cycles (when `p`
/// currently lives inside `c`'s subtree, `p` first takes `c`'s place —
/// the paper's `MUTATE name [ author ]` swap) and placing unanchored NEW
/// parents at `c`'s old position.
fn mutate_reparent(src: &Shape, tgt: &mut Shape, p: SId, c: SId) {
    if p == c {
        return;
    }
    if tgt.nodes[c].children.contains(&p) && tgt.nodes[c].parent == Some(p) {
        return; // already arranged
    }
    let c_old_parent = tgt.nodes[c].parent;
    let c_was_root = tgt.roots.contains(&c);
    // NEW parent not yet placed (it sits in the root list, parentless and
    // childless): it takes c's position.
    if tgt.nodes[p].origin.is_none()
        && tgt.nodes[p].parent.is_none()
        && tgt.nodes[p].children.is_empty()
    {
        match c_old_parent {
            Some(op) => {
                tgt.roots.retain(|&r| r != p);
                tgt.nodes[p].parent = Some(op);
                // Replace c's slot with p to keep sibling order stable.
                if let Some(pos) = tgt.nodes[op].children.iter().position(|&x| x == c) {
                    tgt.nodes[op].children[pos] = p;
                    tgt.nodes[c].parent = None;
                } else {
                    tgt.nodes[op].children.push(p);
                }
                tgt.nodes[p].card = tgt.nodes[c].card;
            }
            None => {
                // c was a root: p replaces it in the root list.
                if c_was_root {
                    if let Some(pos) = tgt.roots.iter().position(|&r| r == c) {
                        if !tgt.roots.contains(&p) {
                            tgt.roots[pos] = p;
                        } else {
                            tgt.roots.remove(pos);
                        }
                    }
                }
            }
        }
        tgt.detach(c);
        let card = predicted_card(src, tgt, p, c);
        tgt.attach(p, c, card);
        return;
    }
    // Cycle fix: if p is inside c's subtree, p first takes c's place.
    if tgt.is_ancestor_or_self(c, p) {
        tgt.detach(p);
        match c_old_parent {
            Some(op) => {
                let card = predicted_card(src, tgt, op, p);
                tgt.attach(op, p, card);
            }
            None => {
                if !tgt.roots.contains(&p) {
                    tgt.roots.push(p);
                }
            }
        }
    }
    tgt.detach(c);
    let card = predicted_card(src, tgt, p, c);
    tgt.attach(p, c, card);
}

/// TRANSLATE: rename matching types, leaving structure untouched.
fn eval_translate(
    renames: &[(String, String)],
    src: &Shape,
    ctx: &mut EvalCtx<'_>,
) -> MorphResult<Shape> {
    let mut tgt = copy_whole(src);
    for (from, to) in renames {
        let matches = src.matching_label(from);
        if matches.is_empty() {
            if !ctx.type_fill {
                return Err(MorphError::TypeMismatch {
                    label: from.clone(),
                });
            }
            ctx.labels.record(from, vec![], true);
            continue;
        }
        ctx.labels.record(
            from,
            matches.iter().map(|&m| src.dotted(m)).collect(),
            false,
        );
        for m in matches {
            tgt.nodes[m].name = to.clone();
        }
    }
    Ok(tgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::lower;
    use crate::lang::parse;
    use crate::model::shape::AdornedShape;
    use xmorph_xml::dom::Document;

    fn shape_of(xml: &str) -> (Shape, AdornedShape) {
        let doc = Document::parse_str(xml).unwrap();
        let adorned = AdornedShape::from_document(&doc);
        (Shape::from_adorned(&adorned), adorned)
    }

    fn run(guard: &str, xml: &str) -> Shape {
        let (src, adorned) = shape_of(xml);
        let oracle = GuideOracle(adorned.types());
        let mut ctx = EvalCtx::new(&oracle);
        let op = lower(&parse(guard).unwrap());
        let out = eval_guard(&op, &src, &mut ctx).unwrap();
        // keep the adorned shape alive through evaluation
        drop(adorned);
        out
    }

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";

    fn tree(shape: &Shape) -> String {
        shape.to_string()
    }

    #[test]
    fn morph_builds_requested_shape() {
        let out = run("MORPH author [ name book [ title ] ]", FIG1A);
        assert_eq!(
            tree(&out),
            "author\n  name 1..1\n  book 1..1\n    title 1..1\n"
        );
    }

    #[test]
    fn morph_root_only() {
        let out = run("MORPH author", FIG1A);
        assert_eq!(tree(&out), "author\n");
    }

    #[test]
    fn ambiguous_label_resolved_by_closeness() {
        // 'name' matches author.name and publisher.name; under author the
        // closest one (distance 1) is author.name.
        let out = run("MORPH author [ name ]", FIG1A);
        let author = out.roots[0];
        assert_eq!(out.nodes[author].children.len(), 1);
        let name = out.nodes[author].children[0];
        assert_eq!(out.nodes[name].name, "name");
    }

    #[test]
    fn top_level_ambiguity_keeps_all() {
        let out = run("MORPH name", FIG1A);
        assert_eq!(out.roots.len(), 2); // author.name and publisher.name
    }

    #[test]
    fn type_mismatch_errors() {
        let (src, adorned) = shape_of(FIG1A);
        let oracle = GuideOracle(adorned.types());
        let mut ctx = EvalCtx::new(&oracle);
        let op = lower(&parse("MORPH editor").unwrap());
        let err = eval_guard(&op, &src, &mut ctx).unwrap_err();
        assert!(matches!(err, MorphError::TypeMismatch { .. }));
    }

    #[test]
    fn type_fill_invents_types() {
        let out = run("TYPE-FILL MORPH editor [ author ]", FIG1A);
        let editor = out.roots[0];
        assert_eq!(out.nodes[editor].name, "editor");
        assert!(out.nodes[editor].is_new);
        assert_eq!(out.nodes[editor].children.len(), 1);
    }

    #[test]
    fn children_marker_copies_source_children() {
        let out = run("MORPH book [*]", FIG1A);
        let book = out.roots[0];
        let names: Vec<&str> = out.nodes[book]
            .children
            .iter()
            .map(|&c| out.nodes[c].name.as_str())
            .collect();
        assert_eq!(names, vec!["title", "author", "publisher"]);
        // Children only — no grandchildren.
        let author = out.nodes[book].children[1];
        assert!(out.nodes[author].children.is_empty());
    }

    #[test]
    fn descendants_marker_copies_subtree() {
        let out = run("MORPH book [**]", FIG1A);
        let book = out.roots[0];
        let author = out.nodes[book].children[1];
        assert_eq!(out.nodes[author].name, "author");
        assert_eq!(out.nodes[author].children.len(), 1); // name survives
    }

    #[test]
    fn predicted_cards_follow_path_card() {
        // MORPH data [ title ]: two books each with one title ⇒ predicted
        // 2..2 titles under data.
        let out = run("MORPH data [ title ]", FIG1A);
        let data = out.roots[0];
        let title = out.nodes[data].children[0];
        assert_eq!(out.nodes[title].card, Card::exactly(2));
    }

    #[test]
    fn mutate_moves_mentioned_types_only() {
        // Fig 1(b)→(a) style: move publisher below book.
        let out = run("MUTATE book [ publisher [ name ] ]", FIG1A);
        // Already below book in (a): shape unchanged structurally.
        let s = tree(&out);
        assert!(s.contains("book"), "{s}");
        assert!(s.contains("    publisher"), "{s}");
    }

    #[test]
    fn mutate_swap_parent_child() {
        // MUTATE name [ author ]: swap author/name (paper §V-B example).
        let out = run("MUTATE author.name [ author ]", FIG1A);
        let s = tree(&out);
        // name moved to author's old spot (under book), author under name.
        assert!(s.contains("  name"), "{s}");
        assert!(s.contains("    author"), "{s}");
    }

    #[test]
    fn mutate_drop_removes_and_splices() {
        let out = run("MUTATE (DROP author)", FIG1A);
        let s = tree(&out);
        assert!(!s.contains("author"), "{s}");
        // author's name spliced up under book.
        assert!(s.contains("  name"), "{s}");
    }

    #[test]
    fn mutate_new_wraps() {
        let out = run("MUTATE (NEW scribe) [ author ]", FIG1A);
        let s = tree(&out);
        // scribe takes author's place under book; author below scribe.
        assert!(s.contains("  scribe"), "{s}");
        assert!(s.contains("    author"), "{s}");
    }

    #[test]
    fn mutate_clone_keeps_original() {
        let out = run("MUTATE author [ CLONE title ]", FIG1A);
        let s = tree(&out);
        // The original title stays under book AND a clone sits under author.
        let count = s.matches("title").count();
        assert_eq!(count, 2, "{s}");
        assert!(s.contains("(clone)"), "{s}");
    }

    #[test]
    fn translate_renames() {
        let out = run("TRANSLATE author -> writer", FIG1A);
        let s = tree(&out);
        assert!(s.contains("writer"), "{s}");
        assert!(!s.contains("author"), "{s}");
    }

    #[test]
    fn compose_pipes_shapes() {
        let out = run("MORPH author [ name ] | MUTATE (DROP name)", FIG1A);
        assert_eq!(tree(&out), "author\n");
    }

    #[test]
    fn compose_with_translate() {
        let out = run("MORPH author [ name ] | TRANSLATE author -> writer", FIG1A);
        assert_eq!(tree(&out), "writer\n  name 1..1\n");
    }

    #[test]
    fn restrict_demotes_children_to_filters() {
        let out = run("MORPH (RESTRICT name [ author ]) [ title ]", FIG1A);
        let name = out.roots[0];
        assert_eq!(out.nodes[name].name, "name");
        assert_eq!(out.nodes[name].filters.len(), 1);
        // title is a real child.
        assert_eq!(out.nodes[name].children.len(), 1);
        assert_eq!(out.nodes[out.nodes[name].children[0]].name, "title");
    }

    #[test]
    fn label_report_records_resolutions() {
        let (src, adorned) = shape_of(FIG1A);
        let oracle = GuideOracle(adorned.types());
        let mut ctx = EvalCtx::new(&oracle);
        let op = lower(&parse("MORPH author [ name ]").unwrap());
        eval_guard(&op, &src, &mut ctx).unwrap();
        assert_eq!(ctx.labels.resolutions.len(), 2);
        assert_eq!(ctx.labels.resolutions[0].label, "author");
        assert_eq!(
            ctx.labels.resolutions[1].resolved,
            vec!["data.book.author.name", "data.book.publisher.name"]
        );
    }

    #[test]
    fn dotted_label_disambiguates() {
        let out = run("MORPH book [ publisher.name ]", FIG1A);
        let book = out.roots[0];
        assert_eq!(out.nodes[book].children.len(), 1);
    }

    #[test]
    fn paper_full_morph_guard() {
        // MORPH data [author [* book [** publisher [*]]]] from §III.
        let out = run("MORPH data [author [* book [** publisher [*]]]]", FIG1A);
        let s = tree(&out);
        assert!(s.starts_with("data\n  author"), "{s}");
        assert!(s.contains("book"), "{s}");
        assert!(s.contains("publisher"), "{s}");
    }
}

//! Shredding XML into storage tables, and the data-backed operations the
//! renderer needs: exact `typeDistance` and the Dewey-prefix closest join.
//!
//! The paper's architecture (Fig. 8) shreds documents into BerkeleyDB
//! tables; ours land in `xmorph-pagestore` trees:
//!
//! * **`nodes`** — Dewey key → (type id, direct text). The paper's
//!   `Nodes` table.
//! * **`typeseq`** — (type id, Dewey) key → direct text. The paper's
//!   `TypeToSequence`/`GroupedSequence` tables folded into one: a scan
//!   with a `(type, prefix)` key prefix *is* the grouped sequence that
//!   feeds a closest join, and carrying the text in the value lets the
//!   renderer stream output from a single scan.
//! * **`meta`** — the serialized adorned shape (`AdornedShapes` table).
//!
//! Shredding is streaming: one pass over the SAX-style event stream with
//! O(depth) memory, exactly like the paper's Xerces-based shredder.

use crate::error::{MorphError, MorphResult};
use crate::model::shape::AdornedShape;
use crate::model::types::{TypeId, TypeTable};
use crate::semantics::eval::DistOracle;
use std::collections::HashMap;
use std::sync::Mutex;
use xmorph_pagestore::{Store, Tree};
use xmorph_xml::dewey::Dewey;
use xmorph_xml::reader::{XmlEvent, XmlReader};

/// A shredded XML document: storage tables plus the in-memory adorned
/// shape (which is tiny relative to the data, as the paper notes —
/// "prior to rendering, only the adorned shapes ... are needed").
pub struct ShreddedDoc {
    nodes: Tree,
    typeseq: Tree,
    shape: AdornedShape,
    /// Exact typeDistance cache (the co-occurrence scan is linear; each
    /// pair is computed at most once per document).
    dist_cache: Mutex<HashMap<(TypeId, TypeId), Option<usize>>>,
}

impl std::fmt::Debug for ShreddedDoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShreddedDoc")
            .field("types", &self.shape.types().len())
            .finish_non_exhaustive()
    }
}

const META_SHAPE_KEY: &[u8] = b"shape";

fn typeseq_key(t: TypeId, dewey: &Dewey) -> Vec<u8> {
    let mut k = Vec::with_capacity(4 + dewey.len() * 4);
    k.extend_from_slice(&t.0.to_be_bytes());
    k.extend_from_slice(&dewey.encode());
    k
}

fn node_value(t: TypeId, text: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + text.len());
    v.extend_from_slice(&t.0.to_le_bytes());
    v.extend_from_slice(text.as_bytes());
    v
}

fn parse_node_value(v: &[u8]) -> Option<(TypeId, String)> {
    let t = TypeId(u32::from_le_bytes(v.get(..4)?.try_into().ok()?));
    let text = String::from_utf8(v.get(4..)?.to_vec()).ok()?;
    Some((t, text))
}

impl ShreddedDoc {
    /// Shred an XML document (as text) into the store.
    pub fn shred_str(store: &Store, xml: &str) -> MorphResult<ShreddedDoc> {
        let nodes = store.open_tree("nodes")?;
        let typeseq = store.open_tree("typeseq")?;
        let meta = store.open_tree("meta")?;

        let mut builder = AdornedShape::builder();
        let mut reader = XmlReader::new(xml);

        struct Frame {
            dewey: Dewey,
            type_id: TypeId,
            next_ordinal: u32,
            text: String,
        }
        let mut stack: Vec<Frame> = Vec::new();

        loop {
            match reader.next_event()? {
                XmlEvent::StartElement { name, attrs } => {
                    let type_id = builder.open(&name);
                    let dewey = match stack.last_mut() {
                        Some(parent) => {
                            parent.next_ordinal += 1;
                            parent.dewey.child(parent.next_ordinal)
                        }
                        None => Dewey::root(),
                    };
                    let mut frame = Frame {
                        dewey,
                        type_id,
                        next_ordinal: 0,
                        text: String::new(),
                    };
                    // Attributes become child vertices, numbered first.
                    for (aname, avalue) in &attrs {
                        let at = builder.attribute(aname);
                        frame.next_ordinal += 1;
                        let ad = frame.dewey.child(frame.next_ordinal);
                        nodes.insert(&ad.encode(), &node_value(at, avalue))?;
                        typeseq.insert(&typeseq_key(at, &ad), avalue.as_bytes())?;
                    }
                    stack.push(frame);
                }
                XmlEvent::Text(t) => {
                    if let Some(frame) = stack.last_mut() {
                        frame.text.push_str(&t);
                    }
                }
                XmlEvent::EndElement { .. } => {
                    let frame = stack.pop().expect("balanced events");
                    builder.close();
                    let text = frame.text.trim();
                    nodes.insert(&frame.dewey.encode(), &node_value(frame.type_id, text))?;
                    typeseq.insert(&typeseq_key(frame.type_id, &frame.dewey), text.as_bytes())?;
                }
                XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => {}
                XmlEvent::Eof => break,
            }
        }
        let shape = builder.finish();
        meta.insert(META_SHAPE_KEY, &shape.to_bytes())?;
        Ok(ShreddedDoc {
            nodes,
            typeseq,
            shape,
            dist_cache: Mutex::new(HashMap::new()),
        })
    }

    /// Open an already-shredded document from its store.
    pub fn open(store: &Store) -> MorphResult<ShreddedDoc> {
        let nodes = store.open_tree("nodes")?;
        let typeseq = store.open_tree("typeseq")?;
        let meta = store.open_tree("meta")?;
        let bytes = meta
            .get(META_SHAPE_KEY)?
            .ok_or(MorphError::Internal("store holds no shredded document"))?;
        let shape = AdornedShape::from_bytes(&bytes)
            .ok_or(MorphError::Internal("corrupt adorned shape"))?;
        Ok(ShreddedDoc {
            nodes,
            typeseq,
            shape,
            dist_cache: Mutex::new(HashMap::new()),
        })
    }

    /// The document's adorned shape.
    pub fn shape(&self) -> &AdornedShape {
        &self.shape
    }

    /// The document's type table.
    pub fn types(&self) -> &TypeTable {
        self.shape.types()
    }

    /// Number of instances of a type.
    pub fn instance_count(&self, t: TypeId) -> u64 {
        self.shape.instance_count(t)
    }

    /// Direct text of a node.
    pub fn node_text(&self, dewey: &Dewey) -> MorphResult<Option<String>> {
        Ok(self
            .nodes
            .get(&dewey.encode())?
            .and_then(|v| parse_node_value(&v))
            .map(|(_, text)| text))
    }

    /// Type of a node.
    pub fn node_type(&self, dewey: &Dewey) -> MorphResult<Option<TypeId>> {
        Ok(self
            .nodes
            .get(&dewey.encode())?
            .and_then(|v| parse_node_value(&v))
            .map(|(t, _)| t))
    }

    /// All instances of a type, in document order, with their direct
    /// text.
    pub fn scan_type(&self, t: TypeId) -> Vec<(Dewey, String)> {
        self.typeseq
            .scan_prefix(&t.0.to_be_bytes())
            .filter_map(|(k, v)| {
                let dewey = Dewey::decode(&k[4..])?;
                let text = String::from_utf8(v).ok()?;
                Some((dewey, text))
            })
            .collect()
    }

    /// Exact `typeDistance` (Def. 2): the minimum tree distance over all
    /// instance pairs, found by scanning candidate least-common-ancestor
    /// levels from the deepest shared path prefix upward and checking
    /// *co-occurrence* (two instances sharing a Dewey prefix of that
    /// length) with a sorted-merge scan. Cached per pair.
    pub fn type_distance_exact(&self, a: TypeId, b: TypeId) -> Option<usize> {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&hit) = self.dist_cache.lock().unwrap().get(&key) {
            return hit;
        }
        let result = self.compute_distance(key.0, key.1);
        self.dist_cache.lock().unwrap().insert(key, result);
        result
    }

    fn compute_distance(&self, a: TypeId, b: TypeId) -> Option<usize> {
        let types = self.shape.types();
        if self.instance_count(a) == 0 || self.instance_count(b) == 0 {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let la = types.dewey_len(a);
        let lb = types.dewey_len(b);
        let k = types.common_prefix_len(a, b);
        for level in (1..=k).rev() {
            if self.co_occur(a, b, level) {
                return Some(la + lb - 2 * level);
            }
        }
        None
    }

    /// Do some instance of `a` and some instance of `b` share a Dewey
    /// prefix of `level` components? Sorted-merge over the two type
    /// sequences comparing `level × 4` key bytes.
    fn co_occur(&self, a: TypeId, b: TypeId, level: usize) -> bool {
        let plen = level * 4;
        let mut ia = self.typeseq.scan_prefix(&a.0.to_be_bytes());
        let mut ib = self.typeseq.scan_prefix(&b.0.to_be_bytes());
        let mut ka = ia.next().map(|(k, _)| k[4..].to_vec());
        let mut kb = ib.next().map(|(k, _)| k[4..].to_vec());
        while let (Some(x), Some(y)) = (&ka, &kb) {
            let px = &x[..plen.min(x.len())];
            let py = &y[..plen.min(y.len())];
            match px.cmp(py) {
                std::cmp::Ordering::Equal => {
                    // Same prefix — but for an ancestor/descendant pair the
                    // prefix must be fully present in both.
                    if px.len() == plen && py.len() == plen {
                        return true;
                    }
                    // One of the keys is shorter than the level: advance it.
                    if px.len() < plen {
                        ka = ia.next().map(|(k, _)| k[4..].to_vec());
                    } else {
                        kb = ib.next().map(|(k, _)| k[4..].to_vec());
                    }
                }
                std::cmp::Ordering::Less => ka = ia.next().map(|(k, _)| k[4..].to_vec()),
                std::cmp::Ordering::Greater => kb = ib.next().map(|(k, _)| k[4..].to_vec()),
            }
        }
        false
    }

    /// The closest join (§VII): instances of `child_type` closest to the
    /// given `parent` instance. Since all instances of a type share one
    /// depth, closest pairs are exactly the pairs agreeing on the first
    /// `L = (dewey(parent) + dewey(child) − typeDistance)/2` components —
    /// a single prefix scan, streaming in document order.
    pub fn closest_children(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Vec<(Dewey, String)> {
        let Some(d) = self.type_distance_exact(parent_type, child_type) else {
            return Vec::new();
        };
        let types = self.shape.types();
        let lp = types.dewey_len(parent_type);
        let lc = types.dewey_len(child_type);
        debug_assert_eq!(parent.len(), lp);
        let l = (lp + lc).saturating_sub(d) / 2;
        let prefix = parent.prefix(l);
        let mut key = Vec::with_capacity(4 + prefix.len() * 4);
        key.extend_from_slice(&child_type.0.to_be_bytes());
        key.extend_from_slice(&prefix.encode());
        self.typeseq
            .scan_prefix(&key)
            .filter_map(|(k, v)| {
                let dewey = Dewey::decode(&k[4..])?;
                let text = String::from_utf8(v).ok()?;
                Some((dewey, text))
            })
            .collect()
    }

    /// A streaming sort-merge cursor over the closest join (§VII's
    /// pipelined implementation): callers ask for the closest
    /// `child_type` instances of successive parent instances *in
    /// document order*, and the cursor advances monotonically through the
    /// child type's sequence — one scan per target edge, O(n) instead of
    /// one B+tree descent per parent. Returns `None` when the two types
    /// are unrelated in the data.
    pub fn closest_cursor(
        &self,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> Option<ClosestCursor<'_>> {
        let d = self.type_distance_exact(parent_type, child_type)?;
        let types = self.shape.types();
        let lp = types.dewey_len(parent_type);
        let lc = types.dewey_len(child_type);
        let l = (lp + lc).saturating_sub(d) / 2;
        let iter = self.typeseq.scan_prefix(&child_type.0.to_be_bytes());
        Some(ClosestCursor {
            iter,
            pending: None,
            primed: false,
            group_prefix: None,
            group: Vec::new(),
            prefix_bytes: l * 4,
        })
    }

    /// Does the parent instance have at least one closest `child_type`
    /// instance? (Existence check for RESTRICT filters.)
    pub fn has_closest_child(
        &self,
        parent: &Dewey,
        parent_type: TypeId,
        child_type: TypeId,
    ) -> bool {
        !self
            .closest_children(parent, parent_type, child_type)
            .is_empty()
    }
}

/// The pipelined closest-join cursor (see
/// [`ShreddedDoc::closest_cursor`]). Requests must come in
/// non-decreasing parent (document) order; the last group is cached so
/// several parents sharing one join prefix all see it.
pub struct ClosestCursor<'a> {
    iter: xmorph_pagestore::btree::RangeIter<'a>,
    /// The next not-yet-grouped entry: (dewey bytes, text).
    pending: Option<(Vec<u8>, String)>,
    primed: bool,
    group_prefix: Option<Vec<u8>>,
    group: Vec<(Dewey, String)>,
    prefix_bytes: usize,
}

impl<'a> ClosestCursor<'a> {
    fn advance(&mut self) {
        self.pending = self.iter.next().and_then(|(k, v)| {
            let dewey_bytes = k[4..].to_vec();
            let text = String::from_utf8(v).ok()?;
            Some((dewey_bytes, text))
        });
    }

    /// The closest children of `parent`. The returned slice is valid
    /// until the next call. Parents must be presented in non-decreasing
    /// document order.
    pub fn group_for(&mut self, parent: &Dewey) -> &[(Dewey, String)] {
        if !self.primed {
            self.advance();
            self.primed = true;
        }
        let encoded = parent.encode();
        let want = &encoded[..self.prefix_bytes.min(encoded.len())];
        if self.group_prefix.as_deref() == Some(want) {
            return &self.group;
        }
        self.group.clear();
        self.group_prefix = Some(want.to_vec());
        // Skip entries before the requested prefix.
        while let Some((bytes, _)) = &self.pending {
            let kp = &bytes[..self.prefix_bytes.min(bytes.len())];
            if kp < want {
                self.advance();
            } else {
                break;
            }
        }
        // Collect the matching group (entries must carry the full
        // prefix; shorter keys are ancestors, impossible here since all
        // instances of a type share one depth ≥ the join level).
        while let Some((bytes, text)) = &self.pending {
            let kp = &bytes[..self.prefix_bytes.min(bytes.len())];
            if kp == want && bytes.len() >= self.prefix_bytes {
                if let Some(d) = Dewey::decode(bytes) {
                    self.group.push((d, text.clone()));
                }
                self.advance();
            } else {
                break;
            }
        }
        &self.group
    }
}

impl DistOracle for ShreddedDoc {
    fn type_distance(&self, a: TypeId, b: TypeId) -> Option<usize> {
        self.type_distance_exact(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1A: &str = "<data>\
        <book><title>X</title><author><name>Tim</name></author><publisher><name>W</name></publisher></book>\
        <book><title>Y</title><author><name>Tim</name></author><publisher><name>V</name></publisher></book>\
        </data>";

    fn shredded(xml: &str) -> ShreddedDoc {
        let store = Store::in_memory();
        ShreddedDoc::shred_str(&store, xml).unwrap()
    }

    fn ty(doc: &ShreddedDoc, dotted: &str) -> TypeId {
        let path: Vec<String> = dotted.split('.').map(|s| s.to_string()).collect();
        doc.types()
            .lookup(&path)
            .unwrap_or_else(|| panic!("no type {dotted}"))
    }

    #[test]
    fn shred_builds_shape_and_counts() {
        let doc = shredded(FIG1A);
        assert_eq!(doc.instance_count(ty(&doc, "data.book")), 2);
        assert_eq!(doc.instance_count(ty(&doc, "data.book.author.name")), 2);
    }

    #[test]
    fn scan_type_in_document_order() {
        let doc = shredded(FIG1A);
        let titles = doc.scan_type(ty(&doc, "data.book.title"));
        assert_eq!(titles.len(), 2);
        assert_eq!(titles[0].0.to_string(), "1.1.1");
        assert_eq!(titles[0].1, "X");
        assert_eq!(titles[1].0.to_string(), "1.2.1");
        assert_eq!(titles[1].1, "Y");
    }

    #[test]
    fn node_text_lookup() {
        let doc = shredded(FIG1A);
        assert_eq!(
            doc.node_text(&"1.1.2.1".parse().unwrap())
                .unwrap()
                .as_deref(),
            Some("Tim")
        );
        assert_eq!(doc.node_text(&"1.9".parse().unwrap()).unwrap(), None);
    }

    #[test]
    fn exact_type_distance() {
        let doc = shredded(FIG1A);
        let title = ty(&doc, "data.book.title");
        let publisher = ty(&doc, "data.book.publisher");
        let pub_name = ty(&doc, "data.book.publisher.name");
        assert_eq!(doc.type_distance_exact(title, publisher), Some(2));
        assert_eq!(doc.type_distance_exact(title, pub_name), Some(3));
        assert_eq!(doc.type_distance_exact(title, title), Some(0));
    }

    #[test]
    fn co_occurrence_failure_detected() {
        // authors and editors never share a book: distance 4, not 2.
        let doc =
            shredded("<data><book><author>a</author></book><book><editor>e</editor></book></data>");
        let author = ty(&doc, "data.book.author");
        let editor = ty(&doc, "data.book.editor");
        assert_eq!(doc.type_distance_exact(author, editor), Some(4));
    }

    #[test]
    fn ancestor_descendant_distance() {
        let doc = shredded(FIG1A);
        let book = ty(&doc, "data.book");
        let pub_name = ty(&doc, "data.book.publisher.name");
        assert_eq!(doc.type_distance_exact(book, pub_name), Some(2));
    }

    #[test]
    fn closest_join_matches_paper_example() {
        // §VII: publisher 1.1.3 joins title 1.1.1 (shared 2-prefix), not
        // 1.2.1.
        let doc = shredded(FIG1A);
        let publisher = ty(&doc, "data.book.publisher");
        let title = ty(&doc, "data.book.title");
        let joined = doc.closest_children(&"1.1.3".parse().unwrap(), publisher, title);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].0.to_string(), "1.1.1");
        assert_eq!(joined[0].1, "X");
    }

    #[test]
    fn closest_join_author_names() {
        // §VII's first join: author nodes pick up their name children.
        let doc = shredded(FIG1A);
        let author = ty(&doc, "data.book.author");
        let name = ty(&doc, "data.book.author.name");
        let joined = doc.closest_children(&"1.1.2".parse().unwrap(), author, name);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].0.to_string(), "1.1.2.1");
    }

    #[test]
    fn closest_join_upward() {
        // Joining from title up to author: distance 2 via the book.
        let doc = shredded(FIG1A);
        let title = ty(&doc, "data.book.title");
        let author = ty(&doc, "data.book.author");
        let joined = doc.closest_children(&"1.1.1".parse().unwrap(), title, author);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].0.to_string(), "1.1.2");
    }

    #[test]
    fn attributes_are_stored_vertices() {
        let store = Store::in_memory();
        let doc =
            ShreddedDoc::shred_str(&store, r#"<d><a id="7">x</a><a id="8">y</a></d>"#).unwrap();
        let at = ty(&doc, "d.a.@id");
        let vals = doc.scan_type(at);
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].1, "7");
        assert_eq!(vals[1].1, "8");
    }

    #[test]
    fn reopen_from_store() {
        let store = Store::in_memory();
        {
            ShreddedDoc::shred_str(&store, FIG1A).unwrap();
        }
        let doc = ShreddedDoc::open(&store).unwrap();
        assert_eq!(doc.instance_count(ty(&doc, "data.book")), 2);
        let titles = doc.scan_type(ty(&doc, "data.book.title"));
        assert_eq!(titles.len(), 2);
    }

    #[test]
    fn has_closest_child_existence() {
        let doc = shredded(
            "<d><book><award>w</award><title>A</title></book><book><title>B</title></book></d>",
        );
        let book = ty(&doc, "d.book");
        let award = ty(&doc, "d.book.award");
        assert!(doc.has_closest_child(&"1.1".parse().unwrap(), book, award));
        assert!(!doc.has_closest_child(&"1.2".parse().unwrap(), book, award));
    }

    #[test]
    fn mixed_text_is_trimmed_direct_text() {
        let doc = shredded("<d><a> hi <b>skip</b></a></d>");
        let a = ty(&doc, "d.a");
        let scans = doc.scan_type(a);
        assert_eq!(scans[0].1, "hi");
    }
}
